#include "dataflow/acg.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "minic/lexer.hpp"
#include "minic/typecheck.hpp"

namespace vc::dataflow {

using minic::BinOp;
using minic::ExprPtr;
using minic::StmtPtr;
using minic::Type;
using minic::UnOp;

namespace {

std::string wire_name(BlockId b) { return "w" + std::to_string(b); }

/// Prefix + block id, dodging mini-C keywords: "f" + block 64 would spell
/// the type keyword `f64`, and the printed program would not re-parse
/// (the vccd service compiles from printed source, so every generated
/// program must round-trip). No synthesized name ends in '_', so the
/// suffixed form cannot collide with anything else.
std::string temp_name(const char* prefix, BlockId b) {
  std::string name = prefix + std::to_string(b);
  if (minic::is_keyword(name)) name += '_';
  return name;
}

class Generator {
 public:
  Generator(const Node& node, minic::Program* program)
      : node_(node), program_(program) {}

  void run() {
    node_.validate();

    fn_.name = step_function_name(node_);
    fn_.has_return = false;

    // Parameters in block-creation order of Input symbols.
    for (const Block& b : node_.blocks()) {
      if (b.kind == SymbolKind::InputF)
        fn_.params.push_back(
            {"in" + std::to_string(static_cast<int>(b.params[0])), Type::F64});
      else if (b.kind == SymbolKind::InputI)
        fn_.params.push_back(
            {"in" + std::to_string(static_cast<int>(b.params[0])), Type::I32});
    }

    for (BlockId b = 0; b < node_.blocks().size(); ++b) emit_block(b);
    // Deferred unit-delay state updates (feedback semantics: the state
    // update reads the wire computed anywhere in the cycle).
    for (auto& s : deferred_) fn_.body.push_back(std::move(s));

    if (program_->find_function(fn_.name) != nullptr)
      throw CompileError("duplicate node '" + node_.name() + "'");
    program_->functions.push_back(std::move(fn_));
    minic::type_check_function(*program_, program_->functions.back());
  }

 private:
  // --- naming / declaration helpers ---------------------------------------

  void ensure_io_bus() {
    if (program_->find_global(kIoBusGlobal) == nullptr)
      program_->globals.push_back(
          minic::Global{kIoBusGlobal, Type::F64, 1, {0.0}});
  }

  std::string new_state(double init) {
    const std::string name =
        node_.name() + "_st" + std::to_string(state_count_++);
    program_->globals.push_back(minic::Global{name, Type::F64, 1, {init}});
    return name;
  }

  std::string new_state_i32(std::int32_t init) {
    const std::string name =
        node_.name() + "_st" + std::to_string(state_count_++);
    program_->globals.push_back(
        minic::Global{name, Type::I32, 1, {static_cast<double>(init)}});
    return name;
  }

  std::string new_buffer(std::size_t count) {
    const std::string name =
        node_.name() + "_buf" + std::to_string(buf_count_++);
    program_->globals.push_back(minic::Global{
        name, Type::F64, count, std::vector<double>(count, 0.0)});
    return name;
  }

  std::string new_index() {
    const std::string name =
        node_.name() + "_idx" + std::to_string(idx_count_++);
    program_->globals.push_back(minic::Global{name, Type::I32, 1, {0.0}});
    return name;
  }

  std::string new_table(const std::vector<double>& values) {
    const std::string name =
        node_.name() + "_tab" + std::to_string(tab_count_++);
    program_->globals.push_back(
        minic::Global{name, Type::F64, values.size(), values});
    return name;
  }

  void declare_local(const std::string& name, Type t) {
    fn_.locals.push_back({name, t});
  }

  /// Declares the wire local of block b and returns assignments to it.
  std::string wire_of(BlockId b) {
    const WireType wt = output_type(node_.blocks()[b].kind);
    check(wt != WireType::None, "reading an Output block's wire");
    return wire_name(b);
  }

  ExprPtr wire_ref(BlockId b) {
    const WireType wt = output_type(node_.blocks()[b].kind);
    return minic::local_ref(wire_name(b),
                            wt == WireType::I32 ? Type::I32 : Type::F64);
  }

  void assign_wire(BlockId b, ExprPtr value) {
    fn_.body.push_back(minic::assign_local(wire_name(b), std::move(value)));
  }

  /// Statically provable output range of a wire, when the producing block
  /// pins it for *every* input: Saturate clamps into [lo, hi] (its FMin/FMax
  /// lowering maps a NaN input to the lower bound, so the range holds
  /// unconditionally), ConstF is a point, and Switch forwards one of its two
  /// data arms. Everything else is unbounded as far as this helper knows.
  std::optional<std::pair<double, double>> bounded_range(BlockId id,
                                                         int depth = 0) const {
    if (depth > 8) return std::nullopt;
    const Block& b = node_.blocks()[id];
    switch (b.kind) {
      case SymbolKind::ConstF:
        return std::make_pair(b.params[0], b.params[0]);
      case SymbolKind::Saturate:
        return std::make_pair(std::min(b.params[0], b.params[1]),
                              std::max(b.params[0], b.params[1]));
      case SymbolKind::Switch: {
        const auto a = bounded_range(b.inputs[1], depth + 1);
        const auto c = bounded_range(b.inputs[2], depth + 1);
        if (!a || !c) return std::nullopt;
        return std::make_pair(std::min(a->first, c->first),
                              std::max(a->second, c->second));
      }
      default:
        return std::nullopt;
    }
  }

  // --- symbol patterns ------------------------------------------------------

  void emit_block(BlockId id) {
    const Block& b = node_.blocks()[id];
    const WireType wt = output_type(b.kind);
    if (wt != WireType::None)
      declare_local(wire_name(id),
                    wt == WireType::I32 ? Type::I32 : Type::F64);

    auto in = [&](std::size_t pin) { return wire_ref(b.inputs[pin]); };
    auto fbin = [&](BinOp op, std::size_t p0, std::size_t p1) {
      return minic::binary(op, in(p0), in(p1));
    };

    switch (b.kind) {
      case SymbolKind::InputF:
        assign_wire(id, minic::local_ref(
                            "in" + std::to_string(static_cast<int>(b.params[0])),
                            Type::F64));
        return;
      case SymbolKind::InputI:
        assign_wire(id, minic::local_ref(
                            "in" + std::to_string(static_cast<int>(b.params[0])),
                            Type::I32));
        return;
      case SymbolKind::ConstF:
        assign_wire(id, minic::float_lit(b.params[0]));
        return;
      case SymbolKind::ConstI:
        assign_wire(id,
                    minic::int_lit(static_cast<std::int32_t>(b.params[0])));
        return;
      case SymbolKind::IoAcquire: {
        // Hardware signal acquisition stand-in: a fixed, fully unrolled
        // sequence of bus polls accumulated through a floating-point chain.
        // The chain's result latency dominates in *every* configuration,
        // reproducing the paper's observation that acquisition-bound nodes
        // barely improve under optimization.
        ensure_io_bus();
        const int polls = static_cast<int>(b.params[0]);
        assign_wire(id, minic::float_lit(0.0));
        for (int p = 0; p < polls; ++p) {
          fn_.body.push_back(minic::assign_local(
              wire_name(id),
              minic::binary(BinOp::FAdd, wire_ref(id),
                            minic::global_ref(kIoBusGlobal, Type::F64))));
        }
        fn_.body.push_back(minic::assign_local(
            wire_name(id),
            minic::binary(BinOp::FDiv, wire_ref(id),
                          minic::float_lit(static_cast<double>(polls)))));
        return;
      }
      case SymbolKind::Add:
        assign_wire(id, fbin(BinOp::FAdd, 0, 1));
        return;
      case SymbolKind::Sub:
        assign_wire(id, fbin(BinOp::FSub, 0, 1));
        return;
      case SymbolKind::Mul:
        assign_wire(id, fbin(BinOp::FMul, 0, 1));
        return;
      case SymbolKind::DivSafe:
        assign_wire(
            id, minic::binary(
                    BinOp::FDiv, in(0),
                    minic::binary(BinOp::FAdd,
                                  minic::unary(UnOp::FAbs, in(1)),
                                  minic::float_lit(b.params[0]))));
        return;
      case SymbolKind::Gain:
        assign_wire(id, minic::binary(BinOp::FMul,
                                      minic::float_lit(b.params[0]), in(0)));
        return;
      case SymbolKind::Bias:
        assign_wire(id, minic::binary(BinOp::FAdd, in(0),
                                      minic::float_lit(b.params[0])));
        return;
      case SymbolKind::Abs:
        assign_wire(id, minic::unary(UnOp::FAbs, in(0)));
        return;
      case SymbolKind::Neg:
        assign_wire(id, minic::unary(UnOp::FNeg, in(0)));
        return;
      case SymbolKind::Min:
        assign_wire(id, fbin(BinOp::FMin, 0, 1));
        return;
      case SymbolKind::Max:
        assign_wire(id, fbin(BinOp::FMax, 0, 1));
        return;
      case SymbolKind::Saturate:
        assign_wire(
            id, minic::binary(
                    BinOp::FMin,
                    minic::binary(BinOp::FMax, in(0),
                                  minic::float_lit(b.params[0])),
                    minic::float_lit(b.params[1])));
        return;
      case SymbolKind::Deadzone:
        assign_wire(
            id, minic::select(
                    minic::binary(BinOp::FCmpLe,
                                  minic::unary(UnOp::FAbs, in(0)),
                                  minic::float_lit(b.params[0])),
                    minic::float_lit(0.0), in(0)));
        return;
      case SymbolKind::CmpGt:
        assign_wire(id, fbin(BinOp::FCmpGt, 0, 1));
        return;
      case SymbolKind::CmpLt:
        assign_wire(id, fbin(BinOp::FCmpLt, 0, 1));
        return;
      case SymbolKind::LogicAnd:
        assign_wire(id, fbin(BinOp::IAnd, 0, 1));
        return;
      case SymbolKind::LogicOr:
        assign_wire(id, fbin(BinOp::IOr, 0, 1));
        return;
      case SymbolKind::LogicNot:
        assign_wire(id, minic::unary(UnOp::LNot, in(0)));
        return;
      case SymbolKind::Switch:
        assign_wire(id, minic::select(in(0), in(1), in(2)));
        return;
      case SymbolKind::UnitDelay: {
        const std::string st = new_state(0.0);
        assign_wire(id, minic::global_ref(st, Type::F64));
        // Deferred: the input wire may be produced later in the cycle.
        deferred_.push_back(minic::assign_global(
            st, minic::local_ref(wire_name(b.inputs[0]), Type::F64)));
        return;
      }
      case SymbolKind::FirstOrderLag: {
        const std::string st = new_state(0.0);
        const double a = b.params[0];
        // st = a*x + (1-a)*st; w = st;
        fn_.body.push_back(minic::assign_global(
            st, minic::binary(
                    BinOp::FAdd,
                    minic::binary(BinOp::FMul, minic::float_lit(a), in(0)),
                    minic::binary(BinOp::FMul, minic::float_lit(1.0 - a),
                                  minic::global_ref(st, Type::F64)))));
        assign_wire(id, minic::global_ref(st, Type::F64));
        return;
      }
      case SymbolKind::Integrator: {
        const std::string st = new_state(0.0);
        const double dt = b.params[0];
        // st = min(max(st + x*dt, lo), hi); w = st;
        fn_.body.push_back(minic::assign_global(
            st,
            minic::binary(
                BinOp::FMin,
                minic::binary(
                    BinOp::FMax,
                    minic::binary(BinOp::FAdd,
                                  minic::global_ref(st, Type::F64),
                                  minic::binary(BinOp::FMul, in(0),
                                                minic::float_lit(dt))),
                    minic::float_lit(b.params[1])),
                minic::float_lit(b.params[2]))));
        assign_wire(id, minic::global_ref(st, Type::F64));
        return;
      }
      case SymbolKind::RateLimiter: {
        const std::string st = new_state(0.0);
        const std::string d = temp_name("d", id);
        declare_local(d, Type::F64);
        // d = clamp(x - st, -down, up); st = st + d; w = st;
        fn_.body.push_back(minic::assign_local(
            d, minic::binary(BinOp::FSub, in(0),
                             minic::global_ref(st, Type::F64))));
        fn_.body.push_back(minic::assign_local(
            d, minic::binary(
                   BinOp::FMin,
                   minic::binary(BinOp::FMax, minic::local_ref(d, Type::F64),
                                 minic::float_lit(-b.params[1])),
                   minic::float_lit(b.params[0]))));
        fn_.body.push_back(minic::assign_global(
            st, minic::binary(BinOp::FAdd, minic::global_ref(st, Type::F64),
                              minic::local_ref(d, Type::F64))));
        assign_wire(id, minic::global_ref(st, Type::F64));
        return;
      }
      case SymbolKind::MovingAverage: {
        const int window = static_cast<int>(b.params[0]);
        const std::string buf = new_buffer(static_cast<std::size_t>(window));
        const std::string idx = new_index();
        const std::string acc = "acc" + std::to_string(id);
        const std::string counter = "mi" + std::to_string(id);
        declare_local(acc, Type::F64);
        declare_local(counter, Type::I32);
        // buf[idx] = x;
        fn_.body.push_back(minic::assign_element(
            buf, minic::global_ref(idx, Type::I32), in(0)));
        // idx = (idx + 1 == W) ? 0 : idx + 1;
        fn_.body.push_back(minic::assign_global(
            idx, minic::select(
                     minic::binary(
                         BinOp::ICmpEq,
                         minic::binary(BinOp::IAdd,
                                       minic::global_ref(idx, Type::I32),
                                       minic::int_lit(1)),
                         minic::int_lit(window)),
                     minic::int_lit(0),
                     minic::binary(BinOp::IAdd,
                                   minic::global_ref(idx, Type::I32),
                                   minic::int_lit(1)))));
        // acc = 0; for (mi = 0; mi < W; ++mi) acc += buf[mi];
        fn_.body.push_back(minic::assign_local(acc, minic::float_lit(0.0)));
        std::vector<StmtPtr> body;
        body.push_back(minic::assign_local(
            acc, minic::binary(
                     BinOp::FAdd, minic::local_ref(acc, Type::F64),
                     minic::index_ref(buf, minic::local_ref(counter, Type::I32),
                                      Type::F64))));
        fn_.body.push_back(minic::for_stmt(counter, minic::int_lit(0),
                                           minic::int_lit(window),
                                           std::move(body)));
        assign_wire(id, minic::binary(
                            BinOp::FDiv, minic::local_ref(acc, Type::F64),
                            minic::float_lit(static_cast<double>(window))));
        return;
      }
      case SymbolKind::Biquad: {
        // Direct form II transposed:
        //   w  = b0*x + s1
        //   s1 = b1*x - a1*w + s2
        //   s2 = b2*x - a2*w
        const std::string s1 = new_state(0.0);
        const std::string s2 = new_state(0.0);
        const double b0 = b.params[0];
        const double b1 = b.params[1];
        const double b2 = b.params[2];
        const double a1 = b.params[3];
        const double a2 = b.params[4];
        assign_wire(id, minic::binary(
                            BinOp::FAdd,
                            minic::binary(BinOp::FMul, minic::float_lit(b0),
                                          in(0)),
                            minic::global_ref(s1, Type::F64)));
        fn_.body.push_back(minic::assign_global(
            s1,
            minic::binary(
                BinOp::FAdd,
                minic::binary(
                    BinOp::FSub,
                    minic::binary(BinOp::FMul, minic::float_lit(b1), in(0)),
                    minic::binary(BinOp::FMul, minic::float_lit(a1),
                                  wire_ref(id))),
                minic::global_ref(s2, Type::F64))));
        fn_.body.push_back(minic::assign_global(
            s2, minic::binary(
                    BinOp::FSub,
                    minic::binary(BinOp::FMul, minic::float_lit(b2), in(0)),
                    minic::binary(BinOp::FMul, minic::float_lit(a2),
                                  wire_ref(id)))));
        return;
      }
      case SymbolKind::Hysteresis: {
        // st = x > hi ? 1.0 : (x < lo ? 0.0 : st); w = st > 0.5;
        const std::string st = new_state(0.0);
        fn_.body.push_back(minic::assign_global(
            st, minic::select(
                    minic::binary(BinOp::FCmpGt, in(0),
                                  minic::float_lit(b.params[1])),
                    minic::float_lit(1.0),
                    minic::select(
                        minic::binary(BinOp::FCmpLt, in(0),
                                      minic::float_lit(b.params[0])),
                        minic::float_lit(0.0),
                        minic::global_ref(st, Type::F64)))));
        assign_wire(id,
                    minic::binary(BinOp::FCmpGt,
                                  minic::global_ref(st, Type::F64),
                                  minic::float_lit(0.5)));
        return;
      }
      case SymbolKind::Debounce: {
        // c = cond != 0 ? c + 1 : 0; c = c > N ? N : c; w = c >= N;
        const std::string c = new_state_i32(0);
        const int n = static_cast<int>(b.params[0]);
        fn_.body.push_back(minic::assign_global(
            c, minic::select(
                   minic::binary(BinOp::ICmpNe, in(0), minic::int_lit(0)),
                   minic::binary(BinOp::IAdd,
                                 minic::global_ref(c, Type::I32),
                                 minic::int_lit(1)),
                   minic::int_lit(0))));
        fn_.body.push_back(minic::assign_global(
            c, minic::select(minic::binary(BinOp::ICmpGt,
                                           minic::global_ref(c, Type::I32),
                                           minic::int_lit(n)),
                             minic::int_lit(n),
                             minic::global_ref(c, Type::I32))));
        assign_wire(id, minic::binary(BinOp::ICmpGe,
                                      minic::global_ref(c, Type::I32),
                                      minic::int_lit(n)));
        return;
      }
      case SymbolKind::Lookup1D: {
        const std::string tab = new_table(b.table);
        const int n = static_cast<int>(b.table.size());
        const double x0 = b.params[0];
        const double x1 = b.params[1];
        const double inv_step = (n - 1) / (x1 - x0);
        const std::string t = temp_name("t", id);
        const std::string k = temp_name("k", id);
        const std::string f = temp_name("f", id);
        declare_local(t, Type::F64);
        declare_local(k, Type::I32);
        declare_local(f, Type::F64);
        auto tl = [&] { return minic::local_ref(t, Type::F64); };
        auto kl = [&] { return minic::local_ref(k, Type::I32); };
        // t = (x - x0) * inv_step;
        fn_.body.push_back(minic::assign_local(
            t, minic::binary(BinOp::FMul,
                             minic::binary(BinOp::FSub, in(0),
                                           minic::float_lit(x0)),
                             minic::float_lit(inv_step))));
        // k = clamp((i32) t, 0, n-2);  __annot("0 <= %1 <= n-2", k);
        fn_.body.push_back(
            minic::assign_local(k, minic::unary(UnOp::F2I, tl())));
        // When the input wire is statically bounded, the raw index is too:
        // trunc-toward-zero is monotone and, this far below the i32 limits,
        // never saturates. Annotating the *pre-clamp* value lets the WCET
        // value analysis prove a clamp branch one-sided, which the IPET
        // engine turns into an excluded edge (the structural engine cannot).
        if (const auto r = bounded_range(b.inputs[0])) {
          const double t_a = (r->first - x0) * inv_step;
          const double t_b = (r->second - x0) * inv_step;
          const double t_lo = std::min(t_a, t_b);
          const double t_hi = std::max(t_a, t_b);
          if (std::abs(t_lo) < 2.0e9 && std::abs(t_hi) < 2.0e9) {
            const auto k_lo = static_cast<std::int64_t>(std::trunc(t_lo));
            const auto k_hi = static_cast<std::int64_t>(std::trunc(t_hi));
            std::vector<minic::ExprPtr> raw_args;
            raw_args.push_back(kl());
            fn_.body.push_back(minic::annot_stmt(
                std::to_string(k_lo) + " <= %1 <= " + std::to_string(k_hi),
                std::move(raw_args)));
          }
        }
        // Out-of-range lookups clamp to the table edge and latch a fault
        // flag — the built-in-test idiom for table lookups in control
        // software. The flag store makes the clamp arms strictly costlier
        // than the in-range fallthrough, so when the annotation above proves
        // them dead the exact (IPET) engine lands strictly below the
        // structural bound.
        const std::string oor = new_state(0.0);
        {
          std::vector<StmtPtr> clamp_lo;
          clamp_lo.push_back(
              minic::assign_global(oor, minic::float_lit(1.0)));
          clamp_lo.push_back(minic::assign_local(k, minic::int_lit(0)));
          fn_.body.push_back(minic::if_stmt(
              minic::binary(BinOp::ICmpLt, kl(), minic::int_lit(0)),
              std::move(clamp_lo)));
        }
        {
          std::vector<StmtPtr> clamp_hi;
          clamp_hi.push_back(
              minic::assign_global(oor, minic::float_lit(1.0)));
          clamp_hi.push_back(minic::assign_local(k, minic::int_lit(n - 2)));
          fn_.body.push_back(minic::if_stmt(
              minic::binary(BinOp::ICmpGt, kl(), minic::int_lit(n - 2)),
              std::move(clamp_hi)));
        }
        std::vector<minic::ExprPtr> annot_args;
        annot_args.push_back(kl());
        fn_.body.push_back(minic::annot_stmt(
            "0 <= %1 <= " + std::to_string(n - 2), std::move(annot_args)));
        // f = t - (f64) k;
        fn_.body.push_back(minic::assign_local(
            f, minic::binary(BinOp::FSub, tl(),
                             minic::unary(UnOp::I2F, kl()))));
        // w = tab[k] + (tab[k+1] - tab[k]) * f;
        auto tab_at = [&](ExprPtr index) {
          return minic::index_ref(tab, std::move(index), Type::F64);
        };
        assign_wire(
            id,
            minic::binary(
                BinOp::FAdd, tab_at(kl()),
                minic::binary(
                    BinOp::FMul,
                    minic::binary(BinOp::FSub,
                                  tab_at(minic::binary(BinOp::IAdd, kl(),
                                                       minic::int_lit(1))),
                                  tab_at(kl())),
                    minic::local_ref(f, Type::F64))));
        return;
      }
      case SymbolKind::Output: {
        const std::string name =
            output_global(node_, static_cast<int>(b.params[0]));
        if (program_->find_global(name) == nullptr)
          program_->globals.push_back(
              minic::Global{name, Type::F64, 1, {0.0}});
        fn_.body.push_back(minic::assign_global(name, in(0)));
        return;
      }
    }
    throw InternalError("bad SymbolKind in ACG");
  }

  const Node& node_;
  minic::Program* program_;
  minic::Function fn_;
  std::vector<StmtPtr> deferred_;
  int state_count_ = 0;
  int buf_count_ = 0;
  int idx_count_ = 0;
  int tab_count_ = 0;
};

}  // namespace

std::string step_function_name(const Node& node) {
  return node.name() + "_step";
}

std::string output_global(const Node& node, int index) {
  return node.name() + "_out" + std::to_string(index);
}

void generate_node(const Node& node, minic::Program* program) {
  Generator(node, program).run();
}

}  // namespace vc::dataflow
