#include "dataflow/generator.hpp"

#include <algorithm>
#include <cmath>

#include "support/rng.hpp"

namespace vc::dataflow {
namespace {

class NodeBuilder {
 public:
  NodeBuilder(std::uint64_t seed, const std::string& name,
              const GeneratorOptions& options)
      : rng_(seed), node_(name), options_(options) {}

  Node build() {
    // Inputs.
    const int n_f_inputs =
        static_cast<int>(rng_.next_range(1, options_.max_inputs));
    for (int i = 0; i < n_f_inputs; ++i)
      f_wires_.push_back(node_.add(SymbolKind::InputF));
    if (rng_.next_bool(0.4))
      i_wires_.push_back(node_.add(SymbolKind::InputI));

    // A couple of constants to combine with.
    f_wires_.push_back(node_.add(SymbolKind::ConstF, {},
                                 {rng_.next_double(-8.0, 8.0)}));

    // Acquisition-bound nodes front-load a heavy I/O poll.
    if (rng_.next_bool(options_.p_io_node)) {
      f_wires_.push_back(node_.add(
          SymbolKind::IoAcquire, {},
          {static_cast<double>(rng_.next_range(16, 48))}));
    }

    // Optional feedback: a unit delay whose input is connected at the end.
    BlockId feedback_delay = kNoBlock;
    if (rng_.next_bool(options_.p_feedback)) {
      feedback_delay = node_.add(SymbolKind::UnitDelay);
      f_wires_.push_back(feedback_delay);
    }

    const int target =
        static_cast<int>(rng_.next_range(options_.min_blocks,
                                         options_.max_blocks));
    while (static_cast<int>(node_.blocks().size()) < target) {
      add_random_block();
      // Publish a fraction of the intermediate flows as inter-node signals
      // (SCADE flows consumed by other nodes are written to global buffers
      // in every configuration — incompressible traffic).
      if (rng_.next_bool(0.12)) node_.add(SymbolKind::Output, {pick_f(true)});
    }

    // Outputs read late wires (prefer recently produced values).
    const int n_outputs =
        static_cast<int>(rng_.next_range(1, options_.max_outputs));
    for (int i = 0; i < n_outputs; ++i)
      node_.add(SymbolKind::Output, {pick_f(/*prefer_late=*/true)});

    if (feedback_delay != kNoBlock)
      node_.connect_feedback(feedback_delay, pick_f(true));

    node_.validate();
    return std::move(node_);
  }

 private:
  BlockId pick_f(bool prefer_late = false) {
    check(!f_wires_.empty(), "no f64 wires");
    if (prefer_late && f_wires_.size() > 4) {
      const std::size_t lo = f_wires_.size() / 2;
      return f_wires_[lo + rng_.next_below(f_wires_.size() - lo)];
    }
    return f_wires_[rng_.next_below(f_wires_.size())];
  }

  BlockId pick_i() {
    if (i_wires_.empty()) {
      // Materialize a boolean from a comparison.
      i_wires_.push_back(
          node_.add(SymbolKind::CmpGt, {pick_f(), pick_f()}));
    }
    return i_wires_[rng_.next_below(i_wires_.size())];
  }

  // Symbol histogram calibrated against the paper's Table 1 / §3.3 ratios:
  // flight-control nodes are dominated by *incompressible* symbols —
  // saturations and selections (compare/branch diamonds), stateful filters
  // (global state traffic), logic — with pure arithmetic chains (the only
  // code register allocation fully collapses) a minority. A heavier
  // arithmetic share exaggerates the optimized-vs-pattern gap far beyond
  // the paper's measurements (see EXPERIMENTS.md, calibration notes).
  void add_random_block() {
    const double roll = rng_.next_unit();
    BlockId id = kNoBlock;
    if (roll < 0.18) {
      // Plain arithmetic.
      switch (rng_.next_below(5)) {
        case 0: id = node_.add(SymbolKind::Add, {pick_f(), pick_f()}); break;
        case 1: id = node_.add(SymbolKind::Sub, {pick_f(), pick_f()}); break;
        case 2: id = node_.add(SymbolKind::Mul, {pick_f(), pick_f()}); break;
        case 3:
          id = node_.add(SymbolKind::Gain, {pick_f()},
                         {rng_.next_double(-4.0, 4.0)});
          break;
        default:
          id = node_.add(SymbolKind::Bias, {pick_f()},
                         {rng_.next_double(-10.0, 10.0)});
          break;
      }
    } else if (roll < 0.44) {
      // Shaping: saturation, abs, neg, min/max, deadzone.
      switch (rng_.next_below(5)) {
        case 0: {
          const double lo = rng_.next_double(-60.0, 0.0);
          id = node_.add(SymbolKind::Saturate, {pick_f()},
                         {lo, lo + rng_.next_double(1.0, 80.0)});
          break;
        }
        case 1: id = node_.add(SymbolKind::Abs, {pick_f()}); break;
        case 2: id = node_.add(SymbolKind::Neg, {pick_f()}); break;
        case 3: id = node_.add(SymbolKind::Min, {pick_f(), pick_f()}); break;
        default:
          id = node_.add(SymbolKind::Deadzone, {pick_f()},
                         {rng_.next_double(0.05, 1.5)});
          break;
      }
    } else if (roll < 0.60) {
      // Logic and selection (compare/branch diamonds).
      switch (rng_.next_below(4)) {
        case 0: {
          const BlockId c = node_.add(
              rng_.next_bool() ? SymbolKind::CmpGt : SymbolKind::CmpLt,
              {pick_f(), pick_f()});
          i_wires_.push_back(c);
          return;
        }
        case 1: {
          const BlockId c = node_.add(
              rng_.next_bool() ? SymbolKind::LogicAnd : SymbolKind::LogicOr,
              {pick_i(), pick_i()});
          i_wires_.push_back(c);
          return;
        }
        case 2: {
          const BlockId c = node_.add(SymbolKind::LogicNot, {pick_i()});
          i_wires_.push_back(c);
          return;
        }
        default:
          id = node_.add(SymbolKind::Switch, {pick_i(), pick_f(), pick_f()});
          break;
      }
    } else if (roll < 0.93) {
      // Stateful filters (incompressible global state traffic).
      switch (rng_.next_below(7)) {
        case 0: {
          const BlockId d = node_.add(SymbolKind::UnitDelay, {pick_f()});
          id = d;
          break;
        }
        case 1:
          id = node_.add(SymbolKind::FirstOrderLag, {pick_f()},
                         {rng_.next_double(0.05, 1.0)});
          break;
        case 2:
          id = node_.add(SymbolKind::Integrator, {pick_f()},
                         {rng_.next_double(0.005, 0.05), -100.0, 100.0});
          break;
        case 3:
          id = node_.add(SymbolKind::RateLimiter, {pick_f()},
                         {rng_.next_double(0.1, 5.0),
                          rng_.next_double(0.1, 5.0)});
          break;
        case 4: {
          // A gentle low-pass biquad (coefficients kept small for
          // numerical stability over long runs).
          const double b0 = rng_.next_double(0.05, 0.3);
          id = node_.add(SymbolKind::Biquad, {pick_f()},
                         {b0, b0 * 2.0, b0, rng_.next_double(-0.6, 0.0),
                          rng_.next_double(0.0, 0.3)});
          break;
        }
        case 5: {
          const double lo = rng_.next_double(-10.0, 0.0);
          const BlockId h = node_.add(
              SymbolKind::Hysteresis, {pick_f()},
              {lo, lo + rng_.next_double(0.5, 8.0)});
          i_wires_.push_back(h);
          return;
        }
        default: {
          const BlockId d = node_.add(
              SymbolKind::Debounce, {pick_i()},
              {static_cast<double>(rng_.next_range(2, 8))});
          i_wires_.push_back(d);
          return;
        }
      }
    } else if (roll < 0.96) {
      // Division with a safe denominator.
      id = node_.add(SymbolKind::DivSafe, {pick_f(), pick_f()},
                     {rng_.next_double(0.5, 4.0)});
    } else if (roll < 0.985) {
      id = node_.add(SymbolKind::MovingAverage, {pick_f()},
                     {static_cast<double>(rng_.next_range(4, 12))});
    } else {
      // Lookup table with a smooth random shape.
      const int n = static_cast<int>(rng_.next_range(8, 33));
      std::vector<double> table;
      double v = rng_.next_double(-5.0, 5.0);
      for (int i = 0; i < n; ++i) {
        v += rng_.next_double(-1.0, 1.0);
        table.push_back(v);
      }
      const double x0 = rng_.next_double(-20.0, 0.0);
      id = node_.add(SymbolKind::Lookup1D, {pick_f()},
                     {x0, x0 + rng_.next_double(5.0, 40.0)}, table);
    }
    if (id != kNoBlock) f_wires_.push_back(id);
  }

  Rng rng_;
  Node node_;
  GeneratorOptions options_;
  std::vector<BlockId> f_wires_;
  std::vector<BlockId> i_wires_;
};

}  // namespace

Node generate_node(std::uint64_t seed, const std::string& name,
                   const GeneratorOptions& options) {
  return NodeBuilder(seed, name, options).build();
}

std::vector<Node> generate_suite(std::uint64_t seed, int count,
                                 const std::string& prefix) {
  std::vector<Node> nodes;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    GeneratorOptions options;
    // Spread node sizes: small glue nodes up to large control laws.
    options.min_blocks = static_cast<int>(rng.next_range(10, 30));
    options.max_blocks =
        options.min_blocks + static_cast<int>(rng.next_range(5, 90));
    nodes.push_back(generate_node(rng.next_u64(),
                                  prefix + std::to_string(i), options));
  }
  return nodes;
}

}  // namespace vc::dataflow
