#include "dataflow/node.hpp"

#include <set>

namespace vc::dataflow {

std::string to_string(SymbolKind kind) {
  switch (kind) {
    case SymbolKind::InputF: return "InputF";
    case SymbolKind::InputI: return "InputI";
    case SymbolKind::ConstF: return "ConstF";
    case SymbolKind::ConstI: return "ConstI";
    case SymbolKind::IoAcquire: return "IoAcquire";
    case SymbolKind::Add: return "Add";
    case SymbolKind::Sub: return "Sub";
    case SymbolKind::Mul: return "Mul";
    case SymbolKind::DivSafe: return "DivSafe";
    case SymbolKind::Gain: return "Gain";
    case SymbolKind::Bias: return "Bias";
    case SymbolKind::Abs: return "Abs";
    case SymbolKind::Neg: return "Neg";
    case SymbolKind::Min: return "Min";
    case SymbolKind::Max: return "Max";
    case SymbolKind::Saturate: return "Saturate";
    case SymbolKind::Deadzone: return "Deadzone";
    case SymbolKind::CmpGt: return "CmpGt";
    case SymbolKind::CmpLt: return "CmpLt";
    case SymbolKind::LogicAnd: return "LogicAnd";
    case SymbolKind::LogicOr: return "LogicOr";
    case SymbolKind::LogicNot: return "LogicNot";
    case SymbolKind::Switch: return "Switch";
    case SymbolKind::UnitDelay: return "UnitDelay";
    case SymbolKind::FirstOrderLag: return "FirstOrderLag";
    case SymbolKind::Integrator: return "Integrator";
    case SymbolKind::RateLimiter: return "RateLimiter";
    case SymbolKind::MovingAverage: return "MovingAverage";
    case SymbolKind::Biquad: return "Biquad";
    case SymbolKind::Hysteresis: return "Hysteresis";
    case SymbolKind::Debounce: return "Debounce";
    case SymbolKind::Lookup1D: return "Lookup1D";
    case SymbolKind::Output: return "Output";
  }
  throw InternalError("bad SymbolKind");
}

WireType output_type(SymbolKind kind) {
  switch (kind) {
    case SymbolKind::InputI:
    case SymbolKind::ConstI:
    case SymbolKind::CmpGt:
    case SymbolKind::CmpLt:
    case SymbolKind::LogicAnd:
    case SymbolKind::LogicOr:
    case SymbolKind::LogicNot:
    case SymbolKind::Hysteresis:
    case SymbolKind::Debounce:
      return WireType::I32;
    case SymbolKind::Output:
      return WireType::None;
    default:
      return WireType::F64;
  }
}

std::size_t Node::arity(SymbolKind kind) {
  switch (kind) {
    case SymbolKind::InputF:
    case SymbolKind::InputI:
    case SymbolKind::ConstF:
    case SymbolKind::ConstI:
    case SymbolKind::IoAcquire:
      return 0;
    case SymbolKind::Add:
    case SymbolKind::Sub:
    case SymbolKind::Mul:
    case SymbolKind::DivSafe:
    case SymbolKind::Min:
    case SymbolKind::Max:
    case SymbolKind::CmpGt:
    case SymbolKind::CmpLt:
    case SymbolKind::LogicAnd:
    case SymbolKind::LogicOr:
      return 2;
    case SymbolKind::Switch:
      return 3;
    default:
      return 1;
  }
}

WireType Node::input_type(SymbolKind kind, std::size_t pin) {
  switch (kind) {
    case SymbolKind::LogicAnd:
    case SymbolKind::LogicOr:
    case SymbolKind::LogicNot:
    case SymbolKind::Debounce:
      return WireType::I32;
    case SymbolKind::Switch:
      return pin == 0 ? WireType::I32 : WireType::F64;
    default:
      return WireType::F64;
  }
}

BlockId Node::add(SymbolKind kind, std::vector<BlockId> inputs,
                  std::vector<double> params, std::vector<double> table) {
  Block b;
  b.kind = kind;
  b.inputs = std::move(inputs);
  b.params = std::move(params);
  b.table = std::move(table);
  // Allow deferred feedback connection for single-input stateful symbols.
  if (b.inputs.empty() && arity(kind) == 1) b.inputs.assign(1, kNoBlock);
  if (kind == SymbolKind::InputF) {
    b.params.assign(1, static_cast<double>(input_count_ + int_input_count_));
    ++input_count_;
  } else if (kind == SymbolKind::InputI) {
    b.params.assign(1, static_cast<double>(input_count_ + int_input_count_));
    ++int_input_count_;
  } else if (kind == SymbolKind::Output) {
    b.params.assign(1, static_cast<double>(output_count_));
    ++output_count_;
  }
  blocks_.push_back(std::move(b));
  return static_cast<BlockId>(blocks_.size() - 1);
}

void Node::connect_feedback(BlockId delay_block, BlockId source) {
  check(delay_block < blocks_.size() && source < blocks_.size(),
        "connect_feedback: block out of range");
  Block& b = blocks_[delay_block];
  check(b.kind == SymbolKind::UnitDelay,
        "feedback input only on UnitDelay symbols");
  check(!b.inputs.empty(), "stateful block without input pin");
  b.inputs[0] = source;
}

void Node::validate() const {
  if (blocks_.empty()) throw CompileError("node '" + name_ + "' is empty");
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    const std::string where =
        "node '" + name_ + "' block #" + std::to_string(i) + " (" +
        to_string(b.kind) + ")";
    if (b.inputs.size() != arity(b.kind))
      throw CompileError(where + ": wrong input count");
    // Only the unit delay may read from later blocks (feedback): its output
    // is the *previous* cycle's value, so no combinational cycle arises.
    const bool may_feedback = b.kind == SymbolKind::UnitDelay;
    for (std::size_t pin = 0; pin < b.inputs.size(); ++pin) {
      const BlockId src = b.inputs[pin];
      if (src == kNoBlock)
        throw CompileError(where + ": unconnected input pin " +
                           std::to_string(pin));
      if (src >= blocks_.size())
        throw CompileError(where + ": dangling wire");
      if (src >= i && !may_feedback)
        throw CompileError(where + ": combinational cycle through pin " +
                           std::to_string(pin));
      const WireType want = input_type(b.kind, pin);
      const WireType have = output_type(blocks_[src].kind);
      if (want != have)
        throw CompileError(where + ": wire type mismatch on pin " +
                           std::to_string(pin));
    }
    switch (b.kind) {
      case SymbolKind::Gain:
      case SymbolKind::Bias:
      case SymbolKind::Deadzone:
      case SymbolKind::ConstF:
      case SymbolKind::ConstI:
        if (b.params.size() != 1) throw CompileError(where + ": needs 1 param");
        break;
      case SymbolKind::DivSafe:
        if (b.params.size() != 1 || b.params[0] <= 0.0)
          throw CompileError(where + ": needs a positive bias param");
        break;
      case SymbolKind::IoAcquire:
        if (b.params.size() != 1 || b.params[0] < 1 || b.params[0] > 1000)
          throw CompileError(where + ": poll count must be in [1, 1000]");
        break;
      case SymbolKind::Saturate:
        if (b.params.size() != 2 || b.params[0] > b.params[1])
          throw CompileError(where + ": needs params lo <= hi");
        break;
      case SymbolKind::FirstOrderLag:
        if (b.params.size() != 1 || b.params[0] <= 0.0 || b.params[0] > 1.0)
          throw CompileError(where + ": lag coefficient must be in (0,1]");
        break;
      case SymbolKind::Integrator:
        if (b.params.size() != 3 || b.params[1] > b.params[2])
          throw CompileError(where + ": needs params dt, lo <= hi");
        break;
      case SymbolKind::RateLimiter:
        if (b.params.size() != 2 || b.params[0] < 0 || b.params[1] < 0)
          throw CompileError(where + ": needs params up >= 0, down >= 0");
        break;
      case SymbolKind::MovingAverage:
        if (b.params.size() != 1 || b.params[0] < 2 || b.params[0] > 16)
          throw CompileError(where + ": window must be in [2, 16]");
        break;
      case SymbolKind::Biquad:
        if (b.params.size() != 5)
          throw CompileError(where + ": needs params b0, b1, b2, a1, a2");
        break;
      case SymbolKind::Hysteresis:
        if (b.params.size() != 2 || b.params[0] >= b.params[1])
          throw CompileError(where + ": needs params lo < hi");
        break;
      case SymbolKind::Debounce:
        if (b.params.size() != 1 || b.params[0] < 1 || b.params[0] > 32)
          throw CompileError(where + ": count must be in [1, 32]");
        break;
      case SymbolKind::Lookup1D:
        if (b.params.size() != 2 || b.params[0] >= b.params[1] ||
            b.table.size() < 2 || b.table.size() > 64)
          throw CompileError(where + ": needs x0 < x1 and 2..64 table values");
        break;
      default:
        break;
    }
  }
  if (output_count_ == 0)
    throw CompileError("node '" + name_ + "' has no outputs");
}

}  // namespace vc::dataflow
