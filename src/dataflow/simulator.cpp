#include "dataflow/simulator.hpp"

#include <cmath>

#include "minic/interp.hpp"

namespace vc::dataflow {

using minic::UnOp;
using minic::Value;

NodeSimulator::NodeSimulator(const Node& node) : node_(node) {
  node.validate();
  reset();
}

void NodeSimulator::reset() {
  state_.clear();
  for (BlockId b = 0; b < node_.blocks().size(); ++b) {
    const Block& blk = node_.blocks()[b];
    switch (blk.kind) {
      case SymbolKind::UnitDelay:
      case SymbolKind::FirstOrderLag:
      case SymbolKind::Integrator:
      case SymbolKind::RateLimiter:
        state_[b] = State{};
        break;
      case SymbolKind::MovingAverage: {
        State s;
        s.ring.assign(static_cast<std::size_t>(blk.params[0]), 0.0);
        state_[b] = s;
        break;
      }
      case SymbolKind::Biquad: {
        State s;
        s.ring.assign(2, 0.0);  // s1, s2
        state_[b] = s;
        break;
      }
      case SymbolKind::Hysteresis:
      case SymbolKind::Debounce:
        state_[b] = State{};
        break;
      default:
        break;
    }
  }
}

std::vector<double> NodeSimulator::step(
    const std::vector<double>& f_inputs,
    const std::vector<std::int32_t>& i_inputs, double io_bus) {
  // Wire values per block: f64 and i32 views.
  std::vector<double> fw(node_.blocks().size(), 0.0);
  std::vector<std::int32_t> iw(node_.blocks().size(), 0);
  std::vector<double> outputs(
      static_cast<std::size_t>(node_.output_count()), 0.0);
  std::vector<std::pair<BlockId, BlockId>> deferred;  // (delay block, source)

  std::size_t next_f = 0;
  std::size_t next_i = 0;
  for (BlockId id = 0; id < node_.blocks().size(); ++id) {
    const Block& b = node_.blocks()[id];
    auto F = [&](std::size_t pin) { return fw[b.inputs[pin]]; };
    auto I = [&](std::size_t pin) { return iw[b.inputs[pin]]; };
    switch (b.kind) {
      case SymbolKind::InputF:
        check(next_f < f_inputs.size(), "missing f64 input");
        fw[id] = f_inputs[next_f++];
        break;
      case SymbolKind::InputI:
        check(next_i < i_inputs.size(), "missing i32 input");
        iw[id] = i_inputs[next_i++];
        break;
      case SymbolKind::ConstF:
        fw[id] = b.params[0];
        break;
      case SymbolKind::ConstI:
        iw[id] = static_cast<std::int32_t>(b.params[0]);
        break;
      case SymbolKind::IoAcquire: {
        const int polls = static_cast<int>(b.params[0]);
        double acc = 0.0;
        for (int p = 0; p < polls; ++p) acc += io_bus;
        fw[id] = acc / polls;
        break;
      }
      case SymbolKind::Add: fw[id] = F(0) + F(1); break;
      case SymbolKind::Sub: fw[id] = F(0) - F(1); break;
      case SymbolKind::Mul: fw[id] = F(0) * F(1); break;
      case SymbolKind::DivSafe:
        fw[id] = F(0) / (std::fabs(F(1)) + b.params[0]);
        break;
      case SymbolKind::Gain: fw[id] = b.params[0] * F(0); break;
      case SymbolKind::Bias: fw[id] = F(0) + b.params[0]; break;
      case SymbolKind::Abs: fw[id] = std::fabs(F(0)); break;
      case SymbolKind::Neg: fw[id] = -F(0); break;
      case SymbolKind::Min: fw[id] = F(0) < F(1) ? F(0) : F(1); break;
      case SymbolKind::Max: fw[id] = F(0) > F(1) ? F(0) : F(1); break;
      case SymbolKind::Saturate: {
        double v = F(0) > b.params[0] ? F(0) : b.params[0];
        fw[id] = v < b.params[1] ? v : b.params[1];
        break;
      }
      case SymbolKind::Deadzone:
        fw[id] = std::fabs(F(0)) <= b.params[0] ? 0.0 : F(0);
        break;
      case SymbolKind::CmpGt: iw[id] = F(0) > F(1) ? 1 : 0; break;
      case SymbolKind::CmpLt: iw[id] = F(0) < F(1) ? 1 : 0; break;
      case SymbolKind::LogicAnd: iw[id] = I(0) & I(1); break;
      case SymbolKind::LogicOr: iw[id] = I(0) | I(1); break;
      case SymbolKind::LogicNot: iw[id] = I(0) == 0 ? 1 : 0; break;
      case SymbolKind::Switch: fw[id] = I(0) != 0 ? F(1) : F(2); break;
      case SymbolKind::UnitDelay:
        fw[id] = state_[id].scalar;
        deferred.emplace_back(id, b.inputs[0]);
        break;
      case SymbolKind::FirstOrderLag: {
        State& s = state_[id];
        s.scalar = b.params[0] * F(0) + (1.0 - b.params[0]) * s.scalar;
        fw[id] = s.scalar;
        break;
      }
      case SymbolKind::Integrator: {
        State& s = state_[id];
        double v = s.scalar + F(0) * b.params[0];
        v = v > b.params[1] ? v : b.params[1];
        v = v < b.params[2] ? v : b.params[2];
        s.scalar = v;
        fw[id] = v;
        break;
      }
      case SymbolKind::RateLimiter: {
        State& s = state_[id];
        double d = F(0) - s.scalar;
        d = d > -b.params[1] ? d : -b.params[1];
        d = d < b.params[0] ? d : b.params[0];
        s.scalar = s.scalar + d;
        fw[id] = s.scalar;
        break;
      }
      case SymbolKind::MovingAverage: {
        State& s = state_[id];
        const auto window = static_cast<std::int32_t>(s.ring.size());
        s.ring[static_cast<std::size_t>(s.index)] = F(0);
        s.index = s.index + 1 == window ? 0 : s.index + 1;
        double acc = 0.0;
        for (double v : s.ring) acc = acc + v;
        fw[id] = acc / static_cast<double>(window);
        break;
      }
      case SymbolKind::Biquad: {
        State& s = state_[id];
        const double x = F(0);
        const double w = b.params[0] * x + s.ring[0];
        const double p1 = b.params[1] * x;
        const double q1 = b.params[3] * w;
        s.ring[0] = (p1 - q1) + s.ring[1];
        const double p2 = b.params[2] * x;
        const double q2 = b.params[4] * w;
        s.ring[1] = p2 - q2;
        fw[id] = w;
        break;
      }
      case SymbolKind::Hysteresis: {
        State& s = state_[id];
        const double x = F(0);
        s.scalar = x > b.params[1]
                       ? 1.0
                       : (x < b.params[0] ? 0.0 : s.scalar);
        iw[id] = s.scalar > 0.5 ? 1 : 0;
        break;
      }
      case SymbolKind::Debounce: {
        State& s = state_[id];
        const int n = static_cast<int>(b.params[0]);
        s.index = I(0) != 0 ? s.index + 1 : 0;
        s.index = s.index > n ? n : s.index;
        iw[id] = s.index >= n ? 1 : 0;
        break;
      }
      case SymbolKind::Lookup1D: {
        const int n = static_cast<int>(b.table.size());
        const double inv_step = (n - 1) / (b.params[1] - b.params[0]);
        const double t = (F(0) - b.params[0]) * inv_step;
        // Use the exact target f64->i32 conversion semantics.
        std::int32_t k = minic::eval_unop(UnOp::F2I, Value::of_f64(t)).i;
        k = k < 0 ? 0 : k;
        k = k > n - 2 ? n - 2 : k;
        const double f = t - static_cast<double>(k);
        const double lo = b.table[static_cast<std::size_t>(k)];
        const double hi = b.table[static_cast<std::size_t>(k + 1)];
        fw[id] = lo + (hi - lo) * f;
        break;
      }
      case SymbolKind::Output:
        outputs[static_cast<std::size_t>(b.params[0])] = F(0);
        break;
    }
  }
  for (const auto& [delay, src] : deferred) state_[delay].scalar = fw[src];
  return outputs;
}

}  // namespace vc::dataflow
