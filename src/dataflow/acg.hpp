// The qualified Automatic Code Generator (ACG) stand-in (paper §2.1).
//
// Each node becomes one mini-C step function `<node>_step(in0, ...)` made of
// fixed per-symbol statement patterns, exactly in block order, with one local
// wire variable per block — the code shape whose per-symbol loads/stores the
// paper's experiment is about. State cells, ring buffers, lookup tables and
// node outputs become globals named `<node>_st<i>`, `<node>_buf<i>`,
// `<node>_tab<i>`, `<node>_out<k>`.
//
// The ACG is also the "automatic annotation generator" (§2.2): all generated
// loops are constant-bound counted loops, for which lowering emits
// `loop <= N` annotations automatically.
#pragma once

#include "dataflow/node.hpp"
#include "minic/ast.hpp"

namespace vc::dataflow {

/// The shared I/O bus word read by IoAcquire symbols.
inline constexpr const char* kIoBusGlobal = "io_bus";

/// Appends the node's globals and step function to `program`. Declares the
/// io_bus global on first use. The node must validate().
void generate_node(const Node& node, minic::Program* program);

/// Name of the generated step function.
std::string step_function_name(const Node& node);

/// Name of the global holding output `index` of the node.
std::string output_global(const Node& node, int index);

}  // namespace vc::dataflow
