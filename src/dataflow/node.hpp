// SCADE-like block-diagram model: the specification formalism of the paper's
// flight control software (§2.1). A *node* is a directed graph of *symbol*
// instances (the "symbol library": arithmetic, filters, delays, saturations,
// lookup tables, …) with typed wires; the qualified code generator (acg.hpp)
// turns each node into one mini-C step function built from fixed per-symbol
// statement patterns.
//
// Construction discipline: blocks reference earlier blocks only, so graphs
// are acyclic by construction; feedback is expressed through stateful blocks
// (UnitDelay / Filter / Integrator / RateLimiter), whose input may be
// connected *after* creation (`connect_feedback`), reading the previous
// cycle's value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace vc::dataflow {

enum class SymbolKind {
  // Sources
  InputF,      // node input (f64); param: input index
  InputI,      // node input (i32); param: input index
  ConstF,      // f64 constant; param: value
  ConstI,      // i32 constant; param: value
  IoAcquire,   // hardware signal acquisition stand-in: polls an I/O word a
               // fixed number of times (param: poll count), returns f64

  // Pure f64 arithmetic
  Add, Sub, Mul,
  DivSafe,     // x / y with the denominator biased away from zero:
               // y' = fabs(y) + param (param > 0)
  Gain,        // param * x
  Bias,        // x + param
  Abs, Neg,
  Min, Max,
  Saturate,    // clamp(x, param_lo, param_hi)
  Deadzone,    // |x| <= param ? 0 : x

  // Comparisons / logic (i32 booleans)
  CmpGt,       // x > y
  CmpLt,       // x < y
  LogicAnd, LogicOr, LogicNot,
  Switch,      // cond ? x : y (cond i32; x,y f64)

  // Stateful symbols (one state cell or array per instance)
  UnitDelay,        // y = state; state' = x
  FirstOrderLag,    // y = state' = a*x + (1-a)*state; param: a in (0,1]
  Integrator,       // state' = clamp(state + x*dt, lo, hi); y = state'
                    // params: dt, lo, hi
  RateLimiter,      // y = state' = state + clamp(x - state, -down, up)
                    // params: up, down
  MovingAverage,    // y = mean of the last W samples; param: W (2..16);
                    // state: ring buffer + index (generates a loop)
  Biquad,           // direct-form-II-transposed second-order section;
                    // params: b0, b1, b2, a1, a2; states: s1, s2
  Hysteresis,       // i32 output: 1 above `hi`, 0 below `lo`, held between;
                    // params: lo < hi; state: held value
  Debounce,         // i32 output: 1 once the i32 input has been nonzero for
                    // N consecutive cycles; param: N (1..32); state: counter
  Lookup1D,         // piecewise-linear table over [x0, x1], equidistant
                    // breakpoints; params: x0, x1; table: N values

  // Sink
  Output,      // param: output index; writes global <node>_out<k>
};

std::string to_string(SymbolKind kind);

/// Wire type of a symbol's output.
enum class WireType { F64, I32, None };
WireType output_type(SymbolKind kind);

using BlockId = std::uint32_t;
constexpr BlockId kNoBlock = 0xFFFFFFFF;

struct Block {
  SymbolKind kind{};
  std::vector<BlockId> inputs;   // earlier blocks (or kNoBlock placeholders)
  std::vector<double> params;
  std::vector<double> table;     // Lookup1D breakpoint values
};

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }
  [[nodiscard]] int input_count() const { return input_count_; }
  [[nodiscard]] int int_input_count() const { return int_input_count_; }
  [[nodiscard]] int output_count() const { return output_count_; }

  /// Adds a block whose inputs must already exist. Returns its id.
  BlockId add(SymbolKind kind, std::vector<BlockId> inputs = {},
              std::vector<double> params = {}, std::vector<double> table = {});

  /// Connects the (single) input of a stateful block after creation; the
  /// source may be any block (this is how feedback loops are closed).
  void connect_feedback(BlockId delay_block, BlockId source);

  /// Structural checks: arity, wire types, params in range, every feedback
  /// input connected, output indices dense. Throws CompileError.
  void validate() const;

  /// Declared input wire type of input pin `pin` of `kind`.
  static WireType input_type(SymbolKind kind, std::size_t pin);
  /// Number of input pins of `kind`.
  static std::size_t arity(SymbolKind kind);

 private:
  std::string name_;
  std::vector<Block> blocks_;
  int input_count_ = 0;
  int int_input_count_ = 0;
  int output_count_ = 0;
};

}  // namespace vc::dataflow
