// Reference evaluator for dataflow nodes, independent of the ACG.
//
// Gives tests a second opinion: the ACG-generated mini-C, run through the
// interpreter (or the compiled binary, run on the machine), must agree
// bit-exactly with direct graph evaluation. Uses the shared mini-C operator
// semantics so f64->i32 conversions etc. match the target by construction.
#pragma once

#include <map>
#include <vector>

#include "dataflow/node.hpp"

namespace vc::dataflow {

class NodeSimulator {
 public:
  explicit NodeSimulator(const Node& node);

  /// Runs one cycle. `f_inputs`/`i_inputs` are the node's f64/i32 inputs in
  /// creation order; `io_bus` is the value IoAcquire symbols poll.
  /// Returns the node outputs in index order.
  std::vector<double> step(const std::vector<double>& f_inputs,
                           const std::vector<std::int32_t>& i_inputs,
                           double io_bus = 0.0);

  void reset();

 private:
  struct State {
    double scalar = 0.0;
    std::vector<double> ring;
    std::int32_t index = 0;
  };

  const Node& node_;
  std::map<BlockId, State> state_;
};

}  // namespace vc::dataflow
