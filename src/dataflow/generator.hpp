// Seeded random node generator: the stand-in for the paper's ~2500 generated
// flight-control files. Produces nodes with realistic symbol histograms
// (mostly small arithmetic symbols, some saturations/logic, a few stateful
// filters and delays, occasional loops via moving averages and lookup
// tables, and rare I/O-acquisition-bound nodes that improve little under
// optimization — the spread visible in the paper's Figure 2).
#pragma once

#include <cstdint>
#include <vector>

#include "dataflow/node.hpp"

namespace vc::dataflow {

struct GeneratorOptions {
  int min_blocks = 12;
  int max_blocks = 90;
  double p_io_node = 0.10;     // probability a node is acquisition-bound
  double p_feedback = 0.5;     // probability of a unit-delay feedback loop
  int max_inputs = 4;
  int max_outputs = 3;
};

/// Deterministically generates one valid node from `seed`.
Node generate_node(std::uint64_t seed, const std::string& name,
                   const GeneratorOptions& options = {});

/// Generates `count` nodes named <prefix>0..<prefix>(count-1) with varied
/// sizes, deterministically from `seed`.
std::vector<Node> generate_suite(std::uint64_t seed, int count,
                                 const std::string& prefix = "node");

}  // namespace vc::dataflow
