// Exact rational arithmetic over bounded 64-bit fractions.
//
// This is the number type of the IPET LP solver (src/ilp/solver.cpp) and of
// its independent certificate verifier (src/ilp/verify.cpp). Every operation
// is exact: intermediates are carried in 128 bits, results are reduced by
// gcd, and any value whose reduced numerator or denominator no longer fits
// in int64 raises InternalError instead of silently losing precision — a
// WCET bound computed with rounded arithmetic would be worthless as
// evidence. The bound is deliberate: unbounded bignums would hide
// pathological pivot growth; the int64 budget makes it a detected failure.
#pragma once

#include <cstdint>
#include <string>

#include "support/diagnostics.hpp"

namespace vc::ilp {

class Rat {
 public:
  /// Zero.
  Rat() = default;
  /// Integer value v/1.
  Rat(std::int64_t v) : num_(v), den_(1) {}  // NOLINT(google-explicit-*)
  /// num/den, reduced; den must be non-zero.
  static Rat fraction(std::int64_t num, std::int64_t den);

  [[nodiscard]] std::int64_t num() const { return num_; }
  [[nodiscard]] std::int64_t den() const { return den_; }

  [[nodiscard]] bool is_zero() const { return num_ == 0; }
  [[nodiscard]] bool is_integer() const { return den_ == 1; }
  /// Largest integer <= this (exact).
  [[nodiscard]] std::int64_t floor() const;
  /// Smallest integer >= this (exact).
  [[nodiscard]] std::int64_t ceil() const;

  [[nodiscard]] Rat operator+(const Rat& o) const;
  [[nodiscard]] Rat operator-(const Rat& o) const;
  [[nodiscard]] Rat operator*(const Rat& o) const;
  /// Division; o must be non-zero (InternalError otherwise).
  [[nodiscard]] Rat operator/(const Rat& o) const;
  [[nodiscard]] Rat operator-() const;

  Rat& operator+=(const Rat& o) { return *this = *this + o; }
  Rat& operator-=(const Rat& o) { return *this = *this - o; }
  Rat& operator*=(const Rat& o) { return *this = *this * o; }
  Rat& operator/=(const Rat& o) { return *this = *this / o; }

  // Exact comparisons by 128-bit cross multiplication (no normalization or
  // overflow lane involved — this is what the certificate verifier leans on).
  [[nodiscard]] bool operator==(const Rat& o) const;
  [[nodiscard]] bool operator!=(const Rat& o) const { return !(*this == o); }
  [[nodiscard]] bool operator<(const Rat& o) const;
  [[nodiscard]] bool operator<=(const Rat& o) const;
  [[nodiscard]] bool operator>(const Rat& o) const { return o < *this; }
  [[nodiscard]] bool operator>=(const Rat& o) const { return o <= *this; }

  [[nodiscard]] std::string to_string() const;

 private:
  static Rat reduce(__int128 num, __int128 den);

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;  // always > 0
};

}  // namespace vc::ilp
