// Exact LP/ILP solving for implicit path enumeration.
//
// The problem shape is fixed by the IPET lowering (src/wcet/ipet.cpp):
// maximize a linear objective over non-negative variables subject to
// <=/>=/= constraints, with all variables required integral. The solver is
// a dense two-phase primal simplex over exact rationals with Bland's rule
// (anti-cycling), plus depth-first branch-and-bound for integrality.
//
// Trust boundary: nothing in solver.cpp is trusted. A solution is only
// accepted after verify.cpp::check_certificate re-evaluates every
// constraint and the objective against the returned assignment using only
// Rat arithmetic — a few dozen lines that are independent of the pivoting
// machinery. A solver bug therefore shows up as a rejected certificate,
// never as a silently wrong WCET bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ilp/rational.hpp"

namespace vc::ilp {

enum class Sense { Le, Ge, Eq };

/// coeff * x[var]; variables are dense indices [0, num_vars).
struct LinTerm {
  int var = 0;
  Rat coeff;
};

struct Constraint {
  std::vector<LinTerm> terms;
  Sense sense = Sense::Le;
  Rat rhs;
  std::string tag;  ///< provenance for diagnostics ("loop@0x40", "flow b3"...)
};

/// Maximize objective . x  subject to constraints and x >= 0 (implicit).
struct Problem {
  int num_vars = 0;
  std::vector<LinTerm> objective;
  std::vector<Constraint> constraints;
  bool integer = false;  ///< require every variable integral (branch & bound)
};

enum class Status { Optimal, Infeasible, Unbounded };

/// Pivot-kernel selection. `Int64` is the dense fast lane: flat row-major
/// int64 numerators with one shared denominator per row, pivoting in 128-bit
/// intermediates with a single gcd normalization pass per touched row.
/// `Rational` is the original per-cell Rat tableau. Both follow the same
/// Bland pivot rule over the same exact values, so they take identical pivot
/// sequences and return bit-identical solutions; `Auto` (the default) runs
/// the fast lane and transparently re-solves on the rational lane when a
/// reduced row no longer fits the int64 budget. Nothing here is trusted
/// either way — every accepted solution still passes check_certificate.
enum class PivotKernel { Auto, Int64, Rational };

struct Solution {
  Status status = Status::Infeasible;
  Rat objective;
  std::vector<Rat> values;  ///< one per variable when status == Optimal
  std::int64_t pivots = 0;  ///< simplex pivots across all LP solves
  std::int64_t bnb_nodes = 0;  ///< branch-and-bound nodes explored (1 = pure LP)
  std::int64_t fast_fallbacks = 0;  ///< LP solves re-run on the rational lane
};

/// Solves the LP relaxation (ignores Problem::integer).
[[nodiscard]] Solution solve_lp(const Problem& problem,
                                PivotKernel kernel = PivotKernel::Auto);

/// Solves the problem; runs branch-and-bound when Problem::integer is set.
[[nodiscard]] Solution solve(const Problem& problem,
                             PivotKernel kernel = PivotKernel::Auto);

/// Independent certificate check (verify.cpp): confirms `values` is
/// feasible for every constraint, non-negative, integral when required, and
/// that the objective evaluates to `objective`. Returns an empty string on
/// success, else a description of the first violated condition.
[[nodiscard]] std::string check_certificate(const Problem& problem,
                                            const std::vector<Rat>& values,
                                            const Rat& objective);

}  // namespace vc::ilp
