// Two-phase dense tableau simplex over exact rationals, with Bland's rule
// for anti-cycling and depth-first branch-and-bound for integrality.
//
// Untrusted by design: callers must pass the result through
// check_certificate (verify.cpp) before believing it. Pivot and node
// budgets turn pathological instances into InternalError instead of hangs.
#include "ilp/solver.hpp"

#include <algorithm>

namespace vc::ilp {
namespace {

// Far above anything the IPET systems need (they solve in tens of pivots);
// a hit means a malformed system or a solver bug, not a big input.
constexpr std::int64_t kMaxPivots = 200000;
constexpr std::int64_t kMaxBnbNodes = 20000;

/// Dense simplex tableau. Column layout: [structural | slack/artificial],
/// one extra column for the right-hand side. The objective row stores
/// reduced costs, with its rhs cell holding the negated objective value (so
/// every pivot is one uniform row operation).
class Tableau {
 public:
  Tableau(const Problem& problem, std::int64_t* pivot_budget)
      : n_struct_(problem.num_vars), pivot_budget_(pivot_budget) {
    build(problem);
  }

  /// Runs phase 1 (if artificials exist) and phase 2. Returns the status;
  /// on Optimal, fills `values` (structural vars only) and `objective`.
  Status solve(const Problem& problem, std::vector<Rat>* values,
               Rat* objective) {
    if (!artificial_.empty()) {
      if (!run_phase1()) return Status::Infeasible;
    }
    set_phase2_objective(problem);
    if (!run_simplex()) return Status::Unbounded;
    *objective = -obj_[width_ - 1];
    values->assign(static_cast<std::size_t>(n_struct_), Rat(0));
    for (std::size_t i = 0; i < basis_.size(); ++i)
      if (basis_[i] < n_struct_)
        (*values)[static_cast<std::size_t>(basis_[i])] = rows_[i][rhs_col()];
    return Status::Optimal;
  }

 private:
  [[nodiscard]] std::size_t rhs_col() const {
    return static_cast<std::size_t>(width_ - 1);
  }

  void build(const Problem& problem) {
    const int m = static_cast<int>(problem.constraints.size());
    // One slack/surplus column per inequality, one artificial per Ge/Eq row.
    int n_total = n_struct_;
    std::vector<int> slack_col(static_cast<std::size_t>(m), -1);
    for (int i = 0; i < m; ++i)
      if (problem.constraints[static_cast<std::size_t>(i)].sense != Sense::Eq)
        slack_col[static_cast<std::size_t>(i)] = n_total++;
    std::vector<int> artif_col(static_cast<std::size_t>(m), -1);
    for (int i = 0; i < m; ++i) {
      const Constraint& c = problem.constraints[static_cast<std::size_t>(i)];
      // Le rows with rhs >= 0 start feasible on their slack; everything
      // else needs an artificial. (Negative-rhs rows are sign-flipped
      // below, which can turn Le into Ge and vice versa — decide after
      // normalization, so compute the flipped sense here.)
      const bool flip = c.rhs < Rat(0);
      Sense sense = c.sense;
      if (flip && sense == Sense::Le) sense = Sense::Ge;
      else if (flip && sense == Sense::Ge) sense = Sense::Le;
      if (sense != Sense::Le) artif_col[static_cast<std::size_t>(i)] = n_total++;
    }
    width_ = n_total + 1;
    artificial_.assign(static_cast<std::size_t>(n_total), false);

    rows_.assign(static_cast<std::size_t>(m),
                 std::vector<Rat>(static_cast<std::size_t>(width_), Rat(0)));
    basis_.assign(static_cast<std::size_t>(m), -1);
    for (int i = 0; i < m; ++i) {
      const Constraint& c = problem.constraints[static_cast<std::size_t>(i)];
      std::vector<Rat>& row = rows_[static_cast<std::size_t>(i)];
      for (const LinTerm& t : c.terms) {
        check(t.var >= 0 && t.var < n_struct_,
              "ilp: constraint references variable out of range");
        row[static_cast<std::size_t>(t.var)] += t.coeff;
      }
      row[rhs_col()] = c.rhs;
      const bool flip = c.rhs < Rat(0);
      Sense sense = c.sense;
      if (flip) {
        for (Rat& v : row) v = -v;
        if (sense == Sense::Le) sense = Sense::Ge;
        else if (sense == Sense::Ge) sense = Sense::Le;
      }
      const int sc = slack_col[static_cast<std::size_t>(i)];
      if (sc >= 0)
        row[static_cast<std::size_t>(sc)] =
            (sense == Sense::Ge) ? Rat(-1) : Rat(1);
      const int ac = artif_col[static_cast<std::size_t>(i)];
      if (ac >= 0) {
        row[static_cast<std::size_t>(ac)] = Rat(1);
        artificial_[static_cast<std::size_t>(ac)] = true;
        basis_[static_cast<std::size_t>(i)] = ac;
      } else {
        basis_[static_cast<std::size_t>(i)] = sc;  // Le row: slack is basic
      }
    }
    // Shrink artificial_ bookkeeping: if no artificials were allocated,
    // phase 1 is skipped entirely.
    if (std::none_of(artificial_.begin(), artificial_.end(),
                     [](bool b) { return b; }))
      artificial_.clear();
  }

  /// Phase 1: maximize -(sum of artificials). Returns false if the optimum
  /// is < 0 (original system infeasible).
  bool run_phase1() {
    obj_.assign(static_cast<std::size_t>(width_), Rat(0));
    for (int j = 0; j < width_ - 1; ++j)
      if (artificial_[static_cast<std::size_t>(j)])
        obj_[static_cast<std::size_t>(j)] = Rat(-1);
    price_out_basis();
    check(run_simplex(), "ilp: phase-1 objective unbounded");  // impossible
    if (-obj_[rhs_col()] < Rat(0)) return false;
    eliminate_basic_artificials();
    return true;
  }

  /// Rebuilds the reduced-cost row so basic columns read zero.
  void price_out_basis() {
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      const std::size_t bj = static_cast<std::size_t>(basis_[i]);
      if (obj_[bj].is_zero()) continue;
      const Rat factor = obj_[bj];
      for (std::size_t j = 0; j < static_cast<std::size_t>(width_); ++j)
        obj_[j] -= factor * rows_[i][j];
    }
  }

  /// After a feasible phase 1, artificials still in the basis sit at zero.
  /// Pivot each out on any admissible column, or drop its (redundant) row.
  void eliminate_basic_artificials() {
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      if (!artificial_[static_cast<std::size_t>(basis_[i])]) continue;
      int pivot_col = -1;
      for (int j = 0; j < width_ - 1; ++j) {
        if (artificial_[static_cast<std::size_t>(j)]) continue;
        if (!rows_[i][static_cast<std::size_t>(j)].is_zero()) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) {
        pivot(static_cast<int>(i), pivot_col);
      } else {
        // Row is zero across all real columns: a redundant constraint.
        rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(i));
        basis_.erase(basis_.begin() + static_cast<std::ptrdiff_t>(i));
        --i;
      }
    }
  }

  void set_phase2_objective(const Problem& problem) {
    obj_.assign(static_cast<std::size_t>(width_), Rat(0));
    for (const LinTerm& t : problem.objective) {
      check(t.var >= 0 && t.var < n_struct_,
            "ilp: objective references variable out of range");
      obj_[static_cast<std::size_t>(t.var)] += t.coeff;
    }
    price_out_basis();
  }

  /// Bland's rule simplex to optimality. Returns false on unboundedness.
  bool run_simplex() {
    for (;;) {
      // Entering: the lowest-index admissible column with positive reduced
      // cost (Bland's rule half 1 — this is what prevents cycling).
      int enter = -1;
      for (int j = 0; j < width_ - 1; ++j) {
        // Artificial columns never re-enter once nonbasic (equivalent to
        // deleting them from the problem; required for phase-2 soundness).
        if (!artificial_.empty() && artificial_[static_cast<std::size_t>(j)])
          continue;
        if (obj_[static_cast<std::size_t>(j)] > Rat(0)) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return true;  // optimal
      // Leaving: min ratio rhs/col over positive col entries, ties broken
      // by the lowest basis variable index (Bland's rule half 2).
      int leave = -1;
      Rat best_ratio;
      for (std::size_t i = 0; i < rows_.size(); ++i) {
        const Rat& a = rows_[i][static_cast<std::size_t>(enter)];
        if (!(a > Rat(0))) continue;
        const Rat ratio = rows_[i][rhs_col()] / a;
        if (leave < 0 || ratio < best_ratio ||
            (ratio == best_ratio &&
             basis_[i] < basis_[static_cast<std::size_t>(leave)])) {
          leave = static_cast<int>(i);
          best_ratio = ratio;
        }
      }
      if (leave < 0) return false;  // column unbounded
      pivot(leave, enter);
    }
  }

  void pivot(int leave, int enter) {
    check(++*pivot_budget_ <= kMaxPivots,
          "ilp: simplex pivot limit exceeded (possible cycling or malformed "
          "system)");
    std::vector<Rat>& prow = rows_[static_cast<std::size_t>(leave)];
    const Rat inv = Rat(1) / prow[static_cast<std::size_t>(enter)];
    for (Rat& v : prow) v *= inv;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (static_cast<int>(i) == leave) continue;
      const Rat factor = rows_[i][static_cast<std::size_t>(enter)];
      if (factor.is_zero()) continue;
      for (std::size_t j = 0; j < static_cast<std::size_t>(width_); ++j)
        rows_[i][j] -= factor * prow[j];
    }
    const Rat ofactor = obj_[static_cast<std::size_t>(enter)];
    if (!ofactor.is_zero())
      for (std::size_t j = 0; j < static_cast<std::size_t>(width_); ++j)
        obj_[j] -= ofactor * prow[j];
    basis_[static_cast<std::size_t>(leave)] = enter;
  }

 private:
  int n_struct_;
  int width_ = 0;  // total columns incl. rhs
  std::vector<std::vector<Rat>> rows_;
  std::vector<Rat> obj_;
  std::vector<int> basis_;
  std::vector<bool> artificial_;  // empty when no artificial columns exist
  std::int64_t* pivot_budget_;
};

Solution solve_lp_counted(const Problem& problem, std::int64_t* pivots) {
  Solution sol;
  if (problem.num_vars == 0) {
    // Degenerate: only constant constraints. Feasible iff each holds at 0.
    for (const Constraint& c : problem.constraints) {
      check(c.terms.empty(), "ilp: constraint references variable out of range");
      const bool ok = c.sense == Sense::Le   ? Rat(0) <= c.rhs
                      : c.sense == Sense::Ge ? Rat(0) >= c.rhs
                                             : c.rhs.is_zero();
      if (!ok) return sol;  // Infeasible
    }
    sol.status = Status::Optimal;
    return sol;
  }
  Tableau tableau(problem, pivots);
  sol.status = tableau.solve(problem, &sol.values, &sol.objective);
  return sol;
}

/// Depth-first branch and bound; `problem` is extended in place with bound
/// constraints and restored on unwind.
void branch(Problem* problem, Solution* best, std::int64_t* pivots,
            std::int64_t* nodes) {
  check(++*nodes <= kMaxBnbNodes, "ilp: branch-and-bound node limit exceeded");
  Solution relax = solve_lp_counted(*problem, pivots);
  if (relax.status != Status::Optimal) return;  // pruned: infeasible subtree
  if (best->status == Status::Optimal && relax.objective <= best->objective)
    return;  // pruned: cannot beat the incumbent
  int frac = -1;
  for (std::size_t j = 0; j < relax.values.size(); ++j)
    if (!relax.values[j].is_integer()) {
      frac = static_cast<int>(j);
      break;
    }
  if (frac < 0) {
    *best = relax;  // integral and better than the incumbent
    return;
  }
  const Rat v = relax.values[static_cast<std::size_t>(frac)];
  Constraint bound;
  bound.terms = {{frac, Rat(1)}};
  bound.tag = "bnb";
  // x_frac <= floor(v) branch, then x_frac >= ceil(v).
  bound.sense = Sense::Le;
  bound.rhs = Rat(v.floor());
  problem->constraints.push_back(bound);
  branch(problem, best, pivots, nodes);
  problem->constraints.back().sense = Sense::Ge;
  problem->constraints.back().rhs = Rat(v.ceil());
  branch(problem, best, pivots, nodes);
  problem->constraints.pop_back();
}

}  // namespace

Solution solve_lp(const Problem& problem) {
  std::int64_t pivots = 0;
  Solution sol = solve_lp_counted(problem, &pivots);
  sol.pivots = pivots;
  sol.bnb_nodes = 1;
  return sol;
}

Solution solve(const Problem& problem) {
  if (!problem.integer) return solve_lp(problem);
  std::int64_t pivots = 0;
  // Root relaxation decides infeasible/unbounded up front; branching only
  // ever tightens, so those statuses are final.
  Solution root = solve_lp_counted(problem, &pivots);
  if (root.status != Status::Optimal) {
    root.pivots = pivots;
    root.bnb_nodes = 1;
    return root;
  }
  Solution best;  // status Infeasible until an integral point is found
  std::int64_t nodes = 0;
  Problem scratch = problem;
  branch(&scratch, &best, &pivots, &nodes);
  check(best.status == Status::Optimal,
        "ilp: integer problem has a feasible relaxation but no integral "
        "point within the branch-and-bound budget");
  best.pivots = pivots;
  best.bnb_nodes = nodes;
  return best;
}

}  // namespace vc::ilp
