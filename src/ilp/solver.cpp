// Two-phase dense tableau simplex with Bland's rule for anti-cycling and
// depth-first branch-and-bound for integrality, in two exact pivot kernels:
//
//  * Int64 fast lane (`Tableau64`): rows live in one flat row-major int64
//    numerator array with a single denominator per row. A pivot is two
//    128-bit multiplies and a subtract per cell followed by one gcd
//    normalization pass per touched row — no per-cell gcd, no per-cell
//    allocation. Tableau buffers come from a per-thread scratch pool reused
//    across branch-and-bound nodes and across fleet jobs.
//  * Rational lane (`Tableau`): the original per-cell Rat tableau.
//
// Both lanes follow the same Bland rule over the same exact values, so they
// take identical pivot sequences and produce bit-identical solutions; when a
// reduced fast-lane row no longer fits int64 the LP is transparently
// re-solved on the rational lane (Solution::fast_fallbacks counts these).
//
// Untrusted by design: callers must pass the result through
// check_certificate (verify.cpp) before believing it. Pivot and node
// budgets turn pathological instances into InternalError instead of hangs.
#include "ilp/solver.hpp"

#include <algorithm>

namespace vc::ilp {
namespace {

// Far above anything the IPET systems need (they solve in tens of pivots);
// a hit means a malformed system or a solver bug, not a big input.
constexpr std::int64_t kMaxPivots = 200000;
constexpr std::int64_t kMaxBnbNodes = 20000;

/// Internal unwinding token of the fast lane: a reduced value fell outside
/// the int64 budget, so the LP must be re-solved on the rational lane. Never
/// escapes solve_lp_counted.
struct FastOverflow {};

std::int64_t fit64(__int128 v) {
  if (v > INT64_MAX || v < INT64_MIN) throw FastOverflow{};
  return static_cast<std::int64_t>(v);
}

__int128 gcd128(__int128 a, __int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

std::int64_t gcd64(std::int64_t a, std::int64_t b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const std::int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Reusable tableau buffers, one set per thread: branch-and-bound re-solves
/// an LP per node and the fleet runs thousands of IPET systems per worker,
/// so the flat arrays are assigned into instead of reallocated.
struct SolveScratch {
  std::vector<std::int64_t> cells;  // m x width numerators, row-major
  std::vector<std::int64_t> den;    // per-row denominator, always > 0
  std::vector<std::int64_t> obj;    // objective-row numerators
  std::vector<int> basis;
  std::vector<std::uint8_t> artificial;
  std::vector<__int128> wide;       // row-update intermediates
};

SolveScratch& thread_scratch() {
  thread_local SolveScratch scratch;
  return scratch;
}

// ---------------------------------------------------------------------------
// Int64 fast lane
// ---------------------------------------------------------------------------

/// Dense simplex tableau over int64 numerators with one denominator per row.
/// Column layout matches the rational lane: [structural | slack/artificial]
/// plus one rhs column; the objective row stores reduced costs with its rhs
/// cell holding the negated objective value.
class Tableau64 {
 public:
  Tableau64(const Problem& problem, std::int64_t* pivot_budget,
            SolveScratch* s)
      : n_struct_(problem.num_vars), pivot_budget_(pivot_budget), s_(*s) {
    build(problem);
  }

  Status solve(const Problem& problem, std::vector<Rat>* values,
               Rat* objective) {
    if (!artificial_empty_) {
      if (!run_phase1()) return Status::Infeasible;
    }
    set_phase2_objective(problem);
    if (!run_simplex()) return Status::Unbounded;
    // -obj_rhs / obj_den, negated without Rat::operator- so the only
    // failure mode here is FastOverflow (fraction() cannot throw on
    // already-reduced int64 inputs).
    const std::int64_t neg = fit64(-static_cast<__int128>(s_.obj[rhs_col()]));
    *objective = Rat::fraction(neg, obj_den_);
    values->assign(static_cast<std::size_t>(n_struct_), Rat(0));
    for (std::size_t i = 0; i < m_; ++i)
      if (s_.basis[i] < n_struct_)
        (*values)[static_cast<std::size_t>(s_.basis[i])] =
            Rat::fraction(cell(i, rhs_col()), s_.den[i]);
    return Status::Optimal;
  }

 private:
  [[nodiscard]] std::size_t rhs_col() const {
    return static_cast<std::size_t>(width_ - 1);
  }
  [[nodiscard]] std::int64_t& cell(std::size_t row, std::size_t col) {
    return s_.cells[row * static_cast<std::size_t>(width_) + col];
  }

  void build(const Problem& problem) {
    const int m = static_cast<int>(problem.constraints.size());
    int n_total = n_struct_;
    std::vector<int> slack_col(static_cast<std::size_t>(m), -1);
    for (int i = 0; i < m; ++i)
      if (problem.constraints[static_cast<std::size_t>(i)].sense != Sense::Eq)
        slack_col[static_cast<std::size_t>(i)] = n_total++;
    std::vector<int> artif_col(static_cast<std::size_t>(m), -1);
    for (int i = 0; i < m; ++i) {
      const Constraint& c = problem.constraints[static_cast<std::size_t>(i)];
      // Decide after sign normalization, exactly like the rational lane.
      const bool flip = c.rhs < Rat(0);
      Sense sense = c.sense;
      if (flip && sense == Sense::Le) sense = Sense::Ge;
      else if (flip && sense == Sense::Ge) sense = Sense::Le;
      if (sense != Sense::Le) artif_col[static_cast<std::size_t>(i)] = n_total++;
    }
    width_ = n_total + 1;
    m_ = static_cast<std::size_t>(m);

    s_.artificial.assign(static_cast<std::size_t>(n_total), 0);
    s_.cells.assign(m_ * static_cast<std::size_t>(width_), 0);
    s_.den.assign(m_, 1);
    s_.basis.assign(m_, -1);

    for (int i = 0; i < m; ++i) {
      const Constraint& c = problem.constraints[static_cast<std::size_t>(i)];
      const auto row = static_cast<std::size_t>(i);
      // Accumulate terms over a running row denominator (lcm of the
      // coefficient denominators); coefficients are almost always integral,
      // so the rescale loop rarely runs.
      for (const LinTerm& t : c.terms) {
        check(t.var >= 0 && t.var < n_struct_,
              "ilp: constraint references variable out of range");
        add_into(row, static_cast<std::size_t>(t.var), t.coeff);
      }
      add_into(row, rhs_col(), c.rhs);
      const bool flip = c.rhs < Rat(0);
      Sense sense = c.sense;
      if (flip) {
        for (int j = 0; j < width_; ++j)
          cell(row, static_cast<std::size_t>(j)) =
              fit64(-static_cast<__int128>(cell(row, static_cast<std::size_t>(j))));
        if (sense == Sense::Le) sense = Sense::Ge;
        else if (sense == Sense::Ge) sense = Sense::Le;
      }
      const int sc = slack_col[row];
      if (sc >= 0)
        cell(row, static_cast<std::size_t>(sc)) =
            sense == Sense::Ge ? -s_.den[row] : s_.den[row];
      const int ac = artif_col[row];
      if (ac >= 0) {
        cell(row, static_cast<std::size_t>(ac)) = s_.den[row];
        s_.artificial[static_cast<std::size_t>(ac)] = 1;
        s_.basis[row] = ac;
      } else {
        s_.basis[row] = sc;  // Le row: slack is basic
      }
    }
    artificial_empty_ =
        std::none_of(s_.artificial.begin(), s_.artificial.end(),
                     [](std::uint8_t b) { return b != 0; });
    s_.wide.assign(static_cast<std::size_t>(width_), 0);
  }

  /// row[col] += r, rescaling the row to lcm(row_den, r.den()) first.
  void add_into(std::size_t row, std::size_t col, const Rat& r) {
    if (r.is_zero()) return;
    std::int64_t d = s_.den[row];
    if (r.den() != d) {
      const std::int64_t g = gcd64(d, r.den());
      const std::int64_t lcm =
          fit64(static_cast<__int128>(d) / g * r.den());
      if (lcm != d) {
        const std::int64_t scale = lcm / d;
        for (int j = 0; j < width_; ++j)
          cell(row, static_cast<std::size_t>(j)) = fit64(
              static_cast<__int128>(cell(row, static_cast<std::size_t>(j))) *
              scale);
        s_.den[row] = d = lcm;
      }
    }
    cell(row, col) =
        fit64(static_cast<__int128>(cell(row, col)) +
              static_cast<__int128>(r.num()) * (d / r.den()));
  }

  /// Phase 1: maximize -(sum of artificials).
  bool run_phase1() {
    s_.obj.assign(static_cast<std::size_t>(width_), 0);
    obj_den_ = 1;
    for (int j = 0; j < width_ - 1; ++j)
      if (s_.artificial[static_cast<std::size_t>(j)])
        s_.obj[static_cast<std::size_t>(j)] = -1;
    price_out_basis();
    check(run_simplex(), "ilp: phase-1 objective unbounded");  // impossible
    if (s_.obj[rhs_col()] > 0) return false;  // -obj_rhs < 0: infeasible
    eliminate_basic_artificials();
    return true;
  }

  /// Rebuilds the reduced-cost row so basic columns read zero.
  void price_out_basis() {
    for (std::size_t i = 0; i < m_; ++i) {
      const auto bj = static_cast<std::size_t>(s_.basis[i]);
      if (s_.obj[bj] == 0) continue;
      update_obj_row(i, bj);
    }
  }

  /// After a feasible phase 1, artificials still in the basis sit at zero.
  void eliminate_basic_artificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (!s_.artificial[static_cast<std::size_t>(s_.basis[i])]) continue;
      int pivot_col = -1;
      for (int j = 0; j < width_ - 1; ++j) {
        if (s_.artificial[static_cast<std::size_t>(j)]) continue;
        if (cell(i, static_cast<std::size_t>(j)) != 0) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) {
        pivot(static_cast<int>(i), pivot_col);
      } else {
        // Row is zero across all real columns: a redundant constraint.
        // Flat storage: slide the tail rows up one slot.
        s_.cells.erase(
            s_.cells.begin() +
                static_cast<std::ptrdiff_t>(i * static_cast<std::size_t>(width_)),
            s_.cells.begin() + static_cast<std::ptrdiff_t>(
                                   (i + 1) * static_cast<std::size_t>(width_)));
        s_.den.erase(s_.den.begin() + static_cast<std::ptrdiff_t>(i));
        s_.basis.erase(s_.basis.begin() + static_cast<std::ptrdiff_t>(i));
        --m_;
        --i;
      }
    }
  }

  void set_phase2_objective(const Problem& problem) {
    s_.obj.assign(static_cast<std::size_t>(width_), 0);
    obj_den_ = 1;
    for (const LinTerm& t : problem.objective) {
      check(t.var >= 0 && t.var < n_struct_,
            "ilp: objective references variable out of range");
      obj_add_into(static_cast<std::size_t>(t.var), t.coeff);
    }
    price_out_basis();
  }

  void obj_add_into(std::size_t col, const Rat& r) {
    if (r.is_zero()) return;
    if (r.den() != obj_den_) {
      const std::int64_t g = gcd64(obj_den_, r.den());
      const std::int64_t lcm =
          fit64(static_cast<__int128>(obj_den_) / g * r.den());
      if (lcm != obj_den_) {
        const std::int64_t scale = lcm / obj_den_;
        for (std::int64_t& v : s_.obj)
          v = fit64(static_cast<__int128>(v) * scale);
        obj_den_ = lcm;
      }
    }
    s_.obj[col] = fit64(static_cast<__int128>(s_.obj[col]) +
                        static_cast<__int128>(r.num()) * (obj_den_ / r.den()));
  }

  /// Bland's rule simplex to optimality. Returns false on unboundedness.
  bool run_simplex() {
    for (;;) {
      // Entering: the lowest-index admissible column with positive reduced
      // cost (denominators are positive, so the sign of the numerator is the
      // sign of the value).
      int enter = -1;
      for (int j = 0; j < width_ - 1; ++j) {
        if (!artificial_empty_ && s_.artificial[static_cast<std::size_t>(j)])
          continue;  // artificial columns never re-enter once nonbasic
        if (s_.obj[static_cast<std::size_t>(j)] > 0) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return true;  // optimal
      // Leaving: min ratio rhs/col over positive col entries, ties broken by
      // the lowest basis variable index. Within a row the shared denominator
      // cancels, so the ratio is rhs_num/col_num and comparisons are one
      // 128-bit cross multiplication.
      int leave = -1;
      std::int64_t best_rhs = 0;
      std::int64_t best_a = 1;
      for (std::size_t i = 0; i < m_; ++i) {
        const std::int64_t a = cell(i, static_cast<std::size_t>(enter));
        if (a <= 0) continue;
        const std::int64_t rhs = cell(i, rhs_col());
        if (leave >= 0) {
          const __int128 lhs = static_cast<__int128>(rhs) * best_a;
          const __int128 rhsx = static_cast<__int128>(best_rhs) * a;
          if (lhs > rhsx) continue;
          if (lhs == rhsx &&
              s_.basis[i] >= s_.basis[static_cast<std::size_t>(leave)])
            continue;
        }
        leave = static_cast<int>(i);
        best_rhs = rhs;
        best_a = a;
      }
      if (leave < 0) return false;  // column unbounded
      pivot(leave, enter);
    }
  }

  /// Divides row `i` (numerators + den) by the gcd of all its entries.
  void normalize_row(std::size_t i) {
    std::int64_t g = s_.den[i];
    for (int j = 0; j < width_ && g != 1; ++j)
      g = gcd64(g, cell(i, static_cast<std::size_t>(j)));
    if (g > 1) {
      for (int j = 0; j < width_; ++j)
        cell(i, static_cast<std::size_t>(j)) /= g;
      s_.den[i] /= g;
    }
  }

  /// row_i -= (row_i[enter]/den_i) * prow, where prow has pivot column value
  /// exactly 1. One pass of 128-bit arithmetic, one gcd normalization.
  void update_row(std::size_t i, std::size_t pivot_row, int enter) {
    const std::int64_t f = cell(i, static_cast<std::size_t>(enter));
    if (f == 0) return;
    const std::int64_t pden = s_.den[pivot_row];
    __int128 den128 = static_cast<__int128>(s_.den[i]) * pden;
    __int128 g = den128;
    for (int j = 0; j < width_; ++j) {
      const __int128 v =
          static_cast<__int128>(cell(i, static_cast<std::size_t>(j))) * pden -
          static_cast<__int128>(f) *
              cell(pivot_row, static_cast<std::size_t>(j));
      s_.wide[static_cast<std::size_t>(j)] = v;
      if (g != 1 && v != 0) g = gcd128(g, v);
    }
    if (g > 1) den128 /= g;
    s_.den[i] = fit64(den128);
    for (int j = 0; j < width_; ++j)
      cell(i, static_cast<std::size_t>(j)) =
          fit64(g > 1 ? s_.wide[static_cast<std::size_t>(j)] / g
                      : s_.wide[static_cast<std::size_t>(j)]);
  }

  /// Same update for the objective row (its own denominator).
  void update_obj_row(std::size_t pivot_row, std::size_t enter) {
    const std::int64_t f = s_.obj[enter];
    if (f == 0) return;
    const std::int64_t pden = s_.den[pivot_row];
    __int128 den128 = static_cast<__int128>(obj_den_) * pden;
    __int128 g = den128;
    for (int j = 0; j < width_; ++j) {
      const __int128 v =
          static_cast<__int128>(s_.obj[static_cast<std::size_t>(j)]) * pden -
          static_cast<__int128>(f) *
              cell(pivot_row, static_cast<std::size_t>(j));
      s_.wide[static_cast<std::size_t>(j)] = v;
      if (g != 1 && v != 0) g = gcd128(g, v);
    }
    if (g > 1) den128 /= g;
    obj_den_ = fit64(den128);
    for (int j = 0; j < width_; ++j)
      s_.obj[static_cast<std::size_t>(j)] =
          fit64(g > 1 ? s_.wide[static_cast<std::size_t>(j)] / g
                      : s_.wide[static_cast<std::size_t>(j)]);
  }

  void pivot(int leave, int enter) {
    check(++*pivot_budget_ <= kMaxPivots,
          "ilp: simplex pivot limit exceeded (possible cycling or malformed "
          "system)");
    const auto prow = static_cast<std::size_t>(leave);
    // Scale the pivot row so the pivot cell reads exactly 1: dividing
    // num_j/den by num_e/den leaves num_j/num_e — the old denominator
    // cancels, the new one is |num_e| (values only shrink, no overflow).
    const std::int64_t pe = cell(prow, static_cast<std::size_t>(enter));
    if (pe < 0) {
      for (int j = 0; j < width_; ++j)
        cell(prow, static_cast<std::size_t>(j)) = fit64(
            -static_cast<__int128>(cell(prow, static_cast<std::size_t>(j))));
    }
    s_.den[prow] = pe < 0 ? fit64(-static_cast<__int128>(pe)) : pe;
    normalize_row(prow);
    for (std::size_t i = 0; i < m_; ++i)
      if (i != prow) update_row(i, prow, enter);
    update_obj_row(prow, static_cast<std::size_t>(enter));
    s_.basis[prow] = enter;
  }

 private:
  int n_struct_;
  int width_ = 0;  // total columns incl. rhs
  std::size_t m_ = 0;
  std::int64_t obj_den_ = 1;
  bool artificial_empty_ = true;
  std::int64_t* pivot_budget_;
  SolveScratch& s_;
};

// ---------------------------------------------------------------------------
// Rational lane (the original tableau, now the overflow fallback)
// ---------------------------------------------------------------------------

/// Dense simplex tableau over per-cell rationals. Column layout: see
/// Tableau64; the two lanes must make identical pivoting decisions.
class Tableau {
 public:
  Tableau(const Problem& problem, std::int64_t* pivot_budget)
      : n_struct_(problem.num_vars), pivot_budget_(pivot_budget) {
    build(problem);
  }

  /// Runs phase 1 (if artificials exist) and phase 2. Returns the status;
  /// on Optimal, fills `values` (structural vars only) and `objective`.
  Status solve(const Problem& problem, std::vector<Rat>* values,
               Rat* objective) {
    if (!artificial_.empty()) {
      if (!run_phase1()) return Status::Infeasible;
    }
    set_phase2_objective(problem);
    if (!run_simplex()) return Status::Unbounded;
    *objective = -obj_[width_ - 1];
    values->assign(static_cast<std::size_t>(n_struct_), Rat(0));
    for (std::size_t i = 0; i < basis_.size(); ++i)
      if (basis_[i] < n_struct_)
        (*values)[static_cast<std::size_t>(basis_[i])] = rows_[i][rhs_col()];
    return Status::Optimal;
  }

 private:
  [[nodiscard]] std::size_t rhs_col() const {
    return static_cast<std::size_t>(width_ - 1);
  }

  void build(const Problem& problem) {
    const int m = static_cast<int>(problem.constraints.size());
    // One slack/surplus column per inequality, one artificial per Ge/Eq row.
    int n_total = n_struct_;
    std::vector<int> slack_col(static_cast<std::size_t>(m), -1);
    for (int i = 0; i < m; ++i)
      if (problem.constraints[static_cast<std::size_t>(i)].sense != Sense::Eq)
        slack_col[static_cast<std::size_t>(i)] = n_total++;
    std::vector<int> artif_col(static_cast<std::size_t>(m), -1);
    for (int i = 0; i < m; ++i) {
      const Constraint& c = problem.constraints[static_cast<std::size_t>(i)];
      // Le rows with rhs >= 0 start feasible on their slack; everything
      // else needs an artificial. (Negative-rhs rows are sign-flipped
      // below, which can turn Le into Ge and vice versa — decide after
      // normalization, so compute the flipped sense here.)
      const bool flip = c.rhs < Rat(0);
      Sense sense = c.sense;
      if (flip && sense == Sense::Le) sense = Sense::Ge;
      else if (flip && sense == Sense::Ge) sense = Sense::Le;
      if (sense != Sense::Le) artif_col[static_cast<std::size_t>(i)] = n_total++;
    }
    width_ = n_total + 1;
    artificial_.assign(static_cast<std::size_t>(n_total), false);

    rows_.assign(static_cast<std::size_t>(m),
                 std::vector<Rat>(static_cast<std::size_t>(width_), Rat(0)));
    basis_.assign(static_cast<std::size_t>(m), -1);
    for (int i = 0; i < m; ++i) {
      const Constraint& c = problem.constraints[static_cast<std::size_t>(i)];
      std::vector<Rat>& row = rows_[static_cast<std::size_t>(i)];
      for (const LinTerm& t : c.terms) {
        check(t.var >= 0 && t.var < n_struct_,
              "ilp: constraint references variable out of range");
        row[static_cast<std::size_t>(t.var)] += t.coeff;
      }
      row[rhs_col()] = c.rhs;
      const bool flip = c.rhs < Rat(0);
      Sense sense = c.sense;
      if (flip) {
        for (Rat& v : row) v = -v;
        if (sense == Sense::Le) sense = Sense::Ge;
        else if (sense == Sense::Ge) sense = Sense::Le;
      }
      const int sc = slack_col[static_cast<std::size_t>(i)];
      if (sc >= 0)
        row[static_cast<std::size_t>(sc)] =
            (sense == Sense::Ge) ? Rat(-1) : Rat(1);
      const int ac = artif_col[static_cast<std::size_t>(i)];
      if (ac >= 0) {
        row[static_cast<std::size_t>(ac)] = Rat(1);
        artificial_[static_cast<std::size_t>(ac)] = true;
        basis_[static_cast<std::size_t>(i)] = ac;
      } else {
        basis_[static_cast<std::size_t>(i)] = sc;  // Le row: slack is basic
      }
    }
    // Shrink artificial_ bookkeeping: if no artificials were allocated,
    // phase 1 is skipped entirely.
    if (std::none_of(artificial_.begin(), artificial_.end(),
                     [](bool b) { return b; }))
      artificial_.clear();
  }

  /// Phase 1: maximize -(sum of artificials). Returns false if the optimum
  /// is < 0 (original system infeasible).
  bool run_phase1() {
    obj_.assign(static_cast<std::size_t>(width_), Rat(0));
    for (int j = 0; j < width_ - 1; ++j)
      if (artificial_[static_cast<std::size_t>(j)])
        obj_[static_cast<std::size_t>(j)] = Rat(-1);
    price_out_basis();
    check(run_simplex(), "ilp: phase-1 objective unbounded");  // impossible
    if (-obj_[rhs_col()] < Rat(0)) return false;
    eliminate_basic_artificials();
    return true;
  }

  /// Rebuilds the reduced-cost row so basic columns read zero.
  void price_out_basis() {
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      const std::size_t bj = static_cast<std::size_t>(basis_[i]);
      if (obj_[bj].is_zero()) continue;
      const Rat factor = obj_[bj];
      for (std::size_t j = 0; j < static_cast<std::size_t>(width_); ++j)
        obj_[j] -= factor * rows_[i][j];
    }
  }

  /// After a feasible phase 1, artificials still in the basis sit at zero.
  /// Pivot each out on any admissible column, or drop its (redundant) row.
  void eliminate_basic_artificials() {
    for (std::size_t i = 0; i < basis_.size(); ++i) {
      if (!artificial_[static_cast<std::size_t>(basis_[i])]) continue;
      int pivot_col = -1;
      for (int j = 0; j < width_ - 1; ++j) {
        if (artificial_[static_cast<std::size_t>(j)]) continue;
        if (!rows_[i][static_cast<std::size_t>(j)].is_zero()) {
          pivot_col = j;
          break;
        }
      }
      if (pivot_col >= 0) {
        pivot(static_cast<int>(i), pivot_col);
      } else {
        // Row is zero across all real columns: a redundant constraint.
        rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(i));
        basis_.erase(basis_.begin() + static_cast<std::ptrdiff_t>(i));
        --i;
      }
    }
  }

  void set_phase2_objective(const Problem& problem) {
    obj_.assign(static_cast<std::size_t>(width_), Rat(0));
    for (const LinTerm& t : problem.objective) {
      check(t.var >= 0 && t.var < n_struct_,
            "ilp: objective references variable out of range");
      obj_[static_cast<std::size_t>(t.var)] += t.coeff;
    }
    price_out_basis();
  }

  /// Bland's rule simplex to optimality. Returns false on unboundedness.
  bool run_simplex() {
    for (;;) {
      // Entering: the lowest-index admissible column with positive reduced
      // cost (Bland's rule half 1 — this is what prevents cycling).
      int enter = -1;
      for (int j = 0; j < width_ - 1; ++j) {
        // Artificial columns never re-enter once nonbasic (equivalent to
        // deleting them from the problem; required for phase-2 soundness).
        if (!artificial_.empty() && artificial_[static_cast<std::size_t>(j)])
          continue;
        if (obj_[static_cast<std::size_t>(j)] > Rat(0)) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return true;  // optimal
      // Leaving: min ratio rhs/col over positive col entries, ties broken
      // by the lowest basis variable index (Bland's rule half 2).
      int leave = -1;
      Rat best_ratio;
      for (std::size_t i = 0; i < rows_.size(); ++i) {
        const Rat& a = rows_[i][static_cast<std::size_t>(enter)];
        if (!(a > Rat(0))) continue;
        const Rat ratio = rows_[i][rhs_col()] / a;
        if (leave < 0 || ratio < best_ratio ||
            (ratio == best_ratio &&
             basis_[i] < basis_[static_cast<std::size_t>(leave)])) {
          leave = static_cast<int>(i);
          best_ratio = ratio;
        }
      }
      if (leave < 0) return false;  // column unbounded
      pivot(leave, enter);
    }
  }

  void pivot(int leave, int enter) {
    check(++*pivot_budget_ <= kMaxPivots,
          "ilp: simplex pivot limit exceeded (possible cycling or malformed "
          "system)");
    std::vector<Rat>& prow = rows_[static_cast<std::size_t>(leave)];
    const Rat inv = Rat(1) / prow[static_cast<std::size_t>(enter)];
    for (Rat& v : prow) v *= inv;
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (static_cast<int>(i) == leave) continue;
      const Rat factor = rows_[i][static_cast<std::size_t>(enter)];
      if (factor.is_zero()) continue;
      for (std::size_t j = 0; j < static_cast<std::size_t>(width_); ++j)
        rows_[i][j] -= factor * prow[j];
    }
    const Rat ofactor = obj_[static_cast<std::size_t>(enter)];
    if (!ofactor.is_zero())
      for (std::size_t j = 0; j < static_cast<std::size_t>(width_); ++j)
        obj_[j] -= ofactor * prow[j];
    basis_[static_cast<std::size_t>(leave)] = enter;
  }

 private:
  int n_struct_;
  int width_ = 0;  // total columns incl. rhs
  std::vector<std::vector<Rat>> rows_;
  std::vector<Rat> obj_;
  std::vector<int> basis_;
  std::vector<bool> artificial_;  // empty when no artificial columns exist
  std::int64_t* pivot_budget_;
};

Solution solve_lp_counted(const Problem& problem, PivotKernel kernel,
                          std::int64_t* pivots, std::int64_t* fallbacks) {
  Solution sol;
  if (problem.num_vars == 0) {
    // Degenerate: only constant constraints. Feasible iff each holds at 0.
    for (const Constraint& c : problem.constraints) {
      check(c.terms.empty(), "ilp: constraint references variable out of range");
      const bool ok = c.sense == Sense::Le   ? Rat(0) <= c.rhs
                      : c.sense == Sense::Ge ? Rat(0) >= c.rhs
                                             : c.rhs.is_zero();
      if (!ok) return sol;  // Infeasible
    }
    sol.status = Status::Optimal;
    return sol;
  }
  if (kernel != PivotKernel::Rational) {
    try {
      Tableau64 tableau(problem, pivots, &thread_scratch());
      sol.status = tableau.solve(problem, &sol.values, &sol.objective);
      return sol;
    } catch (const FastOverflow&) {
      check(kernel != PivotKernel::Int64,
            "ilp: int64 pivot kernel overflow (forced lane; Auto would fall "
            "back to the rational tableau)");
      ++*fallbacks;  // Auto: re-solve exactly on the rational lane
    }
  }
  Tableau tableau(problem, pivots);
  sol.status = tableau.solve(problem, &sol.values, &sol.objective);
  return sol;
}

/// Depth-first branch and bound; `problem` is extended in place with bound
/// constraints and restored on unwind.
void branch(Problem* problem, PivotKernel kernel, Solution* best,
            std::int64_t* pivots, std::int64_t* nodes,
            std::int64_t* fallbacks) {
  check(++*nodes <= kMaxBnbNodes, "ilp: branch-and-bound node limit exceeded");
  Solution relax = solve_lp_counted(*problem, kernel, pivots, fallbacks);
  if (relax.status != Status::Optimal) return;  // pruned: infeasible subtree
  if (best->status == Status::Optimal && relax.objective <= best->objective)
    return;  // pruned: cannot beat the incumbent
  int frac = -1;
  for (std::size_t j = 0; j < relax.values.size(); ++j)
    if (!relax.values[j].is_integer()) {
      frac = static_cast<int>(j);
      break;
    }
  if (frac < 0) {
    *best = relax;  // integral and better than the incumbent
    return;
  }
  const Rat v = relax.values[static_cast<std::size_t>(frac)];
  Constraint bound;
  bound.terms = {{frac, Rat(1)}};
  bound.tag = "bnb";
  // x_frac <= floor(v) branch, then x_frac >= ceil(v).
  bound.sense = Sense::Le;
  bound.rhs = Rat(v.floor());
  problem->constraints.push_back(bound);
  branch(problem, kernel, best, pivots, nodes, fallbacks);
  problem->constraints.back().sense = Sense::Ge;
  problem->constraints.back().rhs = Rat(v.ceil());
  branch(problem, kernel, best, pivots, nodes, fallbacks);
  problem->constraints.pop_back();
}

}  // namespace

Solution solve_lp(const Problem& problem, PivotKernel kernel) {
  std::int64_t pivots = 0;
  std::int64_t fallbacks = 0;
  Solution sol = solve_lp_counted(problem, kernel, &pivots, &fallbacks);
  sol.pivots = pivots;
  sol.bnb_nodes = 1;
  sol.fast_fallbacks = fallbacks;
  return sol;
}

Solution solve(const Problem& problem, PivotKernel kernel) {
  if (!problem.integer) return solve_lp(problem, kernel);
  std::int64_t pivots = 0;
  std::int64_t fallbacks = 0;
  // Root relaxation decides infeasible/unbounded up front; branching only
  // ever tightens, so those statuses are final.
  Solution root = solve_lp_counted(problem, kernel, &pivots, &fallbacks);
  if (root.status != Status::Optimal) {
    root.pivots = pivots;
    root.bnb_nodes = 1;
    root.fast_fallbacks = fallbacks;
    return root;
  }
  Solution best;  // status Infeasible until an integral point is found
  std::int64_t nodes = 0;
  Problem scratch = problem;
  branch(&scratch, kernel, &best, &pivots, &nodes, &fallbacks);
  check(best.status == Status::Optimal,
        "ilp: integer problem has a feasible relaxation but no integral "
        "point within the branch-and-bound budget");
  best.pivots = pivots;
  best.bnb_nodes = nodes;
  best.fast_fallbacks = fallbacks;
  return best;
}

}  // namespace vc::ilp
