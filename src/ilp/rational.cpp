#include "ilp/rational.hpp"

#include <numeric>

namespace vc::ilp {
namespace {

constexpr std::int64_t kMax = INT64_MAX;
constexpr std::int64_t kMin = INT64_MIN;

[[noreturn]] void overflow(const char* op) {
  throw InternalError(std::string("ilp: rational overflow in ") + op +
                      " (value exceeds the int64 fraction budget)");
}

__int128 gcd128(__int128 a, __int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rat Rat::reduce(__int128 num, __int128 den) {
  check(den != 0, "ilp: rational with zero denominator");
  if (den < 0) {
    num = -num;
    den = -den;
  }
  if (num == 0) return Rat(0);
  // Integer fast lane: den == 1 needs no gcd, only the fit check. The
  // simplex tableaus are predominantly integral, so this skips the two
  // 128-bit divisions of the gcd loop on most calls.
  if (den == 1) {
    if (num > kMax || num < kMin) overflow("reduce");
    Rat r;
    r.num_ = static_cast<std::int64_t>(num);
    r.den_ = 1;
    return r;
  }
  const __int128 g = gcd128(num, den);
  num /= g;
  den /= g;
  if (num > kMax || num < kMin || den > kMax) overflow("reduce");
  Rat r;
  r.num_ = static_cast<std::int64_t>(num);
  r.den_ = static_cast<std::int64_t>(den);
  return r;
}

Rat Rat::fraction(std::int64_t num, std::int64_t den) {
  check(den != 0, "ilp: Rat::fraction with zero denominator");
  return reduce(num, den);
}

std::int64_t Rat::floor() const {
  if (num_ >= 0) return num_ / den_;
  return -((-num_ + den_ - 1) / den_);
}

std::int64_t Rat::ceil() const {
  if (num_ <= 0) return num_ / den_;
  return (num_ + den_ - 1) / den_;
}

Rat Rat::operator+(const Rat& o) const {
  if (den_ == 1 && o.den_ == 1)
    return reduce(static_cast<__int128>(num_) + o.num_, 1);
  return reduce(static_cast<__int128>(num_) * o.den_ +
                    static_cast<__int128>(o.num_) * den_,
                static_cast<__int128>(den_) * o.den_);
}

Rat Rat::operator-(const Rat& o) const {
  if (den_ == 1 && o.den_ == 1)
    return reduce(static_cast<__int128>(num_) - o.num_, 1);
  return reduce(static_cast<__int128>(num_) * o.den_ -
                    static_cast<__int128>(o.num_) * den_,
                static_cast<__int128>(den_) * o.den_);
}

Rat Rat::operator*(const Rat& o) const {
  return reduce(static_cast<__int128>(num_) * o.num_,
                static_cast<__int128>(den_) * o.den_);
}

Rat Rat::operator/(const Rat& o) const {
  check(!o.is_zero(), "ilp: rational division by zero");
  return reduce(static_cast<__int128>(num_) * o.den_,
                static_cast<__int128>(den_) * o.num_);
}

Rat Rat::operator-() const {
  if (num_ == kMin) overflow("negate");
  Rat r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

bool Rat::operator==(const Rat& o) const {
  // Both sides are reduced with positive denominators, so equality is
  // component-wise; no multiplication needed.
  return num_ == o.num_ && den_ == o.den_;
}

bool Rat::operator<(const Rat& o) const {
  return static_cast<__int128>(num_) * o.den_ <
         static_cast<__int128>(o.num_) * den_;
}

bool Rat::operator<=(const Rat& o) const {
  return static_cast<__int128>(num_) * o.den_ <=
         static_cast<__int128>(o.num_) * den_;
}

std::string Rat::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace vc::ilp
