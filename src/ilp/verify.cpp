// Independent certificate verifier for solver results.
//
// This file is the trusted half of src/ilp: it knows nothing about
// tableaux, bases, or pivots. Given the problem statement and a candidate
// assignment, it re-evaluates every constraint and the objective with exact
// Rat arithmetic. Keeping it this small is the point — the simplex and
// branch-and-bound machinery in solver.cpp can be arbitrarily wrong and the
// worst outcome is a rejected certificate (a hard, named error upstream),
// never an unsound WCET bound.
#include "ilp/solver.hpp"

namespace vc::ilp {
namespace {

Rat eval_terms(const std::vector<LinTerm>& terms,
               const std::vector<Rat>& values) {
  Rat sum;
  for (const LinTerm& t : terms)
    sum += t.coeff * values[static_cast<std::size_t>(t.var)];
  return sum;
}

std::string describe(const Constraint& c, const Rat& lhs) {
  const char* rel = c.sense == Sense::Le ? "<=" : c.sense == Sense::Ge ? ">=" : "==";
  std::string where = c.tag.empty() ? std::string("<untagged>") : c.tag;
  return "constraint '" + where + "' violated: " + lhs.to_string() + " " +
         rel + " " + c.rhs.to_string() + " does not hold";
}

}  // namespace

std::string check_certificate(const Problem& problem,
                              const std::vector<Rat>& values,
                              const Rat& objective) {
  if (values.size() != static_cast<std::size_t>(problem.num_vars))
    return "certificate has " + std::to_string(values.size()) +
           " values for " + std::to_string(problem.num_vars) + " variables";
  for (std::size_t j = 0; j < values.size(); ++j) {
    if (values[j] < Rat(0))
      return "variable x" + std::to_string(j) + " is negative (" +
             values[j].to_string() + ")";
    if (problem.integer && !values[j].is_integer())
      return "variable x" + std::to_string(j) + " is fractional (" +
             values[j].to_string() + ") in an integer problem";
  }
  for (const Constraint& c : problem.constraints) {
    for (const LinTerm& t : c.terms)
      if (t.var < 0 || t.var >= problem.num_vars)
        return "constraint '" + c.tag + "' references variable x" +
               std::to_string(t.var) + " out of range";
    const Rat lhs = eval_terms(c.terms, values);
    const bool ok = c.sense == Sense::Le   ? lhs <= c.rhs
                    : c.sense == Sense::Ge ? lhs >= c.rhs
                                           : lhs == c.rhs;
    if (!ok) return describe(c, lhs);
  }
  const Rat recomputed = eval_terms(problem.objective, values);
  if (recomputed != objective)
    return "objective mismatch: assignment evaluates to " +
           recomputed.to_string() + ", solver claimed " + objective.to_string();
  return {};
}

}  // namespace vc::ilp
