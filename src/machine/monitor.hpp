// Runtime execution monitor: a dynamic soundness oracle for the static
// analysis artifacts (the zen-ids idea applied to the WCET tool chain).
//
// When armed on the simulator, every executed instruction is checked against
// a MonitorSpec of statically *claimed* facts:
//   - control: every control transfer taken by the machine must be an edge
//     of the reconstructed CFG (branch pc -> legal successor addresses);
//   - values: every interval annotation ("0 <= %1 <= 6") must hold for the
//     live register/stack value at its anchor pc;
//   - loops: per-entry back-edge counts must never exceed the loop-bound
//     rows the WCET path analyses consume.
// A violated fact is a hard MonitorError naming the function, the pc, and
// the fact — the trust anchor the paper's static claims otherwise lack
// (both WCET engines consume the same reconstructed CFG, so cross-engine
// agreement alone proves nothing about reconstruction bugs).
//
// Trust boundary: the *facts* come from the artifacts under test (that is
// the point — the monitor checks the analyzer's claims against the real
// trace), but the *checking machinery* here shares no code with src/wcet:
// annotation chains are re-parsed independently (monitor_parse_chain), and
// values are compared directly against live architectural state, with no
// interval arithmetic, abstract domains, or CFG algorithms involved.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "mach/program.hpp"

namespace vc::machine {

/// A violated statically-claimed fact, observed on a real execution trace.
class MonitorError : public std::runtime_error {
 public:
  MonitorError(const std::string& function, std::uint32_t pc,
               const std::string& fact);

  [[nodiscard]] const std::string& function() const { return function_; }
  [[nodiscard]] std::uint32_t pc() const { return pc_; }
  [[nodiscard]] const std::string& fact() const { return fact_; }

 private:
  std::string function_;
  std::uint32_t pc_ = 0;
  std::string fact_;
};

/// What the armed monitor checks. Cfg checks control transfers only; Full
/// additionally checks value annotations and loop-bound rows.
enum class MonitorMode { Off, Cfg, Full };

inline constexpr const char* kMonitorModeNames[] = {"off", "cfg", "full"};

[[nodiscard]] inline std::string to_string(MonitorMode mode) {
  return kMonitorModeNames[static_cast<int>(mode)];
}

/// Parses a canonical monitor mode name; nullopt for anything else.
[[nodiscard]] std::optional<MonitorMode> parse_monitor_mode(
    const std::string& name);

/// Read-only view of live architectural state, so the monitor can evaluate
/// value annotations without depending on the Machine class (the Machine
/// implements this privately and hands itself to the armed monitor).
class CpuView {
 public:
  virtual ~CpuView() = default;
  [[nodiscard]] virtual std::uint32_t gpr(int index) const = 0;
  [[nodiscard]] virtual double fpr(int index) const = 0;
  /// Stack-slot reads at `offset` bytes from the entry frame pointer (the
  /// r1 value the calling convention pins at function entry).
  [[nodiscard]] virtual std::uint32_t stack_u32(std::int32_t offset) const = 0;
  [[nodiscard]] virtual std::uint64_t stack_u64(std::int32_t offset) const = 0;
};

/// One per-operand bound extracted from an annotation chain: `%operand`
/// (1-based) must lie in [lo, hi] at the annotation's anchor.
struct ChainBound {
  int operand = 0;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

/// Independently re-parses an annotation chain ("0 <= %1 <= %2 < 360") into
/// per-operand constant bounds. Returns nullopt for anything that is not a
/// well-formed chain (including "loop <= N" rows). Written from the §3.4
/// annotation grammar, deliberately not from src/wcet/annotations.cpp.
[[nodiscard]] std::optional<std::vector<ChainBound>> monitor_parse_chain(
    const std::string& format);

/// One live-value check: before executing the instruction at `pc`, the value
/// of `loc` must lie in [lo, hi].
struct MonitorValueCheck {
  std::uint32_t pc = 0;
  mach::MLoc loc;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  std::string text;  // the original annotation text (diagnostics)
};

/// One loop-bound row: per entry of the loop headed at `header_pc`, at most
/// `bound` back edges (transfers into the header from inside `body`).
struct MonitorLoopRow {
  std::uint32_t header_pc = 0;
  std::int64_t bound = 0;
  /// Half-open [start, end) address ranges of the loop body (incl. header).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> body;

  [[nodiscard]] bool contains(std::uint32_t pc) const {
    for (const auto& [start, end] : body)
      if (pc >= start && pc < end) return true;
    return false;
  }
};

/// The statically claimed facts the monitor holds an execution to. Plain
/// data: builders live wherever the artifacts live (src/wcet builds one from
/// the reconstructed CFG and the loop-bound rows; add_annotation ingests the
/// image's raw annotation table).
struct MonitorSpec {
  std::string function;
  std::uint32_t lo = 0;  // code range [lo, hi) of the monitored function
  std::uint32_t hi = 0;
  /// Legal transfer targets per branch instruction address. Every control
  /// transfer instruction of the function must appear here; a blr maps to
  /// the stop address.
  std::map<std::uint32_t, std::vector<std::uint32_t>> branch_targets;
  std::vector<MonitorValueCheck> value_checks;
  std::vector<MonitorLoopRow> loops;

  /// Ingests one raw annotation entry: parses the chain independently and
  /// appends a value check per operand with a usable constant bound.
  /// Returns false (and adds nothing) for loop rows, unparseable formats,
  /// out-of-range operands, and float operands (mirroring what the static
  /// value analysis consumes; float claims are not part of the trusted
  /// fact base).
  bool add_annotation(const mach::AnnotEntry& entry);
};

/// The armed checker. Holds a reference to the spec (caller keeps it alive)
/// plus per-call loop counters. All checks throw MonitorError on violation.
class ExecutionMonitor {
 public:
  ExecutionMonitor(const MonitorSpec& spec, MonitorMode mode);

  /// Resets per-call state (loop counters). The step counter survives so a
  /// harness can total monitored work over many calls.
  void begin_call();

  /// Value-anchor checks for the instruction about to execute at `pc`.
  void before_execute(std::uint32_t pc, const CpuView& cpu);

  /// Control-flow and loop accounting for one completed step: the
  /// instruction at `pc` transferred control to `next_pc`.
  void after_step(std::uint32_t pc, std::uint32_t next_pc, bool is_branch);

  [[nodiscard]] std::uint64_t steps() const { return steps_; }
  [[nodiscard]] MonitorMode mode() const { return mode_; }

 private:
  [[noreturn]] void violation(std::uint32_t pc, const std::string& fact) const;

  const MonitorSpec& spec_;
  MonitorMode mode_;
  std::uint64_t steps_ = 0;
  // Value checks indexed by anchor pc (indices into spec_.value_checks).
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> checks_at_;
  // Loop rows indexed by header pc, with live per-call back-edge counters.
  std::unordered_map<std::uint32_t, std::size_t> loop_at_;
  std::vector<std::int64_t> back_edges_;
};

}  // namespace vc::machine
