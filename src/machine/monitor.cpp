#include "machine/monitor.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "support/strings.hpp"

namespace vc::machine {

namespace {

constexpr std::int64_t kNoLo = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kNoHi = std::numeric_limits<std::int64_t>::max();

/// One token of a chain: an integer constant or a `%k` operand reference.
struct ChainTerm {
  bool is_const = false;
  std::int64_t value = 0;
  int operand = 0;
};

bool parse_terms(const std::string& format, std::vector<ChainTerm>* terms,
                 std::vector<bool>* strict_links) {
  std::istringstream in(format);
  std::string tok;
  bool want_term = true;
  while (in >> tok) {
    if (want_term) {
      ChainTerm t;
      if (tok[0] == '%') {
        char* end = nullptr;
        const long k = std::strtol(tok.c_str() + 1, &end, 10);
        if (end == tok.c_str() + 1 || *end != '\0' || k <= 0 || k > 1000)
          return false;
        t.operand = static_cast<int>(k);
      } else {
        char* end = nullptr;
        const long long v = std::strtoll(tok.c_str(), &end, 10);
        if (end == tok.c_str() || *end != '\0') return false;
        t.is_const = true;
        t.value = v;
      }
      terms->push_back(t);
    } else if (tok == "<" || tok == "<=") {
      strict_links->push_back(tok == "<");
    } else {
      return false;
    }
    want_term = !want_term;
  }
  return !want_term && terms->size() >= 2 &&
         strict_links->size() == terms->size() - 1;
}

double bound_as_double(std::int64_t b) { return static_cast<double>(b); }

}  // namespace

MonitorError::MonitorError(const std::string& function, std::uint32_t pc,
                           const std::string& fact)
    : std::runtime_error("monitor violation in '" + function + "' at " +
                         hex32(pc) + ": " + fact),
      function_(function),
      pc_(pc),
      fact_(fact) {}

std::optional<MonitorMode> parse_monitor_mode(const std::string& name) {
  for (int i = 0; i < 3; ++i)
    if (name == kMonitorModeNames[i]) return static_cast<MonitorMode>(i);
  return std::nullopt;
}

std::optional<std::vector<ChainBound>> monitor_parse_chain(
    const std::string& format) {
  std::vector<ChainTerm> terms;
  std::vector<bool> strict;
  if (!parse_terms(format, &terms, &strict)) return std::nullopt;

  // For each operand position, the tightest constant bound on each side.
  // Walking from a constant at position j to an operand at position i, every
  // strict '<' link on the way tightens the bound by one (the chain values
  // are integers at every i32 anchor the generator emits).
  std::map<int, ChainBound> by_operand;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (terms[i].is_const) continue;
    std::int64_t lo = kNoLo;
    std::int64_t hi = kNoHi;
    for (std::size_t j = i; j-- > 0;) {
      if (!terms[j].is_const) continue;
      std::int64_t b = terms[j].value;
      for (std::size_t l = j; l < i; ++l)
        if (strict[l]) ++b;
      lo = std::max(lo, b);
    }
    for (std::size_t j = i + 1; j < terms.size(); ++j) {
      if (!terms[j].is_const) continue;
      std::int64_t b = terms[j].value;
      for (std::size_t l = i; l < j; ++l)
        if (strict[l]) --b;
      hi = std::min(hi, b);
    }
    auto [it, inserted] =
        by_operand.emplace(terms[i].operand,
                           ChainBound{terms[i].operand, lo, hi});
    if (!inserted) {
      it->second.lo = std::max(it->second.lo, lo);
      it->second.hi = std::min(it->second.hi, hi);
    }
  }

  std::vector<ChainBound> out;
  for (const auto& [operand, bound] : by_operand)
    if (bound.lo != kNoLo || bound.hi != kNoHi) out.push_back(bound);
  return out;
}

bool MonitorSpec::add_annotation(const mach::AnnotEntry& entry) {
  const auto bounds = monitor_parse_chain(entry.format);
  if (!bounds) return false;
  bool added = false;
  for (const ChainBound& b : *bounds) {
    if (b.operand > static_cast<int>(entry.operands.size())) continue;
    const mach::MLoc& loc =
        entry.operands[static_cast<std::size_t>(b.operand - 1)];
    if (loc.kind == mach::MLoc::Kind::Fpr) continue;
    if (loc.kind == mach::MLoc::Kind::StackSlot && loc.is_f64) continue;
    value_checks.push_back(
        MonitorValueCheck{entry.addr, loc, b.lo, b.hi, entry.format});
    added = true;
  }
  return added;
}

ExecutionMonitor::ExecutionMonitor(const MonitorSpec& spec, MonitorMode mode)
    : spec_(spec), mode_(mode) {
  for (std::size_t i = 0; i < spec_.value_checks.size(); ++i)
    checks_at_[spec_.value_checks[i].pc].push_back(i);
  back_edges_.assign(spec_.loops.size(), 0);
  for (std::size_t i = 0; i < spec_.loops.size(); ++i)
    loop_at_.emplace(spec_.loops[i].header_pc, i);
}

void ExecutionMonitor::begin_call() {
  std::fill(back_edges_.begin(), back_edges_.end(), 0);
}

void ExecutionMonitor::violation(std::uint32_t pc,
                                 const std::string& fact) const {
  throw MonitorError(spec_.function, pc, fact);
}

void ExecutionMonitor::before_execute(std::uint32_t pc, const CpuView& cpu) {
  if (mode_ != MonitorMode::Full) return;
  const auto it = checks_at_.find(pc);
  if (it == checks_at_.end()) return;
  for (const std::size_t idx : it->second) {
    const MonitorValueCheck& check = spec_.value_checks[idx];
    switch (check.loc.kind) {
      case mach::MLoc::Kind::Gpr: {
        const auto v = static_cast<std::int64_t>(
            static_cast<std::int32_t>(cpu.gpr(check.loc.index)));
        if (v < check.lo || v > check.hi)
          violation(pc, "annotation \"" + check.text + "\": live " +
                            check.loc.to_string() + " = " +
                            std::to_string(v) + " outside [" +
                            std::to_string(check.lo) + ", " +
                            std::to_string(check.hi) + "]");
        break;
      }
      case mach::MLoc::Kind::StackSlot: {
        const auto v = static_cast<std::int64_t>(static_cast<std::int32_t>(
            cpu.stack_u32(check.loc.offset)));
        if (v < check.lo || v > check.hi)
          violation(pc, "annotation \"" + check.text + "\": live " +
                            check.loc.to_string() + " = " +
                            std::to_string(v) + " outside [" +
                            std::to_string(check.lo) + ", " +
                            std::to_string(check.hi) + "]");
        break;
      }
      case mach::MLoc::Kind::Fpr: {
        // Float operands are filtered out at spec-build time; checked here
        // defensively for hand-built specs.
        const double v = cpu.fpr(check.loc.index);
        if (v < bound_as_double(check.lo) || v > bound_as_double(check.hi))
          violation(pc, "annotation \"" + check.text + "\": live " +
                            check.loc.to_string() + " outside bounds");
        break;
      }
    }
  }
}

void ExecutionMonitor::after_step(std::uint32_t pc, std::uint32_t next_pc,
                                  bool is_branch) {
  ++steps_;

  if (is_branch) {
    const auto it = spec_.branch_targets.find(pc);
    if (it == spec_.branch_targets.end())
      violation(pc, "control transfer at a pc the reconstructed CFG has no "
                    "branch for");
    if (std::find(it->second.begin(), it->second.end(), next_pc) ==
        it->second.end())
      violation(pc, "taken edge to " + hex32(next_pc) +
                        " is not an edge of the reconstructed CFG");
  }

  if (mode_ != MonitorMode::Full || loop_at_.empty()) return;
  const auto it = loop_at_.find(next_pc);
  if (it == loop_at_.end()) return;
  const MonitorLoopRow& row = spec_.loops[it->second];
  if (row.contains(pc)) {
    // A transfer into the header from inside the loop is a back edge.
    if (++back_edges_[it->second] > row.bound)
      violation(pc, "loop headed at " + hex32(row.header_pc) + " exceeded " +
                        std::to_string(row.bound) +
                        " back edge(s) per entry (the bound the WCET path "
                        "analyses consume)");
  } else {
    // Entering from outside starts a fresh per-entry count.
    back_edges_[it->second] = 0;
  }
}

}  // namespace vc::machine
