#include "machine/machine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "support/strings.hpp"

namespace vc::machine {

using mach::Image;
using mach::MInstr;
using mach::MOp;

namespace {

std::uint32_t rotl32(std::uint32_t v, unsigned n) {
  n &= 31;
  return n == 0 ? v : (v << n) | (v >> (32 - n));
}

/// rlwinm mask: bits mb..me inclusive in big-endian bit numbering (0 = MSB),
/// wrapping when mb > me.
std::uint32_t rlwinm_mask(unsigned mb, unsigned me) {
  const std::uint32_t x = 0xFFFFFFFFu >> mb;
  const std::uint32_t y =
      me == 31 ? 0xFFFFFFFFu : ~(0xFFFFFFFFu >> (me + 1));
  return mb <= me ? (x & y) : (x | y);
}

std::uint64_t bits_of(double d) {
  std::uint64_t b = 0;
  std::memcpy(&b, &d, sizeof b);
  return b;
}

double double_of(std::uint64_t b) {
  double d = 0;
  std::memcpy(&d, &b, sizeof d);
  return d;
}

/// The descriptor the image was compiled for (registry default when the
/// image predates target tags).
const mach::TargetDesc& desc_of(const mach::Image& image) {
  return mach::target_by_name(image.target.empty()
                                  ? mach::default_target_name()
                                  : image.target);
}

}  // namespace

Cache::Cache(mach::CacheConfig cfg) : cfg_(cfg) { clear(); }

void Cache::clear() {
  ways_.assign(cfg_.sets, std::vector<std::uint32_t>());
}

bool Cache::access(std::uint32_t addr) {
  const std::uint32_t set = cfg_.set_of(addr);
  const std::uint32_t tag = cfg_.tag_of(addr);
  auto& lru = ways_[set];
  auto it = std::find(lru.begin(), lru.end(), tag);
  if (it != lru.end()) {
    lru.erase(it);
    lru.insert(lru.begin(), tag);
    return true;
  }
  lru.insert(lru.begin(), tag);
  if (lru.size() > cfg_.ways) lru.pop_back();
  return false;
}

Machine::Machine(const mach::Image& image)
    : Machine(image, desc_of(image).machine) {}

Machine::Machine(const mach::Image& image, mach::MachineConfig config)
    : image_(image),
      desc_(&desc_of(image)),
      config_(config),
      icache_(config.icache),
      dcache_(config.dcache),
      pipe_(*desc_) {
  reset();
}

void Machine::reset() {
  data_ = image_.data_init;
  // Allow a little headroom beyond the initialised data for alignment.
  data_.resize(std::max<std::size_t>(data_.size(), 64), 0);
  stack_.assign(kStackBytes, 0);
  gpr_.fill(0);
  fpr_.fill(0.0);
  cr_ = 0;
  clear_caches();
  stats_ = ExecStats{};
}

void Machine::clear_caches() {
  icache_.clear();
  dcache_.clear();
  pipe_.reset();
}

const std::uint8_t* Machine::mem_at(std::uint32_t addr,
                                    std::uint32_t size) const {
  if (addr >= Image::kDataBase && addr + size <= Image::kDataBase + data_.size())
    return data_.data() + (addr - Image::kDataBase);
  const std::uint32_t stack_base = Image::kStackTop - kStackBytes;
  if (addr >= stack_base && addr + size <= Image::kStackTop)
    return stack_.data() + (addr - stack_base);
  throw MachineError("memory access outside data/stack segments: " +
                     hex32(addr));
}

std::uint8_t* Machine::mem_at_mut(std::uint32_t addr, std::uint32_t size) {
  return const_cast<std::uint8_t*>(mem_at(addr, size));
}

std::uint32_t Machine::read_u32(std::uint32_t addr) const {
  const std::uint8_t* p = mem_at(addr, 4);
  return (std::uint32_t(p[0]) << 24) | (std::uint32_t(p[1]) << 16) |
         (std::uint32_t(p[2]) << 8) | std::uint32_t(p[3]);
}

std::uint64_t Machine::read_u64(std::uint32_t addr) const {
  return (std::uint64_t(read_u32(addr)) << 32) | read_u32(addr + 4);
}

void Machine::write_u32(std::uint32_t addr, std::uint32_t value) {
  std::uint8_t* p = mem_at_mut(addr, 4);
  p[0] = static_cast<std::uint8_t>(value >> 24);
  p[1] = static_cast<std::uint8_t>(value >> 16);
  p[2] = static_cast<std::uint8_t>(value >> 8);
  p[3] = static_cast<std::uint8_t>(value);
}

void Machine::write_u64(std::uint32_t addr, std::uint64_t value) {
  write_u32(addr, static_cast<std::uint32_t>(value >> 32));
  write_u32(addr + 4, static_cast<std::uint32_t>(value));
}

minic::Value Machine::call(const std::string& fn_name,
                           const std::vector<minic::Value>& args,
                           minic::Type ret_type) {
  auto it = image_.fn_entry.find(fn_name);
  if (it == image_.fn_entry.end())
    throw MachineError("unknown function '" + fn_name + "'");

  pipe_.reset();
  stats_.cycles = 0;
  stats_.instructions = 0;
  stats_.dcache_reads = 0;
  stats_.dcache_writes = 0;
  stats_.dcache_read_misses = 0;
  stats_.dcache_write_misses = 0;
  stats_.ifetch_line_misses = 0;
  stats_.taken_branches = 0;

  if (monitor_ != nullptr) monitor_->begin_call();

  gpr_[desc_->stack_ptr] = kEntryR1;
  gpr_[desc_->data_base] = Image::kDataBase;
  int next_gpr = desc_->first_arg_gpr;
  int next_fpr = desc_->first_arg_fpr;
  for (const auto& a : args) {
    if (a.type == minic::Type::I32) {
      if (next_gpr >= desc_->first_arg_gpr + desc_->n_arg_gprs)
        throw MachineError("too many integer arguments");
      gpr_[next_gpr++] = static_cast<std::uint32_t>(a.i);
    } else {
      if (next_fpr >= desc_->first_arg_fpr + desc_->n_arg_fprs)
        throw MachineError("too many float arguments");
      fpr_[next_fpr++] = a.f;
    }
  }

  run(it->second);

  if (ret_type == minic::Type::I32)
    return minic::Value::of_i32(
        static_cast<std::int32_t>(gpr_[desc_->ret_gpr]));
  return minic::Value::of_f64(fpr_[desc_->ret_fpr]);
}

void Machine::run(std::uint32_t entry) {
  std::uint32_t pc = entry;
  std::uint64_t executed = 0;
  std::uint32_t last_fetch_line = 0xFFFFFFFF;

  while (pc != Image::kStopAddr) {
    if (++executed > fuel_) {
      // Keep the stats consistent with the work actually done before
      // throwing, so diagnostics of a truncated run are not garbage — but
      // the run is NOT complete and its stats are NOT observations.
      pipe_.drain();
      stats_.cycles = pipe_.current_cycle();
      throw FuelExhausted("instruction budget exhausted after " +
                          std::to_string(fuel_) +
                          " instruction(s): execution truncated");
    }
    const MInstr ins = image_.fetch(pc);

    // Instruction fetch through the I-cache, one lookup per line entered.
    std::uint32_t fetch_stall = 0;
    const std::uint32_t line = config_.icache.line_addr(pc);
    if (line != last_fetch_line) {
      last_fetch_line = line;
      if (!icache_.access(pc)) {
        fetch_stall = config_.miss_penalty;
        ++stats_.ifetch_line_misses;
      }
    }

    // Architectural execution (also computes data addresses/taken flags).
    next_pc_ = pc + 4;
    branch_taken_ = false;
    std::uint32_t mem_addr = 0;
    bool has_mem = mach::is_memory_op(ins.op);
    if (has_mem) {
      switch (ins.op) {
        case MOp::Lwz: case MOp::Stw: case MOp::Lfd: case MOp::Stfd:
          mem_addr = gpr_[ins.ra] + static_cast<std::uint32_t>(ins.imm);
          break;
        default:  // x-form
          mem_addr = gpr_[ins.ra] + gpr_[ins.rb];
          break;
      }
    }
    if (monitor_ != nullptr) monitor_->before_execute(pc, *this);
    execute(ins, pc);

    // Micro-architectural accounting.
    std::uint32_t extra_mem = 0;
    if (has_mem) {
      const bool is_store = ins.op == MOp::Stw || ins.op == MOp::Stwx ||
                            ins.op == MOp::Stfd || ins.op == MOp::Stfdx;
      const bool hit = dcache_.access(mem_addr);
      if (is_store) {
        ++stats_.dcache_writes;
        if (!hit) {
          ++stats_.dcache_write_misses;
          extra_mem = config_.miss_penalty;
        }
      } else {
        ++stats_.dcache_reads;
        if (!hit) {
          ++stats_.dcache_read_misses;
          extra_mem = config_.miss_penalty;
        }
      }
    }

    int reads[mach::IssueModel::kMaxResourcesPerInstr];
    int writes[mach::IssueModel::kMaxResourcesPerInstr];
    int n_reads = 0;
    int n_writes = 0;
    mach::IssueModel::resources(ins, reads, &n_reads, writes, &n_writes);
    pipe_.issue(ins, reads, n_reads, writes, n_writes, extra_mem, fetch_stall);
    ++stats_.instructions;

    if (mach::is_branch(ins.op)) {
      pipe_.drain();
      if (branch_taken_) {
        pipe_.add_stall(config_.taken_branch_penalty);
        ++stats_.taken_branches;
        last_fetch_line = 0xFFFFFFFF;  // refetch after redirect
      }
    }
    if (monitor_ != nullptr)
      monitor_->after_step(pc, next_pc_, mach::is_branch(ins.op));
    pc = next_pc_;
  }
  pipe_.drain();
  stats_.cycles = pipe_.current_cycle();
}

void Machine::execute(const MInstr& ins, std::uint32_t pc) {
  auto set_cr_field = [&](int crf, bool lt, bool gt, bool eq, bool so) {
    const int shift = 28 - crf * 4;
    cr_ &= ~(0xFu << shift);
    std::uint32_t bits = 0;
    if (lt) bits |= 8;
    if (gt) bits |= 4;
    if (eq) bits |= 2;
    if (so) bits |= 1;
    cr_ |= bits << shift;
  };
  auto cr_bit = [&](int bit) { return (cr_ >> (31 - bit)) & 1u; };

  const auto ra = gpr_[ins.ra];
  const auto rb = gpr_[ins.rb];

  switch (ins.op) {
    case MOp::Li:
      gpr_[ins.rd] = static_cast<std::uint32_t>(ins.imm);
      break;
    case MOp::Lis:
      gpr_[ins.rd] = static_cast<std::uint32_t>(ins.imm) << 16;
      break;
    case MOp::Ori:
      gpr_[ins.rd] = ra | static_cast<std::uint32_t>(ins.imm);
      break;
    case MOp::Xori:
      gpr_[ins.rd] = ra ^ static_cast<std::uint32_t>(ins.imm);
      break;
    case MOp::Addi:
      gpr_[ins.rd] = ra + static_cast<std::uint32_t>(ins.imm);
      break;
    case MOp::Mr:
      gpr_[ins.rd] = ra;
      break;
    case MOp::Add:
      gpr_[ins.rd] = ra + rb;
      break;
    case MOp::Subf:
      gpr_[ins.rd] = rb - ra;
      break;
    case MOp::Mullw:
      gpr_[ins.rd] = ra * rb;
      break;
    case MOp::Divw: {
      const auto a = static_cast<std::int32_t>(ra);
      const auto b = static_cast<std::int32_t>(rb);
      if (b == 0) throw MachineError("divw by zero at " + hex32(pc));
      if (a == std::numeric_limits<std::int32_t>::min() && b == -1)
        gpr_[ins.rd] = ra;  // overflow wraps
      else
        gpr_[ins.rd] = static_cast<std::uint32_t>(a / b);
      break;
    }
    case MOp::And: gpr_[ins.rd] = ra & rb; break;
    case MOp::Or: gpr_[ins.rd] = ra | rb; break;
    case MOp::Xor: gpr_[ins.rd] = ra ^ rb; break;
    case MOp::Nor: gpr_[ins.rd] = ~(ra | rb); break;
    case MOp::Neg: gpr_[ins.rd] = 0u - ra; break;
    case MOp::Slw: {
      const std::uint32_t sh = rb & 0x3F;
      gpr_[ins.rd] = sh >= 32 ? 0 : ra << sh;
      break;
    }
    case MOp::Sraw: {
      const std::uint32_t sh = rb & 0x3F;
      const auto a = static_cast<std::int32_t>(ra);
      if (sh >= 32)
        gpr_[ins.rd] = a < 0 ? 0xFFFFFFFFu : 0;
      else
        gpr_[ins.rd] = static_cast<std::uint32_t>(a >> sh);
      break;
    }
    case MOp::Srw: {
      const std::uint32_t sh = rb & 0x3F;
      gpr_[ins.rd] = sh >= 32 ? 0 : ra >> sh;
      break;
    }
    case MOp::Rlwinm:
      gpr_[ins.rd] = rotl32(ra, ins.sh) & rlwinm_mask(ins.mb, ins.me);
      break;
    case MOp::Cmpw: {
      const auto a = static_cast<std::int32_t>(ra);
      const auto b = static_cast<std::int32_t>(rb);
      set_cr_field(ins.crf, a < b, a > b, a == b, false);
      break;
    }
    case MOp::Cmpwi: {
      const auto a = static_cast<std::int32_t>(ra);
      set_cr_field(ins.crf, a < ins.imm, a > ins.imm, a == ins.imm, false);
      break;
    }
    case MOp::Fcmpu: {
      const double a = fpr_[ins.ra];
      const double b = fpr_[ins.rb];
      if (std::isnan(a) || std::isnan(b))
        set_cr_field(ins.crf, false, false, false, true);
      else
        set_cr_field(ins.crf, a < b, a > b, a == b, false);
      break;
    }
    case MOp::Cror: {
      const std::uint32_t v = cr_bit(ins.crba) | cr_bit(ins.crbb);
      cr_ = (cr_ & ~(1u << (31 - ins.crbd))) | (v << (31 - ins.crbd));
      break;
    }
    case MOp::Mfcr:
      gpr_[ins.rd] = cr_;
      break;
    case MOp::Fadd: fpr_[ins.rd] = fpr_[ins.ra] + fpr_[ins.rb]; break;
    case MOp::Fsub: fpr_[ins.rd] = fpr_[ins.ra] - fpr_[ins.rb]; break;
    case MOp::Fmul: fpr_[ins.rd] = fpr_[ins.ra] * fpr_[ins.rb]; break;
    case MOp::Fdiv: fpr_[ins.rd] = fpr_[ins.ra] / fpr_[ins.rb]; break;
    case MOp::Fmadd: {
      // Non-fused semantics: fmadd here computes (a*b)+c in two IEEE
      // rounding steps, exactly like the separate fmul/fadd pair the O2
      // peephole replaced, so fusion is result-preserving by construction.
      // (Separate statements prevent host FMA contraction.)
      const double product = fpr_[ins.ra] * fpr_[ins.rb];
      fpr_[ins.rd] = product + fpr_[ins.rc];
      break;
    }
    case MOp::Fmsub: {
      const double product = fpr_[ins.ra] * fpr_[ins.rb];
      fpr_[ins.rd] = product - fpr_[ins.rc];
      break;
    }
    case MOp::Fneg: fpr_[ins.rd] = -fpr_[ins.ra]; break;
    case MOp::Fabs: fpr_[ins.rd] = std::fabs(fpr_[ins.ra]); break;
    case MOp::Fmr: fpr_[ins.rd] = fpr_[ins.ra]; break;
    case MOp::Fcti: {
      const minic::Value v =
          minic::eval_unop(minic::UnOp::F2I, minic::Value::of_f64(fpr_[ins.ra]));
      gpr_[ins.rd] = static_cast<std::uint32_t>(v.i);
      break;
    }
    case MOp::Icvf:
      fpr_[ins.rd] = static_cast<double>(static_cast<std::int32_t>(ra));
      break;
    case MOp::Lwz:
      gpr_[ins.rd] = read_u32(ra + static_cast<std::uint32_t>(ins.imm));
      break;
    case MOp::Stw:
      write_u32(ra + static_cast<std::uint32_t>(ins.imm), gpr_[ins.rd]);
      break;
    case MOp::Lwzx:
      gpr_[ins.rd] = read_u32(ra + rb);
      break;
    case MOp::Stwx:
      write_u32(ra + rb, gpr_[ins.rd]);
      break;
    case MOp::Lfd:
      fpr_[ins.rd] =
          double_of(read_u64(ra + static_cast<std::uint32_t>(ins.imm)));
      break;
    case MOp::Stfd:
      write_u64(ra + static_cast<std::uint32_t>(ins.imm),
                bits_of(fpr_[ins.rd]));
      break;
    case MOp::Lfdx:
      fpr_[ins.rd] = double_of(read_u64(ra + rb));
      break;
    case MOp::Stfdx:
      write_u64(ra + rb, bits_of(fpr_[ins.rd]));
      break;
    case MOp::B:
      next_pc_ = pc + static_cast<std::uint32_t>(ins.disp) * 4;
      branch_taken_ = true;
      break;
    case MOp::Bc: {
      const bool cond = cr_bit(ins.crbit) == (ins.expect ? 1u : 0u);
      if (cond) {
        next_pc_ = pc + static_cast<std::uint32_t>(ins.disp) * 4;
        branch_taken_ = true;
      }
      break;
    }
    case MOp::Blr:
      // The harness runs single functions; returning from the outermost
      // frame jumps to the stop address.
      next_pc_ = Image::kStopAddr;
      branch_taken_ = true;
      break;
    case MOp::Nop:
      break;
    case MOp::Lui:
      gpr_[ins.rd] = static_cast<std::uint32_t>(ins.imm) << 12;
      break;
    case MOp::Slli:
      gpr_[ins.rd] = ra << (static_cast<std::uint32_t>(ins.imm) & 31);
      break;
    case MOp::Sll:
      gpr_[ins.rd] = ra << (rb & 31);
      break;
    case MOp::Srl:
      gpr_[ins.rd] = ra >> (rb & 31);
      break;
    case MOp::Sra:
      gpr_[ins.rd] = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(ra) >> (rb & 31));
      break;
    case MOp::Slt:
      gpr_[ins.rd] = static_cast<std::int32_t>(ra) <
                             static_cast<std::int32_t>(rb)
                         ? 1u
                         : 0u;
      break;
    case MOp::Sltu:
      gpr_[ins.rd] = ra < rb ? 1u : 0u;
      break;
    case MOp::Sltiu:
      gpr_[ins.rd] = ra < static_cast<std::uint32_t>(ins.imm) ? 1u : 0u;
      break;
    case MOp::Rem: {
      const auto a = static_cast<std::int32_t>(ra);
      const auto b = static_cast<std::int32_t>(rb);
      if (b == 0) throw MachineError("rem by zero at " + hex32(pc));
      if (a == std::numeric_limits<std::int32_t>::min() && b == -1)
        gpr_[ins.rd] = 0;  // overflow case: remainder 0
      else
        gpr_[ins.rd] = static_cast<std::uint32_t>(a % b);
      break;
    }
    case MOp::Feq:
      gpr_[ins.rd] = fpr_[ins.ra] == fpr_[ins.rb] ? 1u : 0u;
      break;
    case MOp::Flt:
      gpr_[ins.rd] = fpr_[ins.ra] < fpr_[ins.rb] ? 1u : 0u;
      break;
    case MOp::Fle:
      gpr_[ins.rd] = fpr_[ins.ra] <= fpr_[ins.rb] ? 1u : 0u;
      break;
    case MOp::Beq:
      if (ra == rb) {
        next_pc_ = pc + static_cast<std::uint32_t>(ins.disp) * 4;
        branch_taken_ = true;
      }
      break;
    case MOp::Bne:
      if (ra != rb) {
        next_pc_ = pc + static_cast<std::uint32_t>(ins.disp) * 4;
        branch_taken_ = true;
      }
      break;
    case MOp::Blt:
      if (static_cast<std::int32_t>(ra) < static_cast<std::int32_t>(rb)) {
        next_pc_ = pc + static_cast<std::uint32_t>(ins.disp) * 4;
        branch_taken_ = true;
      }
      break;
    case MOp::Bge:
      if (static_cast<std::int32_t>(ra) >= static_cast<std::int32_t>(rb)) {
        next_pc_ = pc + static_cast<std::uint32_t>(ins.disp) * 4;
        branch_taken_ = true;
      }
      break;
  }
  // The hardwired zero register (when the target has one) absorbs writes.
  if (desc_->zero_gpr >= 0)
    gpr_[static_cast<std::size_t>(desc_->zero_gpr)] = 0;
}

void Machine::arm_monitor(const MonitorSpec& spec, MonitorMode mode) {
  monitor_ = mode == MonitorMode::Off
                 ? nullptr
                 : std::make_unique<ExecutionMonitor>(spec, mode);
}

minic::Value Machine::read_global(const std::string& name, std::size_t index,
                                  minic::Type type) const {
  const std::uint32_t base = image_.global_addr.at(name);
  if (type == minic::Type::F64)
    return minic::Value::of_f64(
        double_of(read_u64(base + static_cast<std::uint32_t>(index) * 8)));
  return minic::Value::of_i32(static_cast<std::int32_t>(
      read_u32(base + static_cast<std::uint32_t>(index) * 4)));
}

void Machine::write_global(const std::string& name, std::size_t index,
                           minic::Value v) {
  const std::uint32_t base = image_.global_addr.at(name);
  if (v.type == minic::Type::F64)
    write_u64(base + static_cast<std::uint32_t>(index) * 8, bits_of(v.f));
  else
    write_u32(base + static_cast<std::uint32_t>(index) * 4,
              static_cast<std::uint32_t>(v.i));
}

}  // namespace vc::machine
