// Cycle-level simulator of the target machine.
//
// Executes linked images instruction by instruction with big-endian memory,
// L1 instruction/data caches (LRU), and the shared issue-model timing
// (mach/timing.hpp), all parameterized by the target descriptor the image
// names (mach/target.hpp) — the same simulator runs PPC and RV32 code.
// Produces both architectural results (registers, memory) and
// micro-architectural statistics (cycles, cache reads/writes/misses) — the
// raw material for the paper's Table 1 and the "observed execution time"
// side of the WCET soundness property tests.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "machine/monitor.hpp"
#include "minic/interp.hpp"
#include "mach/program.hpp"
#include "mach/target.hpp"
#include "mach/timing.hpp"

namespace vc::machine {

class MachineError : public std::runtime_error {
 public:
  explicit MachineError(const std::string& message)
      : std::runtime_error(message) {}
};

/// The per-call instruction budget ran out. Distinct from MachineError so
/// harnesses can tell a truncated execution from a faulting one — stats from
/// a truncated run are NOT observations (fleet.cpp discards them wholesale);
/// recording them would make WCET bounds look sound against an
/// under-observed baseline.
class FuelExhausted : public MachineError {
 public:
  explicit FuelExhausted(const std::string& message) : MachineError(message) {}
};

/// An N-way set-associative LRU cache model (tags only).
class Cache {
 public:
  explicit Cache(mach::CacheConfig cfg);

  void clear();
  /// True on hit; updates LRU state either way (misses allocate).
  bool access(std::uint32_t addr);

 private:
  mach::CacheConfig cfg_;
  // ways_[set] is ordered most-recently-used first; empty slots hold ~0.
  std::vector<std::vector<std::uint32_t>> ways_;
};

struct ExecStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t dcache_reads = 0;
  std::uint64_t dcache_writes = 0;
  std::uint64_t dcache_read_misses = 0;
  std::uint64_t dcache_write_misses = 0;
  std::uint64_t ifetch_line_misses = 0;
  std::uint64_t taken_branches = 0;
};

class Machine : private CpuView {
 public:
  /// Runs with the machine configuration (caches, penalties) of the image's
  /// target descriptor.
  explicit Machine(const mach::Image& image);
  /// Same, but with an explicit machine-configuration override (cache
  /// ablations, WCET nocache experiments).
  Machine(const mach::Image& image, mach::MachineConfig config);

  /// Reinitializes data memory from the image, clears registers and caches.
  void reset();

  /// Clears only the caches (to model an unknown initial cache state between
  /// runs without losing global data — used by WCET soundness tests).
  void clear_caches();

  /// Runs `fn_name` with `args` marshalled per the target's calling
  /// convention. Returns the result read from the return registers.
  minic::Value call(const std::string& fn_name,
                    const std::vector<minic::Value>& args,
                    minic::Type ret_type);

  [[nodiscard]] const ExecStats& stats() const { return stats_; }

  /// Direct global access for tests/harnesses (big-endian memory).
  [[nodiscard]] minic::Value read_global(const std::string& name,
                                         std::size_t index,
                                         minic::Type type) const;
  void write_global(const std::string& name, std::size_t index,
                    minic::Value v);

  /// Instruction budget per call (runaway guard). Exhaustion throws
  /// FuelExhausted, never a plain MachineError.
  void set_fuel(std::uint64_t fuel) { fuel_ = fuel; }

  /// Arms the execution monitor: every subsequent step is checked against
  /// `spec` at the given mode (monitor.hpp). The spec must outlive the
  /// armed machine. Violations surface as MonitorError from call().
  void arm_monitor(const MonitorSpec& spec, MonitorMode mode);
  void disarm_monitor() { monitor_.reset(); }
  /// The armed monitor (step counter lives there); nullptr when off.
  [[nodiscard]] const ExecutionMonitor* monitor() const {
    return monitor_.get();
  }

 private:
  std::uint32_t read_u32(std::uint32_t addr) const;
  std::uint64_t read_u64(std::uint32_t addr) const;
  void write_u32(std::uint32_t addr, std::uint32_t value);
  void write_u64(std::uint32_t addr, std::uint64_t value);
  const std::uint8_t* mem_at(std::uint32_t addr, std::uint32_t size) const;
  std::uint8_t* mem_at_mut(std::uint32_t addr, std::uint32_t size);

  void run(std::uint32_t entry);
  void execute(const mach::MInstr& ins, std::uint32_t pc);

  // CpuView: live architectural reads for the armed monitor. Stack slots are
  // addressed from the entry r1 the calling convention pins in call().
  [[nodiscard]] std::uint32_t gpr(int index) const override {
    return gpr_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] double fpr(int index) const override {
    return fpr_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] std::uint32_t stack_u32(std::int32_t offset) const override {
    return read_u32(kEntryR1 + static_cast<std::uint32_t>(offset));
  }
  [[nodiscard]] std::uint64_t stack_u64(std::int32_t offset) const override {
    return read_u64(kEntryR1 + static_cast<std::uint32_t>(offset));
  }

  const mach::Image& image_;
  const mach::TargetDesc* desc_;
  mach::MachineConfig config_;
  Cache icache_;
  Cache dcache_;
  mach::IssueModel pipe_;
  ExecStats stats_;

  std::array<std::uint32_t, 32> gpr_{};
  std::array<double, 32> fpr_{};
  std::uint32_t cr_ = 0;  // PowerPC numbering: CR bit i == (cr_ >> (31-i)) & 1
  std::uint32_t next_pc_ = 0;
  bool branch_taken_ = false;

  std::vector<std::uint8_t> data_;   // at Image::kDataBase
  std::vector<std::uint8_t> stack_;  // below Image::kStackTop
  static constexpr std::uint32_t kStackBytes = 1 << 16;
  // The r1 value call() seeds; the frame base stack-slot MLocs refer to.
  static constexpr std::uint32_t kEntryR1 = mach::Image::kStackTop - 64;

  std::uint64_t fuel_ = 200'000'000;
  std::unique_ptr<ExecutionMonitor> monitor_;
};

}  // namespace vc::machine
