// Cold vs. warm campaign wall time through the content-addressed artifact
// store: the paper's experiment (CompCert + aiT over ~2500 ACG files) is a
// pure function of (source, config, tool version), so a warm restart of the
// campaign must collapse to hash lookups. This bench runs the Table-1-shaped
// workload (compile + 50 execution cycles + WCET) three times over one store:
//
//   cold   — empty store: every job compiles, executes, analyzes, publishes;
//   warm   — same process, populated store: every job replays cached results;
//   rewarm — fresh store object over the same directory, simulating a
//            campaign *restart* (the persistent index is rebuilt from disk).
//
// It verifies that warm records are bit-identical to cold ones (modulo
// timing/cache fields) and prints the speedup. --nodes=N scales the suite
// (default 40; the paper-scale campaign is --nodes=2500), --jobs=N the
// workers. --cache-dir=DIR keeps the store after the run (NOTE: it is
// cleared first — the cold phase must be genuinely cold; do not point it at
// a store you want to keep). Default is a throwaway under the system temp
// dir. --report-json=FILE dumps the warm run's records.
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"

using namespace vc;

namespace {

/// Semantic (non-timing, non-cache) record equality: the warm-rerun
/// determinism contract of FleetOptions::store.
bool records_equal(const driver::FleetRecord& a, const driver::FleetRecord& b) {
  return a.name == b.name && a.config == b.config && a.ok == b.ok &&
         a.error == b.error && a.code_bytes == b.code_bytes &&
         a.exec.cycles == b.exec.cycles &&
         a.exec.instructions == b.exec.instructions &&
         a.exec.dcache_reads == b.exec.dcache_reads &&
         a.exec.dcache_writes == b.exec.dcache_writes &&
         a.exec.dcache_read_misses == b.exec.dcache_read_misses &&
         a.exec.dcache_write_misses == b.exec.dcache_write_misses &&
         a.exec.ifetch_line_misses == b.exec.ifetch_line_misses &&
         a.exec.taken_branches == b.exec.taken_branches &&
         a.observed_max_cycles == b.observed_max_cycles &&
         a.wcet_cycles == b.wcet_cycles &&
         a.wcet_nocache_cycles == b.wcet_nocache_cycles &&
         a.wcet_ipet_cycles == b.wcet_ipet_cycles &&
         a.wcet_ipet_capped_edges == b.wcet_ipet_capped_edges &&
         a.wcet_ipet_certified == b.wcet_ipet_certified;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags =
      bench::parse_bench_flags(argc, argv, "bench_cache_warm");
  const int nodes = flags.nodes > 0 ? flags.nodes : 40;

  std::string cache_dir = flags.cache_dir;
  const bool throwaway = cache_dir.empty();
  if (throwaway)
    cache_dir = (std::filesystem::temp_directory_path() /
                 "vcflight-bench-cache-warm")
                    .string();
  std::filesystem::remove_all(cache_dir);  // measure a genuinely cold start

  std::puts("=== Artifact store: cold vs. warm campaign wall time ===");
  std::printf("workload: %d generated nodes + pitch-axis law, 50 cycles each "
              "+ WCET, seed 20110318\ncache: %s\n\n", nodes,
              cache_dir.c_str());

  std::vector<bench::NodeBundle> suite = bench::make_suite(nodes);
  suite.push_back(bench::pitch_law());
  const std::vector<driver::FleetUnit> units = bench::to_fleet_units(suite);

  driver::FleetOptions options;
  options.target = flags.target;
  options.jobs = flags.jobs;
  options.exec_cycles = 50;
  options.wcet = true;
  options.wcet_engine = flags.wcet_engine;
  bench::attach_pipeline_flags(&options, flags);

  const auto run_with = [&](artifact::ArtifactStore* store) {
    options.store = store;
    return driver::run_fleet(units, options);
  };

  artifact::ArtifactStore store({cache_dir, static_cast<std::uint64_t>(
                                                flags.cache_budget_mb) *
                                                1024 * 1024});
  const driver::FleetReport cold = run_with(&store);
  const driver::FleetReport warm = run_with(&store);
  // A fresh store over the same directory = a campaign restart: the index
  // is rebuilt from whatever survived on disk.
  artifact::ArtifactStore restarted({cache_dir, 0});
  const driver::FleetReport rewarm = run_with(&restarted);
  options.store = nullptr;

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < cold.records.size(); ++i) {
    if (!records_equal(cold.records[i], warm.records[i])) ++mismatches;
    if (!records_equal(cold.records[i], rewarm.records[i])) ++mismatches;
  }

  std::printf("%-28s %10s %12s %12s %12s\n", "phase", "wall s", "full hits",
              "image hits", "misses");
  bench::print_rule(78);
  const auto row = [](const char* name, const driver::FleetReport& r) {
    std::printf("%-28s %10.2f %12llu %12llu %12llu\n", name, r.wall_seconds,
                static_cast<unsigned long long>(r.cache_full_hits),
                static_cast<unsigned long long>(r.cache_image_hits),
                static_cast<unsigned long long>(r.cache_misses));
  };
  row("cold (empty store)", cold);
  row("warm (same process)", warm);
  row("rewarm (restarted store)", rewarm);
  bench::print_rule(78);

  const double speedup = warm.wall_seconds > 0.0
                             ? cold.wall_seconds / warm.wall_seconds
                             : 0.0;
  const double re_speedup = rewarm.wall_seconds > 0.0
                                ? cold.wall_seconds / rewarm.wall_seconds
                                : 0.0;
  std::printf("warm speedup: %.1fx, rewarm speedup: %.1fx\n", speedup,
              re_speedup);
  std::printf("record mismatches cold vs warm/rewarm: %zu (must be 0)\n",
              mismatches);
  std::puts(warm.throughput_summary().c_str());
  bench::write_bench_report(warm, flags, "bench_cache_warm");

  if (throwaway) std::filesystem::remove_all(cache_dir);

  // Exit non-zero on a broken determinism contract or a cache that failed
  // to serve the rerun — this bench is itself a check, like the soundness
  // sweep in bench_wcet_tightness.
  const bool all_hits =
      warm.cache_full_hits == warm.records.size() &&
      rewarm.cache_full_hits == rewarm.records.size();
  if (mismatches != 0 || !all_hits) {
    std::fprintf(stderr, "bench_cache_warm: FAILED (%zu mismatches, warm "
                         "hits %llu/%zu, rewarm hits %llu/%zu)\n",
                 mismatches,
                 static_cast<unsigned long long>(warm.cache_full_hits),
                 warm.records.size(),
                 static_cast<unsigned long long>(rewarm.cache_full_hits),
                 rewarm.records.size());
    return 1;
  }
  return 0;
}
