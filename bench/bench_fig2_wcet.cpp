// Reproduces Figure 2 and the §3.3 WCET means of the paper: per-node static
// WCET for the four compiler configurations, one series per configuration,
// plus the mean WCET change relative to the non-optimized default compiler.
//
// Paper reference values (mean WCET delta vs non-optimized default):
//   optimized w/o register allocation:  -0.5%
//   CompCert ('verified'):             -12.0%
//   fully optimized ('O2-full'):       -18.4%
// The per-node spread matters too: nodes dominated by hardware signal
// acquisition improve much less than pure symbol-chain nodes.
//
// All compile + WCET chains run through the fleet runner; --jobs=N sets the
// worker count and --nodes=N scales the generated suite up to the paper's
// full ~2500 ACG files (--nodes=2500). --cache-dir=DIR attaches the
// content-addressed artifact store and --report-json=FILE emits the full
// record array as JSON.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace vc;
using bench::NodeBundle;

int main(int argc, char** argv) {
  const bench::BenchFlags flags =
      bench::parse_bench_flags(argc, argv, "bench_fig2_wcet");
  const int nodes = flags.nodes > 0 ? flags.nodes : 40;

  std::puts("=== Figure 2: per-node WCET by compiler configuration ===");
  std::printf("workload: %d generated nodes + pitch-axis law, seed "
              "20110318\n\n", nodes);

  std::vector<NodeBundle> suite = bench::make_suite(nodes);
  suite.push_back(bench::pitch_law());

  const auto store = bench::open_bench_store(flags);
  driver::FleetOptions options;
  options.target = flags.target;
  options.jobs = flags.jobs;
  options.wcet = true;
  options.wcet_engine = flags.wcet_engine;
  options.store = store.get();
  bench::attach_pipeline_flags(&options, flags);
  bench::attach_validation(&options, flags.validate);
  const driver::FleetReport report =
      driver::run_fleet(bench::to_fleet_units(suite), options);
  bench::write_bench_report(report, flags, "bench_fig2_wcet");

  std::printf("%-10s %10s %14s %12s %10s   %s\n", "node", "O0-pattern",
              "O1-noregalloc", "verified", "O2-full",
              "delta vs O0 (O1 / verified / O2)");
  bench::print_rule(100);

  std::map<driver::Config, double> sum_ratio;
  int analyzed = 0;

  for (std::size_t u = 0; u < report.units; ++u) {
    std::map<driver::Config, std::uint64_t> wcet;
    bool ok = true;
    for (std::size_t c = 0; c < report.configs; ++c) {
      const driver::FleetRecord& r = report.at(u, c);
      if (!r.ok) {
        std::printf("%-10s analysis failed (%s): %s\n", r.name.c_str(),
                    driver::to_string(r.config).c_str(), r.error.c_str());
        ok = false;
        break;
      }
      wcet[r.config] = r.wcet_cycles;
    }
    if (!ok) continue;
    ++analyzed;
    const auto o0 = static_cast<double>(wcet[driver::Config::O0Pattern]);
    for (driver::Config config : driver::kAllConfigs)
      sum_ratio[config] += static_cast<double>(wcet[config]) / o0;
    std::printf(
        "%-10s %10llu %14llu %12llu %10llu   %s / %s / %s\n",
        report.at(u, 0).name.c_str(),
        static_cast<unsigned long long>(wcet[driver::Config::O0Pattern]),
        static_cast<unsigned long long>(wcet[driver::Config::O1NoRegalloc]),
        static_cast<unsigned long long>(wcet[driver::Config::Verified]),
        static_cast<unsigned long long>(wcet[driver::Config::O2Full]),
        bench::fmt_pct(
            bench::pct_delta(
                static_cast<double>(wcet[driver::Config::O1NoRegalloc]), o0),
            6)
            .c_str(),
        bench::fmt_pct(
            bench::pct_delta(
                static_cast<double>(wcet[driver::Config::Verified]), o0),
            6)
            .c_str(),
        bench::fmt_pct(
            bench::pct_delta(static_cast<double>(wcet[driver::Config::O2Full]),
                             o0),
            6)
            .c_str());
  }
  bench::print_rule(100);
  std::puts(report.throughput_summary().c_str());

  std::printf("\nanalyzed %d/%zu nodes\n", analyzed, suite.size());
  std::puts("mean WCET change vs O0-pattern (mean of per-node ratios):");
  for (driver::Config config :
       {driver::Config::O1NoRegalloc, driver::Config::Verified,
        driver::Config::O2Full}) {
    const double mean = sum_ratio[config] / analyzed;
    std::printf("  %-16s %+6.1f%%\n", driver::to_string(config).c_str(),
                (mean - 1.0) * 100.0);
  }
  std::puts("\npaper (§3.3): O1-noregalloc -0.5%, CompCert/verified -12.0%, "
            "fully optimized -18.4%");
  return 0;
}
