#!/usr/bin/env sh
# Smoke-runs every bench binary on a tiny workload (--nodes=4 --jobs=2).
# Benches that take no flags ignore the arguments. Intended for the asan
# preset: `cmake --preset asan && cmake --build --preset asan -j && \
#          bench/smoke.sh build-asan/bench`
# Any arguments after the bench directory are appended to every fleet bench
# invocation — CI's asan lane passes --validate=full so the three machine
# checkers run under the sanitizers on every smoke compile.
# Exits non-zero on the first failing bench.
set -eu

dir="${1:-build/bench}"
[ $# -gt 0 ] && shift
extra="$*"
if [ ! -d "$dir" ]; then
  echo "smoke.sh: bench directory '$dir' not found (build first?)" >&2
  exit 2
fi

status=0
for b in "$dir"/bench_*; do
  [ -x "$b" ] || continue
  echo "=== smoke: $(basename "$b") ==="
  case "$(basename "$b")" in
    bench_micro)
      # google-benchmark binary: rejects foreign flags; cap iteration time.
      flags="--benchmark_min_time=0.05" ;;
    bench_service)
      # Spawns real vccd daemons (cold/warm/restart/kill-one-shard arms);
      # keep the client/shard fan-out tiny for the smoke workload.
      flags="--nodes=4 --jobs=2 --clients=2 --shards=2 $extra" ;;
    *)
      flags="--nodes=4 --jobs=2 $extra" ;;
  esac
  # shellcheck disable=SC2086  # word splitting of $flags is intended
  if ! "$b" $flags > /dev/null; then
    echo "smoke.sh: $(basename "$b") FAILED" >&2
    status=1
  fi
done

# The rv32 stanza: every fleet bench once more on the second target, so a
# backend regression cannot hide behind the ppc default. bench_micro rejects
# foreign flags and bench_crosstarget already iterates every registered
# target, so both are skipped here.
for b in "$dir"/bench_*; do
  [ -x "$b" ] || continue
  case "$(basename "$b")" in
    bench_micro|bench_crosstarget) continue ;;
    bench_service)
      flags="--nodes=4 --jobs=2 --clients=2 --shards=2 --target=rv32 $extra" ;;
    *)
      flags="--nodes=4 --jobs=2 --target=rv32 $extra" ;;
  esac
  echo "=== smoke (rv32): $(basename "$b") ==="
  # shellcheck disable=SC2086
  if ! "$b" $flags > /dev/null; then
    echo "smoke.sh: $(basename "$b") --target=rv32 FAILED" >&2
    status=1
  fi
done

# The SSA stanza: every fleet bench once more through the SSA mid-end
# (build / GVN / LICM / rotation / unrolling / out-of-SSA), so a mid-end
# regression cannot hide behind the scalar default. bench_micro rejects
# foreign flags; bench_ablation_passes carries its own SSA arms.
for b in "$dir"/bench_*; do
  [ -x "$b" ] || continue
  case "$(basename "$b")" in
    bench_micro|bench_ablation_passes) continue ;;
    bench_service)
      flags="--nodes=4 --jobs=2 --clients=2 --shards=2 --ssa $extra" ;;
    *)
      flags="--nodes=4 --jobs=2 --ssa $extra" ;;
  esac
  echo "=== smoke (ssa): $(basename "$b") ==="
  # shellcheck disable=SC2086
  if ! "$b" $flags > /dev/null; then
    echo "smoke.sh: $(basename "$b") --ssa FAILED" >&2
    status=1
  fi
done
exit $status
