#!/usr/bin/env sh
# Smoke-runs every bench binary on a tiny workload (--nodes=4 --jobs=2).
# Benches that take no flags ignore the arguments. Intended for the asan
# preset: `cmake --preset asan && cmake --build --preset asan -j && \
#          bench/smoke.sh build-asan/bench`
# Exits non-zero on the first failing bench.
set -eu

dir="${1:-build/bench}"
if [ ! -d "$dir" ]; then
  echo "smoke.sh: bench directory '$dir' not found (build first?)" >&2
  exit 2
fi

status=0
for b in "$dir"/bench_*; do
  [ -x "$b" ] || continue
  echo "=== smoke: $(basename "$b") ==="
  case "$(basename "$b")" in
    bench_micro)
      # google-benchmark binary: rejects foreign flags; cap iteration time.
      set -- --benchmark_min_time=0.05 ;;
    *)
      set -- --nodes=4 --jobs=2 ;;
  esac
  if ! "$b" "$@" > /dev/null; then
    echo "smoke.sh: $(basename "$b") FAILED" >&2
    status=1
  fi
done
exit $status
