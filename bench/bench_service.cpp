// Service-mode campaign bench: the daemonized counterpart of
// bench_cache_warm. One serial in-process run_fleet pass is the reference;
// every daemon arm must reproduce its record set byte-for-byte
// (driver::record_core_json) while the latency/cache profile changes:
//
//   cold     — fresh daemon, empty store: every job compiles cold;
//   warm     — same daemon, same jobs: the incremental memo (dependency
//              hash over source + config + pass pipeline + run params)
//              answers everything without touching the queue or the disk;
//   restart  — SIGTERM the daemon (must drain and exit 0), respawn over
//              the same store directory, resubmit: the memo is gone, the
//              persistent artifact index serves what validation allows;
//   kill     — a sharded daemon (--shards=N); one shard is SIGKILLed while
//              the campaign streams in. The supervisor must restart it and
//              resubmit its pending jobs: every job answered exactly once,
//              records still identical, shard_restarts >= 1, and the final
//              SIGTERM drain still exits 0.
//
// Percentile latencies are the daemon-observed per-job seconds from the
// replies. --report-json=FILE writes the BENCH_service.json document
// (schema vcflight-bench-service-v1). Extra flags over the shared set:
// --clients=N concurrent submitting clients (default 4), --shards=N for
// the kill arm (default 2), --vccd=PATH daemon binary override, and
// --emit-suite=DIR which just writes the generated suite as .mc files
// (the input for CI's `vcc --connect --batch` smoke) and exits.
#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

#include "bench_common.hpp"
#include "minic/printer.hpp"
#include "service/client.hpp"

#ifndef VCFLIGHT_VCCD_PATH
#define VCFLIGHT_VCCD_PATH "vccd"
#endif

using namespace vc;

namespace {

struct SuiteJob {
  std::string name;
  std::string source;
  std::string entry;
  std::uint64_t seed = 0;
};

struct ArmResult {
  std::string arm;
  double wall_seconds = 0.0;
  std::vector<double> latencies;  // daemon-reported seconds per job
  std::map<std::string, std::string> records;  // name -> core-record dump
  std::uint64_t incremental = 0, full = 0, image = 0, miss = 0;
  std::size_t protocol_errors = 0;  // ok=false replies / dead connections
  std::size_t duplicates = 0;       // same id answered twice
};

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  std::size_t index =
      static_cast<std::size_t>(p / 100.0 * static_cast<double>(values.size()));
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

/// Submits every job over `clients` concurrent pipelined connections and
/// collects the replies (arrival order is arbitrary; ids route them).
ArmResult run_arm(const std::string& arm, const std::string& socket_path,
                  const std::vector<SuiteJob>& jobs,
                  const bench::BenchFlags& flags, int clients) {
  ArmResult result;
  result.arm = arm;
  std::mutex merge_mutex;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<std::size_t> mine;
      for (std::size_t i = static_cast<std::size_t>(c); i < jobs.size();
           i += static_cast<std::size_t>(clients))
        mine.push_back(i);
      if (mine.empty()) return;
      service::ServiceClient client;
      if (!client.connect(socket_path)) {
        std::lock_guard<std::mutex> lock(merge_mutex);
        result.protocol_errors += mine.size();
        return;
      }
      for (const std::size_t i : mine) {
        service::JobRequest job;
        job.id = static_cast<std::int64_t>(i);
        job.name = jobs[i].name;
        job.source = jobs[i].source;
        job.entry = jobs[i].entry;
        job.config = driver::Config::Verified;
        job.target = flags.target;
        job.exec_cycles = 50;
        job.wcet = true;
        job.wcet_engine = flags.wcet_engine;
        job.monitor = flags.monitor;
        job.validate = flags.validate;
        job.ssa = flags.ssa;
        job.input_seed = jobs[i].seed;
        if (!client.send(service::job_to_json(job))) {
          std::lock_guard<std::mutex> lock(merge_mutex);
          result.protocol_errors += mine.size();
          return;
        }
      }
      std::map<std::int64_t, json::Value> replies;
      std::size_t dead = 0;
      for (std::size_t n = 0; n < mine.size(); ++n) {
        auto reply = client.recv();
        if (!reply) {
          dead = mine.size() - n;
          break;
        }
        const std::int64_t id = reply->at("id").as_i64(-1);
        if (!replies.emplace(id, std::move(*reply)).second) {
          std::lock_guard<std::mutex> lock(merge_mutex);
          ++result.duplicates;
        }
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      result.protocol_errors += dead;
      for (auto& [id, doc] : replies) {
        if (!doc.at("ok").as_bool(false)) {
          ++result.protocol_errors;
          continue;
        }
        const std::size_t index = static_cast<std::size_t>(id);
        result.records[jobs[index].name] = doc.at("record").dump();
        result.latencies.push_back(doc.at("seconds").as_double());
        const std::string cache = doc.at("cache").as_string("miss");
        if (cache == "incremental")
          ++result.incremental;
        else if (cache == "full")
          ++result.full;
        else if (cache == "image")
          ++result.image;
        else
          ++result.miss;
      }
    });
  }
  for (auto& t : threads) t.join();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

json::Value query_status(const std::string& socket_path) {
  service::ServiceClient client;
  if (!client.connect(socket_path)) return {};
  json::Value request;
  request["op"] = json::Value("status");
  const auto reply = client.call(request);
  if (!reply) return {};
  return reply->at("status");
}

}  // namespace

int main(int argc, char** argv) {
  // Bench-specific flags, stripped before the shared parser sees argv.
  int clients = 4;
  int shards = 2;
  std::string vccd_path = VCFLIGHT_VCCD_PATH;
  std::string emit_suite;
  std::vector<char*> pass_argv{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--clients=", 0) == 0) {
      clients = std::atoi(arg.c_str() + 10);
      if (clients < 1 || clients > 64) {
        std::fprintf(stderr, "bench_service: bad --clients value\n");
        return 2;
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      shards = std::atoi(arg.c_str() + 9);
      if (shards < 1 || shards > 16) {
        std::fprintf(stderr, "bench_service: bad --shards value\n");
        return 2;
      }
    } else if (arg.rfind("--vccd=", 0) == 0) {
      vccd_path = arg.substr(7);
    } else if (arg.rfind("--emit-suite=", 0) == 0) {
      emit_suite = arg.substr(13);
    } else {
      pass_argv.push_back(argv[i]);
    }
  }
  const bench::BenchFlags flags = bench::parse_bench_flags(
      static_cast<int>(pass_argv.size()), pass_argv.data(), "bench_service");
  const int nodes = flags.nodes > 0 ? flags.nodes : 40;

  std::vector<bench::NodeBundle> suite = bench::make_suite(nodes);
  suite.push_back(bench::pitch_law());
  std::vector<SuiteJob> jobs;
  jobs.reserve(suite.size());
  for (std::size_t i = 0; i < suite.size(); ++i) {
    SuiteJob job;
    job.name = suite[i].node.name();
    job.source = minic::print_program(suite[i].program);
    job.entry = suite[i].step_fn;
    job.seed = driver::fleet_job_seed(7, i);
    jobs.push_back(std::move(job));
  }

  if (!emit_suite.empty()) {
    std::filesystem::create_directories(emit_suite);
    for (const SuiteJob& job : jobs) {
      std::ofstream out(std::filesystem::path(emit_suite) /
                        (job.name + ".mc"));
      out << job.source;
    }
    std::printf("bench_service: wrote %zu .mc files to %s\n", jobs.size(),
                emit_suite.c_str());
    return 0;
  }

  // The wire protocol carries --ssa but not --disable-pass; a flag the
  // daemon arms would silently drop must be rejected, not half-applied.
  if (!flags.disable_passes.empty()) {
    std::fprintf(stderr,
                 "bench_service: --disable-pass is not supported in service "
                 "mode (the job protocol does not carry it)\n");
    return 2;
  }

  std::puts("=== vccd service campaign: daemon arms vs serial reference ===");
  std::printf("workload: %zu jobs (compile + 50 cycles + WCET), %d "
              "client(s), kill arm over %d shard(s)\n\n",
              jobs.size(), clients, shards);

  // --- serial in-process reference --------------------------------------
  std::vector<driver::FleetUnit> units;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    driver::FleetUnit unit;
    unit.name = suite[i].node.name();
    unit.program = &suite[i].program;
    unit.entry = suite[i].step_fn;
    unit.input_seed = jobs[i].seed;
    units.push_back(std::move(unit));
  }
  driver::FleetOptions ref_options;
  ref_options.target = flags.target;
  ref_options.jobs = 1;
  ref_options.configs = {driver::Config::Verified};
  ref_options.exec_cycles = 50;
  ref_options.wcet = true;
  ref_options.wcet_engine = flags.wcet_engine;
  ref_options.monitor = flags.monitor;
  bench::attach_pipeline_flags(&ref_options, flags);
  bench::attach_validation(&ref_options, flags.validate);
  const driver::FleetReport reference = driver::run_fleet(units, ref_options);
  std::map<std::string, std::string> ref_records;
  std::uint64_t ref_certified = 0;
  std::size_t ref_failures = 0;
  for (const driver::FleetRecord& r : reference.records) {
    ref_records[r.name] = driver::record_core_json(r).dump();
    if (r.wcet_ipet_certified) ++ref_certified;
    if (!r.ok) ++ref_failures;
  }
  std::printf("serial reference: %zu records in %.2fs (%zu failures, %llu "
              "certified)\n\n",
              reference.records.size(), reference.wall_seconds, ref_failures,
              static_cast<unsigned long long>(ref_certified));

  // --- daemon arms -------------------------------------------------------
  const std::filesystem::path scratch =
      std::filesystem::temp_directory_path() / "vcflight-bench-service";
  std::filesystem::remove_all(scratch);
  std::filesystem::create_directories(scratch);
  const std::string socket_path = (scratch / "vccd.sock").string();
  const std::string cache_dir = (scratch / "store").string();
  std::vector<std::string> daemon_args{"--socket=" + socket_path,
                                       "--cache-dir=" + cache_dir};
  if (flags.jobs > 0)
    daemon_args.push_back("--jobs=" + std::to_string(flags.jobs));

  bool failed = false;
  const auto check_arm = [&](const ArmResult& arm) {
    const bool match = arm.records == ref_records;
    std::uint64_t certified = 0;
    for (const auto& [name, dump] : arm.records)
      if (dump.find("\"wcet_ipet_certified\":true") != std::string::npos)
        ++certified;
    std::printf("%-8s %8.2fs  p50 %8.2fms  p99 %8.2fms  "
                "inc/full/image/miss %llu/%llu/%llu/%llu  %s\n",
                arm.arm.c_str(), arm.wall_seconds,
                percentile(arm.latencies, 50.0) * 1000.0,
                percentile(arm.latencies, 99.0) * 1000.0,
                static_cast<unsigned long long>(arm.incremental),
                static_cast<unsigned long long>(arm.full),
                static_cast<unsigned long long>(arm.image),
                static_cast<unsigned long long>(arm.miss),
                match ? "records=IDENTICAL" : "records=MISMATCH");
    if (!match || arm.protocol_errors != 0 || arm.duplicates != 0 ||
        certified != ref_certified) {
      std::fprintf(stderr,
                   "bench_service: arm '%s' FAILED (match=%d errors=%zu "
                   "dups=%zu certified=%llu/%llu)\n",
                   arm.arm.c_str(), match ? 1 : 0, arm.protocol_errors,
                   arm.duplicates, static_cast<unsigned long long>(certified),
                   static_cast<unsigned long long>(ref_certified));
      failed = true;
    }
  };

  pid_t daemon = service::spawn_daemon(vccd_path, daemon_args);
  if (daemon <= 0 || !service::wait_until_ready(socket_path, 30.0)) {
    std::fprintf(stderr, "bench_service: cannot start %s\n",
                 vccd_path.c_str());
    return 1;
  }
  const ArmResult cold = run_arm("cold", socket_path, jobs, flags, clients);
  check_arm(cold);
  const ArmResult warm = run_arm("warm", socket_path, jobs, flags, clients);
  check_arm(warm);
  if (warm.incremental != jobs.size()) {
    std::fprintf(stderr,
                 "bench_service: warm arm must be all incremental hits "
                 "(%llu/%zu)\n",
                 static_cast<unsigned long long>(warm.incremental),
                 jobs.size());
    failed = true;
  }

  // Restart: graceful drain must exit 0; the respawned daemon rebuilds the
  // store index from disk (the in-memory memo does not survive).
  const int drain1 = service::terminate_daemon(daemon, 30.0);
  if (drain1 != 0) {
    std::fprintf(stderr, "bench_service: SIGTERM drain exited %d (want 0)\n",
                 drain1);
    failed = true;
  }
  daemon = service::spawn_daemon(vccd_path, daemon_args);
  if (daemon <= 0 || !service::wait_until_ready(socket_path, 30.0)) {
    std::fprintf(stderr, "bench_service: cannot restart daemon\n");
    return 1;
  }
  const ArmResult restart =
      run_arm("restart", socket_path, jobs, flags, clients);
  check_arm(restart);
  const int drain2 = service::terminate_daemon(daemon, 30.0);
  if (drain2 != 0) {
    std::fprintf(stderr, "bench_service: restart drain exited %d (want 0)\n",
                 drain2);
    failed = true;
  }

  // Kill-one-shard: a sharded daemon loses one worker mid-campaign. The
  // supervisor must respawn it and resubmit; no job lost or duplicated.
  std::vector<std::string> shard_args = daemon_args;
  shard_args.push_back("--shards=" + std::to_string(shards));
  daemon = service::spawn_daemon(vccd_path, shard_args);
  if (daemon <= 0 || !service::wait_until_ready(socket_path, 30.0)) {
    std::fprintf(stderr, "bench_service: cannot start sharded daemon\n");
    return 1;
  }
  const json::Value before = query_status(socket_path);
  std::atomic<bool> kill_done{false};
  std::thread killer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const auto& list = before.at("shard_list").as_array();
    if (!list.empty()) {
      const pid_t victim =
          static_cast<pid_t>(list.front().at("pid").as_i64());
      if (victim > 0) ::kill(victim, SIGKILL);
    }
    kill_done.store(true);
  });
  const ArmResult kill = run_arm("kill", socket_path, jobs, flags, clients);
  killer.join();
  check_arm(kill);
  // The respawn may still be settling; poll for the restart counter.
  std::uint64_t restarts = 0;
  for (int i = 0; i < 100; ++i) {
    restarts = query_status(socket_path).at("shard_restarts").as_u64();
    if (restarts >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (restarts < 1) {
    std::fprintf(stderr,
                 "bench_service: supervisor recorded no shard restart\n");
    failed = true;
  }
  const int drain3 = service::terminate_daemon(daemon, 60.0);
  if (drain3 != 0) {
    std::fprintf(stderr, "bench_service: sharded drain exited %d (want 0)\n",
                 drain3);
    failed = true;
  }

  const double cold_p50 = percentile(cold.latencies, 50.0);
  const double warm_p50 = percentile(warm.latencies, 50.0);
  bench::print_rule(78);
  std::printf("warm p50 / cold p50 = %.4f (want <= 0.1)\n",
              cold_p50 > 0.0 ? warm_p50 / cold_p50 : 0.0);
  std::printf("shard restarts observed: %llu\n",
              static_cast<unsigned long long>(restarts));
  if (cold_p50 > 0.0 && warm_p50 > cold_p50 * 0.1) {
    std::fprintf(stderr,
                 "bench_service: warm p50 %.4fms not <= 1/10 of cold p50 "
                 "%.4fms\n",
                 warm_p50 * 1000.0, cold_p50 * 1000.0);
    failed = true;
  }

  if (!flags.report_json.empty()) {
    json::Value doc;
    doc["schema"] = json::Value("vcflight-bench-service-v1");
    doc["jobs"] = json::Value(static_cast<std::uint64_t>(jobs.size()));
    doc["clients"] = json::Value(static_cast<std::int64_t>(clients));
    doc["shards"] = json::Value(static_cast<std::int64_t>(shards));
    doc["wcet_engine"] = json::Value(wcet::to_string(flags.wcet_engine));
    doc["validate"] = json::Value(driver::to_string(flags.validate));
    doc["monitor"] = json::Value(machine::to_string(flags.monitor));
    doc["reference_wall_seconds"] = json::Value(reference.wall_seconds);
    doc["reference_certified"] = json::Value(ref_certified);
    doc["warm_p50_over_cold_p50"] =
        json::Value(cold_p50 > 0.0 ? warm_p50 / cold_p50 : 0.0);
    doc["shard_restarts"] = json::Value(restarts);
    json::Value arms;
    for (const ArmResult* arm : {&cold, &warm, &restart, &kill}) {
      json::Value entry;
      entry["wall_seconds"] = json::Value(arm->wall_seconds);
      entry["jobs"] =
          json::Value(static_cast<std::uint64_t>(arm->records.size()));
      entry["p50_ms"] = json::Value(percentile(arm->latencies, 50.0) * 1e3);
      entry["p99_ms"] = json::Value(percentile(arm->latencies, 99.0) * 1e3);
      entry["incremental_hits"] = json::Value(arm->incremental);
      entry["full_hits"] = json::Value(arm->full);
      entry["image_hits"] = json::Value(arm->image);
      entry["misses"] = json::Value(arm->miss);
      entry["records_match"] = json::Value(arm->records == ref_records);
      arms[arm->arm] = std::move(entry);
    }
    doc["arms"] = std::move(arms);
    std::ofstream out(flags.report_json);
    out << doc.dump(2) << "\n";
    std::fprintf(stderr, "bench_service: wrote %s\n",
                 flags.report_json.c_str());
  }

  std::filesystem::remove_all(scratch);
  if (failed) {
    std::fputs("bench_service: FAILED\n", stderr);
    return 1;
  }
  std::puts("bench_service: all arms byte-identical to the serial reference");
  return 0;
}
