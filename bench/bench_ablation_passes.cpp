// Ablation of the verified configuration's optimizations (DESIGN.md):
// contribution of each pass to the WCET gain. The paper's §3.3 emphasises
// that "a good register allocation" carries most of the improvement and that
// other optimizations are hampered without it — this bench quantifies that
// claim on our suite.
//
// Every arm is expressed through the pass framework's own ablation surface:
// the verified configuration with CompileOptions::disable_passes removing one
// pass (exactly what `vcc --disable-pass=NAME` wires up), plus the O1 and O0
// configurations as the no-regalloc / no-anything endpoints. There is no
// hand-rolled pipeline here — the bench measures the pipelines users can
// actually select.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "wcet/wcet.hpp"

using namespace vc;

namespace {

struct Arm {
  const char* label;
  driver::Config config;
  std::vector<std::string> disable;  // --disable-pass list for this arm
  bool ssa = false;                  // run the arm with --ssa
};

const std::vector<Arm>& arms() {
  static const std::vector<Arm> kArms = {
      {"verified (all passes)", driver::Config::Verified, {}},
      {"  - constprop", driver::Config::Verified, {"constprop"}},
      {"  - cse", driver::Config::Verified, {"cse"}},
      {"  - forwarding", driver::Config::Verified, {"forward"}},
      {"  - dce", driver::Config::Verified, {"dce"}},
      {"  - deadstore", driver::Config::Verified, {"deadstore"}},
      {"  - tunnel", driver::Config::Verified, {"tunnel"}},
      {"  - regalloc (= O1 config)", driver::Config::O1NoRegalloc, {}},
      {"  - everything (= O0 config)", driver::Config::O0Pattern, {}},
      // SSA bracket arms: the full bracket, then the bracket minus one SSA
      // optimization each — quantifying what GVN / LICM / rotation /
      // annotated unrolling individually buy on top of the scalar pipeline.
      {"verified --ssa (full bracket)", driver::Config::Verified, {}, true},
      {"  - ssa-gvn", driver::Config::Verified, {"ssa-gvn"}, true},
      {"  - ssa-licm", driver::Config::Verified, {"ssa-licm"}, true},
      {"  - ssa-rotate", driver::Config::Verified, {"ssa-rotate"}, true},
      {"  - ssa-unroll", driver::Config::Verified, {"ssa-unroll"}, true},
  };
  return kArms;
}

std::uint64_t wcet_of_arm(const bench::NodeBundle& bundle, const Arm& arm,
                          const std::string& target, wcet::WcetEngine engine) {
  driver::CompileOptions copts;
  copts.target = target;
  copts.disable_passes = arm.disable;
  copts.ssa = arm.ssa;
  const driver::Compiled compiled =
      driver::compile_program(bundle.program, arm.config, copts);
  wcet::WcetOptions wopts;
  wopts.engine = engine;
  return wcet::analyze_wcet(compiled.image, bundle.step_fn, wopts).wcet_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags =
      bench::parse_bench_flags(argc, argv, "bench_ablation_passes");
  const int n_nodes = flags.nodes > 0 ? flags.nodes : 24;
  std::puts("=== Ablation: contribution of each verified-pipeline pass to "
            "the WCET gain ===");
  std::printf("workload: %d generated nodes, seed 20110318; baseline = full "
              "verified pipeline;\narms built with --disable-pass over the "
              "verified configuration\n\n", n_nodes);

  const std::vector<bench::NodeBundle> suite = bench::make_suite(n_nodes);

  std::map<std::string, double> ratio_sum;
  std::map<std::string, std::uint64_t> example;
  for (const auto& bundle : suite) {
    const std::uint64_t full =
        wcet_of_arm(bundle, arms().front(), flags.target, flags.wcet_engine);
    for (const Arm& arm : arms()) {
      const std::uint64_t w =
          wcet_of_arm(bundle, arm, flags.target, flags.wcet_engine);
      ratio_sum[arm.label] +=
          static_cast<double>(w) / static_cast<double>(full);
      if (bundle.node.name() == "node0") example[arm.label] = w;
    }
  }

  std::printf("%-30s %16s %18s\n", "variant", "node0 WCET",
              "mean WCET vs full");
  bench::print_rule(68);
  for (const Arm& arm : arms()) {
    std::printf("%-30s %16llu %+17.1f%%\n", arm.label,
                static_cast<unsigned long long>(example[arm.label]),
                (ratio_sum[arm.label] / static_cast<double>(suite.size()) -
                 1.0) *
                    100.0);
  }
  bench::print_rule(68);
  std::puts("\nexpected: removing register allocation dominates every other "
            "ablation (paper §3.3:\n\"the importance of a good register "
            "allocation and how other optimizations are\nhampered without "
            "it\").");
  return 0;
}
