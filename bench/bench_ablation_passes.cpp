// Ablation of the verified configuration's optimizations (DESIGN.md):
// contribution of each pass to the WCET gain. The paper's §3.3 emphasises
// that "a good register allocation" carries most of the improvement and that
// other optimizations are hampered without it — this bench quantifies that
// claim on our suite by rebuilding the verified pipeline with pieces removed.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "opt/opt.hpp"
#include "regalloc/regalloc.hpp"
#include "rtl/analysis.hpp"
#include "rtl/lower.hpp"
#include "wcet/wcet.hpp"

using namespace vc;

namespace {

enum class Variant {
  Full,          // constprop + cse + forward + dce + deadstore + regalloc
  NoConstprop,
  NoCse,
  NoForward,     // without store-to-load forwarding
  NoDce,
  NoDeadstore,   // without dead-store elimination
  NoRegalloc,    // value lowering but pattern-style: impossible — instead:
                 // pattern lowering + all RTL passes (the paper's O1)
  NothingAtAll,  // pattern lowering, no passes (the paper's O0)
};

const char* name_of(Variant v) {
  switch (v) {
    case Variant::Full: return "verified (all passes)";
    case Variant::NoConstprop: return "  - constprop";
    case Variant::NoCse: return "  - cse";
    case Variant::NoForward: return "  - forwarding";
    case Variant::NoDce: return "  - dce";
    case Variant::NoDeadstore: return "  - deadstore";
    case Variant::NoRegalloc: return "  - regalloc (pattern+opts)";
    case Variant::NothingAtAll: return "  - everything (pattern)";
  }
  return "?";
}

std::uint64_t wcet_of_variant(const bench::NodeBundle& bundle, Variant v) {
  const bool pattern =
      v == Variant::NoRegalloc || v == Variant::NothingAtAll;
  ppc::DataLayout layout(bundle.program);
  std::vector<ppc::MachineFunction> machine_fns;
  for (const auto& src : bundle.program.functions) {
    rtl::Function fn = rtl::lower_function(
        bundle.program, src,
        pattern ? rtl::LowerMode::PatternStack : rtl::LowerMode::Value);
    rtl::remove_unreachable_blocks(fn);
    if (v != Variant::NothingAtAll) {
      // The memory passes assume value lowering (pattern mode keeps its
      // per-symbol load/store discipline), matching the driver's gating.
      const bool memory_opts = !pattern;
      for (int round = 0; round < 4; ++round) {
        bool changed = false;
        if (v != Variant::NoConstprop) changed |= opt::constant_propagation(fn);
        if (v != Variant::NoCse)
          changed |= opt::common_subexpression_elimination(fn);
        if (memory_opts && v != Variant::NoForward)
          changed |= opt::memory_forwarding(fn);
        if (v != Variant::NoDce) changed |= opt::dead_code_elimination(fn);
        if (memory_opts && v != Variant::NoDeadstore)
          changed |= opt::dead_store_elimination(fn);
        if (!changed) break;
      }
    }
    const regalloc::Allocation alloc = regalloc::allocate_registers(
        fn, ppc::kAllocatableGprs, ppc::kAllocatableFprs);
    ppc::EmitOptions options;
    options.small_data_area = pattern;  // verified variants: no SDA
    ppc::AsmFunction asm_fn = ppc::emit_function(fn, alloc, layout, options);
    ppc::remove_self_moves(asm_fn);
    machine_fns.push_back(ppc::finalize(asm_fn));
  }
  const ppc::Image image = ppc::link(machine_fns, layout);
  return wcet::analyze_wcet(image, bundle.step_fn).wcet_cycles;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags =
      bench::parse_bench_flags(argc, argv, "bench_ablation_passes");
  const int n_nodes = flags.nodes > 0 ? flags.nodes : 24;
  std::puts("=== Ablation: contribution of each verified-pipeline pass to "
            "the WCET gain ===");
  std::printf("workload: %d generated nodes, seed 20110318; baseline = full "
              "verified pipeline\n\n", n_nodes);

  const std::vector<bench::NodeBundle> suite = bench::make_suite(n_nodes);
  const Variant variants[] = {Variant::Full,      Variant::NoConstprop,
                              Variant::NoCse,     Variant::NoForward,
                              Variant::NoDce,     Variant::NoDeadstore,
                              Variant::NoRegalloc, Variant::NothingAtAll};

  std::map<Variant, double> ratio_sum;
  std::map<Variant, std::uint64_t> example;
  for (const auto& bundle : suite) {
    const std::uint64_t full = wcet_of_variant(bundle, Variant::Full);
    for (Variant v : variants) {
      const std::uint64_t w = wcet_of_variant(bundle, v);
      ratio_sum[v] += static_cast<double>(w) / static_cast<double>(full);
      if (bundle.node.name() == "node0") example[v] = w;
    }
  }

  std::printf("%-30s %16s %18s\n", "variant", "node0 WCET",
              "mean WCET vs full");
  bench::print_rule(68);
  for (Variant v : variants) {
    std::printf("%-30s %16llu %+17.1f%%\n", name_of(v),
                static_cast<unsigned long long>(example[v]),
                (ratio_sum[v] / static_cast<double>(suite.size()) - 1.0) *
                    100.0);
  }
  bench::print_rule(68);
  std::puts("\nexpected: removing register allocation dominates every other "
            "ablation (paper §3.3:\n\"the importance of a good register "
            "allocation and how other optimizations are\nhampered without "
            "it\").");
  return 0;
}
