// WCET bound quality: static bound vs highest observed execution time on the
// cycle-level simulator (the bound/observed ratio aiT users care about), and
// the contribution of the cache analysis (must + persistence) to tightness.
// Also doubles as a large-scale soundness sweep: any observed run exceeding
// its bound is reported as UNSOUND.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "wcet/wcet.hpp"

using namespace vc;

int main() {
  std::puts("=== WCET bound tightness: bound / max observed cycles ===");
  std::puts("workload: 24 generated nodes, 30 runs each with cold caches, "
            "seed 20110318\n");

  const std::vector<bench::NodeBundle> suite = bench::make_suite(24);

  std::map<driver::Config, double> ratio_sum;
  std::map<driver::Config, double> ratio_nocache_sum;
  int unsound = 0;

  for (const auto& bundle : suite) {
    for (driver::Config config : driver::kAllConfigs) {
      const driver::Compiled compiled =
          driver::compile_program(bundle.program, config);
      const std::uint64_t bound =
          wcet::analyze_wcet(compiled.image, bundle.step_fn).wcet_cycles;
      wcet::WcetOptions nocache;
      nocache.cache_analysis = false;
      const std::uint64_t bound_nocache =
          wcet::analyze_wcet(compiled.image, bundle.step_fn, nocache)
              .wcet_cycles;

      machine::Machine m(compiled.image);
      const minic::Function* fn =
          bundle.program.find_function(bundle.step_fn);
      Rng rng(5150);
      std::uint64_t observed_max = 0;
      for (int run = 0; run < 30; ++run) {
        m.clear_caches();  // unknown initial cache state, like the analysis
        std::vector<minic::Value> args;
        for (const auto& p : fn->params) {
          args.push_back(p.type == minic::Type::F64
                             ? minic::Value::of_f64(rng.next_double(-25, 25))
                             : minic::Value::of_i32(static_cast<std::int32_t>(
                                   rng.next_range(-2, 2))));
        }
        m.call(bundle.step_fn, args, minic::Type::I32);
        observed_max = std::max(observed_max, m.stats().cycles);
        if (m.stats().cycles > bound) {
          ++unsound;
          std::printf("UNSOUND: %s %s observed %llu > bound %llu\n",
                      bundle.node.name().c_str(),
                      driver::to_string(config).c_str(),
                      static_cast<unsigned long long>(m.stats().cycles),
                      static_cast<unsigned long long>(bound));
        }
      }
      ratio_sum[config] +=
          static_cast<double>(bound) / static_cast<double>(observed_max);
      ratio_nocache_sum[config] += static_cast<double>(bound_nocache) /
                                   static_cast<double>(observed_max);
    }
  }

  std::printf("%-16s %26s %30s\n", "configuration",
              "mean bound/observed (cache)", "mean bound/observed (no cache)");
  bench::print_rule(76);
  for (driver::Config config : driver::kAllConfigs) {
    std::printf("%-16s %26.2f %30.2f\n", driver::to_string(config).c_str(),
                ratio_sum[config] / static_cast<double>(suite.size()),
                ratio_nocache_sum[config] / static_cast<double>(suite.size()));
  }
  bench::print_rule(76);
  std::printf("\nsoundness violations: %d (must be 0)\n", unsound);
  std::puts("expected: ratios modestly above 1 with cache analysis; several "
            "times larger without it\n(every access then pays the full miss "
            "penalty on every execution).");
  return unsound == 0 ? 0 : 1;
}
