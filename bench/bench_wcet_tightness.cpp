// WCET bound quality: static bound vs highest observed execution time on the
// cycle-level simulator (the bound/observed ratio aiT users care about), and
// the contribution of the cache analysis (must + persistence) to tightness.
// Also doubles as a large-scale soundness sweep: any node whose observed
// maximum exceeds its bound is reported as UNSOUND.
//
// The per-(node, config) chains — compile, 30 cold-cache runs, bound with
// and without cache analysis — run through the fleet runner; --jobs=N sets
// the worker count and --nodes=N scales the generated suite.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace vc;

int main(int argc, char** argv) {
  const bench::BenchFlags flags =
      bench::parse_bench_flags(argc, argv, "bench_wcet_tightness");
  const int nodes = flags.nodes > 0 ? flags.nodes : 24;

  std::puts("=== WCET bound tightness: bound / max observed cycles ===");
  std::printf("workload: %d generated nodes, 30 runs each with cold caches, "
              "seed 20110318\n\n", nodes);

  const std::vector<bench::NodeBundle> suite = bench::make_suite(nodes);

  const auto store = bench::open_bench_store(flags);
  driver::FleetOptions options;
  options.target = flags.target;
  options.jobs = flags.jobs;
  options.exec_cycles = 30;
  options.cold_caches = true;  // unknown initial cache state, like the analysis
  options.wcet = true;
  options.wcet_nocache = true;
  options.wcet_engine = flags.wcet_engine;
  options.monitor = flags.monitor;
  options.suite_seed = 5150;
  options.store = store.get();
  bench::attach_pipeline_flags(&options, flags);
  bench::attach_validation(&options, flags.validate);
  const driver::FleetReport report =
      driver::run_fleet(bench::to_fleet_units(suite), options);
  bench::write_bench_report(report, flags, "bench_wcet_tightness");

  std::map<driver::Config, double> ratio_sum;
  std::map<driver::Config, double> ratio_nocache_sum;
  std::map<driver::Config, double> ratio_ipet_sum;
  int unsound = 0;
  int uncertified = 0;
  int ipet_records = 0;

  for (const driver::FleetRecord& r : report.records) {
    if (!r.ok) {
      std::printf("%-10s failed (%s): %s\n", r.name.c_str(),
                  driver::to_string(r.config).c_str(), r.error.c_str());
      continue;
    }
    if (r.observed_max_cycles > r.wcet_cycles) {
      ++unsound;
      std::printf("UNSOUND: %s %s observed %llu > bound %llu\n",
                  r.name.c_str(), driver::to_string(r.config).c_str(),
                  static_cast<unsigned long long>(r.observed_max_cycles),
                  static_cast<unsigned long long>(r.wcet_cycles));
    }
    // The IPET bound must be independently sound and certificate-verified.
    if (r.wcet_ipet_cycles > 0) {
      ++ipet_records;
      if (!r.wcet_ipet_certified) {
        ++uncertified;
        std::printf("UNCERTIFIED: %s %s ipet bound lacks a verified "
                    "certificate\n",
                    r.name.c_str(), driver::to_string(r.config).c_str());
      }
      if (r.observed_max_cycles > r.wcet_ipet_cycles) {
        ++unsound;
        std::printf("UNSOUND: %s %s observed %llu > ipet bound %llu\n",
                    r.name.c_str(), driver::to_string(r.config).c_str(),
                    static_cast<unsigned long long>(r.observed_max_cycles),
                    static_cast<unsigned long long>(r.wcet_ipet_cycles));
      }
      ratio_ipet_sum[r.config] += static_cast<double>(r.wcet_ipet_cycles) /
                                  static_cast<double>(r.observed_max_cycles);
    }
    ratio_sum[r.config] += static_cast<double>(r.wcet_cycles) /
                           static_cast<double>(r.observed_max_cycles);
    ratio_nocache_sum[r.config] += static_cast<double>(r.wcet_nocache_cycles) /
                                   static_cast<double>(r.observed_max_cycles);
  }

  const bool with_ipet = ipet_records > 0;
  std::printf("%-16s %26s %30s%s\n", "configuration",
              "mean bound/observed (cache)", "mean bound/observed (no cache)",
              with_ipet ? "        mean ipet/observed" : "");
  bench::print_rule(with_ipet ? 102 : 76);
  for (driver::Config config : driver::kAllConfigs) {
    std::printf("%-16s %26.2f %30.2f", driver::to_string(config).c_str(),
                ratio_sum[config] / static_cast<double>(suite.size()),
                ratio_nocache_sum[config] / static_cast<double>(suite.size()));
    if (with_ipet)
      std::printf(" %25.2f",
                  ratio_ipet_sum[config] / static_cast<double>(suite.size()));
    std::printf("\n");
  }
  bench::print_rule(with_ipet ? 102 : 76);
  std::puts(report.throughput_summary().c_str());
  std::printf("\nsoundness violations: %d (must be 0)\n", unsound);
  if (with_ipet)
    std::printf("ipet bounds: %d, certificate failures: %d (must be 0)\n",
                ipet_records, uncertified);
  std::puts("expected: ratios modestly above 1 with cache analysis; several "
            "times larger without it\n(every access then pays the full miss "
            "penalty on every execution).");
  return (unsound == 0 && uncertified == 0) ? 0 : 1;
}
