// Reproduces Table 1 of the paper: variation in data-cache reads, data-cache
// writes and code size for each compiler configuration, relative to the
// non-optimized default compiler (O0-pattern).
//
// Paper reference values (CompCert vs non-optimized default):
//   cache reads  -76%,  cache writes  -65%,  code size  -26%.
// The other configurations bracket it: "optimized without register
// allocation" changes little; "fully optimized" is comparable to CompCert.
//
// All (node, config) chains run through the fleet runner; --jobs=N sets the
// worker count and --nodes=N scales the generated suite up to the paper's
// full ~2500 ACG files (--nodes=2500). --cache-dir=DIR attaches the
// content-addressed artifact store (warm reruns replay cached results) and
// --report-json=FILE emits the full record array as JSON.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace vc;
using bench::NodeBundle;

namespace {

struct Totals {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t code_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags =
      bench::parse_bench_flags(argc, argv, "bench_table1");
  const int nodes = flags.nodes > 0 ? flags.nodes : 40;

  std::puts("=== Table 1: memory accesses and code size vs non-optimized "
            "default compiler ===");
  std::printf("workload: %d generated nodes + pitch-axis law, 50 cycles "
              "each, seed 20110318\n\n", nodes);

  std::vector<NodeBundle> suite = bench::make_suite(nodes);
  suite.push_back(bench::pitch_law());

  const auto store = bench::open_bench_store(flags);
  driver::FleetOptions options;
  options.target = flags.target;
  options.jobs = flags.jobs;
  options.exec_cycles = 50;
  options.store = store.get();
  bench::attach_pipeline_flags(&options, flags);
  bench::attach_validation(&options, flags.validate);
  const driver::FleetReport report =
      driver::run_fleet(bench::to_fleet_units(suite), options);
  bench::write_bench_report(report, flags, "bench_table1");

  std::map<driver::Config, Totals> totals;
  for (const driver::FleetRecord& r : report.records) {
    if (!r.ok) {
      std::printf("%-10s failed (%s): %s\n", r.name.c_str(),
                  driver::to_string(r.config).c_str(), r.error.c_str());
      continue;
    }
    totals[r.config].reads += r.exec.dcache_reads;
    totals[r.config].writes += r.exec.dcache_writes;
    totals[r.config].code_bytes += r.code_bytes;
  }

  const Totals& ref = totals[driver::Config::O0Pattern];
  std::printf("%-16s %14s %14s %12s %9s %9s %9s\n", "configuration",
              "dcache reads", "dcache writes", "code bytes", "d-reads",
              "d-writes", "size");
  bench::print_rule(92);
  for (driver::Config config : driver::kAllConfigs) {
    const Totals& t = totals[config];
    std::printf("%-16s %14llu %14llu %12llu %s %s %s\n",
                driver::to_string(config).c_str(),
                static_cast<unsigned long long>(t.reads),
                static_cast<unsigned long long>(t.writes),
                static_cast<unsigned long long>(t.code_bytes),
                bench::fmt_pct(bench::pct_delta(static_cast<double>(t.reads),
                                                static_cast<double>(ref.reads)))
                    .c_str(),
                bench::fmt_pct(
                    bench::pct_delta(static_cast<double>(t.writes),
                                     static_cast<double>(ref.writes)))
                    .c_str(),
                bench::fmt_pct(
                    bench::pct_delta(static_cast<double>(t.code_bytes),
                                     static_cast<double>(ref.code_bytes)))
                    .c_str());
  }
  bench::print_rule(92);
  std::puts(report.throughput_summary().c_str());
  std::puts("\npaper (CompCert ~ 'verified' row):  reads -76%, writes -65%, "
            "code size -26%");
  std::puts("expected shape: 'O1-noregalloc' changes little; 'verified' and "
            "'O2-full' remove most stack traffic.");
  return 0;
}
