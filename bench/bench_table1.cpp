// Reproduces Table 1 of the paper: variation in data-cache reads, data-cache
// writes and code size for each compiler configuration, relative to the
// non-optimized default compiler (O0-pattern).
//
// Paper reference values (CompCert vs non-optimized default):
//   cache reads  -76%,  cache writes  -65%,  code size  -26%.
// The other configurations bracket it: "optimized without register
// allocation" changes little; "fully optimized" is comparable to CompCert.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace vc;
using bench::NodeBundle;

namespace {

struct Totals {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t code_bytes = 0;
};

}  // namespace

int main() {
  std::puts("=== Table 1: memory accesses and code size vs non-optimized "
            "default compiler ===");
  std::puts("workload: 40 generated nodes + pitch-axis law, 50 cycles each, "
            "seed 20110318\n");

  std::vector<NodeBundle> suite = bench::make_suite();
  suite.push_back(bench::pitch_law());

  std::map<driver::Config, Totals> totals;
  for (driver::Config config : driver::kAllConfigs) {
    for (const NodeBundle& bundle : suite) {
      const driver::Compiled compiled =
          driver::compile_program(bundle.program, config);
      machine::Machine m(compiled.image);
      const machine::ExecStats stats = bench::exercise(m, bundle, 50, 7);
      totals[config].reads += stats.dcache_reads;
      totals[config].writes += stats.dcache_writes;
      totals[config].code_bytes += compiled.image.code_size_of(bundle.step_fn);
    }
  }

  const Totals& ref = totals[driver::Config::O0Pattern];
  std::printf("%-16s %14s %14s %12s %9s %9s %9s\n", "configuration",
              "dcache reads", "dcache writes", "code bytes", "d-reads",
              "d-writes", "size");
  bench::print_rule(92);
  for (driver::Config config : driver::kAllConfigs) {
    const Totals& t = totals[config];
    std::printf("%-16s %14llu %14llu %12llu %+8.1f%% %+8.1f%% %+8.1f%%\n",
                driver::to_string(config).c_str(),
                static_cast<unsigned long long>(t.reads),
                static_cast<unsigned long long>(t.writes),
                static_cast<unsigned long long>(t.code_bytes),
                bench::pct_delta(static_cast<double>(t.reads),
                                 static_cast<double>(ref.reads)),
                bench::pct_delta(static_cast<double>(t.writes),
                                 static_cast<double>(ref.writes)),
                bench::pct_delta(static_cast<double>(t.code_bytes),
                                 static_cast<double>(ref.code_bytes)));
  }
  bench::print_rule(92);
  std::puts("\npaper (CompCert ~ 'verified' row):  reads -76%, writes -65%, "
            "code size -26%");
  std::puts("expected shape: 'O1-noregalloc' changes little; 'verified' and "
            "'O2-full' remove most stack traffic.");
  return 0;
}
