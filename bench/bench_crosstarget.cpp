// Cross-target WCET tightness: the same generated campaign compiled,
// executed, analyzed and fully monitored for every registered target, side
// by side. The per-target tightness (static bound / max observed cycles on
// that target's own timing model) shows how much of the bound quality is
// analysis and how much is ISA: the analyses are shared code, so the ratios
// should land in the same band on both machines.
//
// Doubles as the cross-target soundness gate: a record whose observed
// maximum exceeds its bound, an unverified IPET certificate, or a monitor
// violation on either target fails the bench. With --report-json the two
// campaign reports are written as one document keyed by target
// ({"schema": "vcflight-crosstarget-v1", "campaigns": {...}}), which CI
// uploads as BENCH_crosstarget.json.
#include <cstdio>
#include <fstream>
#include <map>

#include "bench_common.hpp"
#include "mach/target.hpp"

using namespace vc;

int main(int argc, char** argv) {
  const bench::BenchFlags flags =
      bench::parse_bench_flags(argc, argv, "bench_crosstarget");
  const int nodes = flags.nodes > 0 ? flags.nodes : 24;
  const std::vector<std::string> targets = mach::target_names();

  std::puts("=== Cross-target WCET tightness: bound / max observed ===");
  std::printf("workload: %d generated nodes x %zu targets, 30 cold-cache "
              "runs each, full monitor\n\n",
              nodes, targets.size());

  const std::vector<bench::NodeBundle> suite = bench::make_suite(nodes);

  int unsound = 0;
  int uncertified = 0;
  std::uint64_t violations = 0;
  json::Value campaigns;
  // target -> config -> mean ratios over the suite.
  std::map<std::string, std::map<driver::Config, double>> ratio;
  std::map<std::string, std::map<driver::Config, double>> ratio_ipet;

  for (const std::string& target : targets) {
    driver::FleetOptions options;
    options.target = target;
    options.jobs = flags.jobs;
    options.exec_cycles = 30;
    options.cold_caches = true;
    options.wcet = true;
    options.wcet_engine = flags.wcet_engine;
    options.monitor = machine::MonitorMode::Full;
    options.suite_seed = 5150;
    bench::attach_pipeline_flags(&options, flags);
    bench::attach_validation(&options, flags.validate);
    const driver::FleetReport report =
        driver::run_fleet(bench::to_fleet_units(suite), options);
    violations += report.monitor_violations;

    for (const driver::FleetRecord& r : report.records) {
      if (!r.ok) {
        ++unsound;
        std::printf("FAILED: %s %s on %s: %s\n", r.name.c_str(),
                    driver::to_string(r.config).c_str(), target.c_str(),
                    r.error.c_str());
        continue;
      }
      if (r.observed_max_cycles > r.wcet_cycles) {
        ++unsound;
        std::printf("UNSOUND: %s %s on %s observed %llu > bound %llu\n",
                    r.name.c_str(), driver::to_string(r.config).c_str(),
                    target.c_str(),
                    static_cast<unsigned long long>(r.observed_max_cycles),
                    static_cast<unsigned long long>(r.wcet_cycles));
      }
      if (r.wcet_ipet_cycles > 0) {
        if (!r.wcet_ipet_certified) {
          ++uncertified;
          std::printf("UNCERTIFIED: %s %s on %s\n", r.name.c_str(),
                      driver::to_string(r.config).c_str(), target.c_str());
        }
        if (r.observed_max_cycles > r.wcet_ipet_cycles) {
          ++unsound;
          std::printf("UNSOUND: %s %s on %s observed %llu > ipet %llu\n",
                      r.name.c_str(), driver::to_string(r.config).c_str(),
                      target.c_str(),
                      static_cast<unsigned long long>(r.observed_max_cycles),
                      static_cast<unsigned long long>(r.wcet_ipet_cycles));
        }
        ratio_ipet[target][r.config] +=
            static_cast<double>(r.wcet_ipet_cycles) /
            static_cast<double>(r.observed_max_cycles);
      }
      ratio[target][r.config] += static_cast<double>(r.wcet_cycles) /
                                 static_cast<double>(r.observed_max_cycles);
    }
    campaigns[target] = driver::to_json(report);
  }

  const double n = static_cast<double>(suite.size());
  std::printf("%-16s", "configuration");
  for (const std::string& t : targets)
    std::printf(" %10s %10s", (t + " struct").c_str(), (t + " ipet").c_str());
  std::printf("\n");
  bench::print_rule(16 + static_cast<int>(targets.size()) * 22);
  for (driver::Config config : driver::kAllConfigs) {
    std::printf("%-16s", driver::to_string(config).c_str());
    for (const std::string& t : targets) {
      std::printf(" %10.2f", ratio[t][config] / n);
      if (ratio_ipet[t].count(config))
        std::printf(" %10.2f", ratio_ipet[t][config] / n);
      else
        std::printf(" %10s", "-");
    }
    std::printf("\n");
  }
  bench::print_rule(16 + static_cast<int>(targets.size()) * 22);
  std::printf("\nsoundness violations: %d, certificate failures: %d, "
              "monitor violations: %llu (all must be 0)\n",
              unsound, uncertified,
              static_cast<unsigned long long>(violations));
  std::puts("expected: per-target ratios in the same modest band — the "
            "analyses are shared; only the timing facts differ.");

  if (!flags.report_json.empty()) {
    json::Value doc;
    doc["schema"] = json::Value(std::string("vcflight-crosstarget-v1"));
    doc["nodes"] = json::Value(static_cast<std::int64_t>(nodes));
    doc["campaigns"] = std::move(campaigns);
    std::ofstream out(flags.report_json, std::ios::binary | std::ios::trunc);
    if (out && (out << doc.dump(1) << "\n").good())
      std::fprintf(stderr, "bench_crosstarget: wrote %s\n",
                   flags.report_json.c_str());
    else
      std::fprintf(stderr, "bench_crosstarget: cannot write %s\n",
                   flags.report_json.c_str());
  }

  return (unsound == 0 && uncertified == 0 && violations == 0) ? 0 : 1;
}
