// Evaluates the translation-validation stand-in (paper §3.2/§3.5, §4): cost
// of validated compilation vs plain compilation, and the checkers' defect
// detection rate under seeded miscompilation.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "rtl/analysis.hpp"
#include "rtl/lower.hpp"
#include "validate/validate.hpp"

using namespace vc;

namespace {

double seconds_for(const std::function<void()>& work) {
  const auto start = std::chrono::steady_clock::now();
  work();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - start).count();
}

/// Applies one random semantic mutation to an RTL function; returns false if
/// no mutation site was found.
bool mutate(rtl::Function& fn, Rng& rng) {
  std::vector<std::pair<rtl::BlockId, std::size_t>> sites;
  for (rtl::BlockId b = 0; b < fn.blocks.size(); ++b)
    for (std::size_t i = 0; i < fn.blocks[b].instrs.size(); ++i) {
      const rtl::Instr& ins = fn.blocks[b].instrs[i];
      if (ins.op == rtl::Opcode::Bin || ins.op == rtl::Opcode::LdI ||
          ins.op == rtl::Opcode::LdF || ins.op == rtl::Opcode::StoreGlobal ||
          ins.op == rtl::Opcode::StoreStack)
        sites.emplace_back(b, i);
    }
  if (sites.empty()) return false;
  const auto [b, i] = sites[rng.next_below(sites.size())];
  rtl::Instr& ins = fn.blocks[b].instrs[i];
  switch (ins.op) {
    case rtl::Opcode::Bin:
      if (rng.next_bool())
        std::swap(ins.src1, ins.src2);
      else if (ins.bin_op == minic::BinOp::FAdd)
        ins.bin_op = minic::BinOp::FSub;
      else if (ins.bin_op == minic::BinOp::FMul)
        ins.bin_op = minic::BinOp::FAdd;
      else if (ins.bin_op == minic::BinOp::IAdd)
        ins.bin_op = minic::BinOp::ISub;
      else
        std::swap(ins.src1, ins.src2);
      break;
    case rtl::Opcode::LdI:
      ins.int_imm += 1;
      break;
    case rtl::Opcode::LdF:
      ins.f64_imm += 0.5;
      break;
    case rtl::Opcode::StoreGlobal:
    case rtl::Opcode::StoreStack: {
      // Drop the store: replace with a self-jumpless no-op (Mov to scratch).
      const rtl::VReg scratch = fn.new_vreg(fn.vregs[ins.src1]);
      rtl::Instr mv;
      mv.op = rtl::Opcode::Mov;
      mv.dst = scratch;
      mv.src1 = ins.src1;
      ins = mv;
      break;
    }
    default:
      return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchFlags flags =
      bench::parse_bench_flags(argc, argv, "bench_validation");
  std::puts("=== Translation validation: overhead and seeded-defect "
            "detection ===\n");

  std::vector<bench::NodeBundle> suite =
      bench::make_suite(flags.nodes > 0 ? flags.nodes : 12);

  // --- overhead ------------------------------------------------------------
  for (driver::Config config :
       {driver::Config::Verified, driver::Config::O2Full}) {
    const double plain = seconds_for([&] {
      for (const auto& b : suite) driver::compile_program(b.program, config);
    });
    const double validated = seconds_for([&] {
      for (const auto& b : suite)
        validate::validated_compile(b.program, config, 8, 99);
    });
    std::printf(
        "%-12s plain compile: %6.1f ms   validated: %7.1f ms   (x%.1f)\n",
        driver::to_string(config).c_str(), plain * 1e3, validated * 1e3,
        validated / plain);
  }

  // --- detection rate --------------------------------------------------
  std::puts("\nseeded miscompilation detection (mutations injected after "
            "lowering):");
  Rng rng(123456);
  int injected = 0;
  int caught_differential = 0;
  int caught_structural = 0;
  for (const auto& bundle : suite) {
    const minic::Function& src = bundle.program.functions.back();
    for (int trial = 0; trial < 8; ++trial) {
      rtl::Function fn = rtl::lower_function(bundle.program, src,
                                             rtl::LowerMode::Value);
      rtl::remove_unreachable_blocks(fn);
      rtl::Function bad = fn;
      if (!mutate(bad, rng)) continue;
      ++injected;
      if (!validate::differential_check(bundle.program, fn, bad, 24, trial)
               .ok)
        ++caught_differential;
      if (!validate::check_structure_preserving(fn, bad).ok)
        ++caught_structural;
    }
  }
  std::printf("  injected:                %d\n", injected);
  std::printf("  caught by differential:  %d (%.1f%%)\n", caught_differential,
              100.0 * caught_differential / injected);
  std::printf("  caught by structural:    %d (%.1f%%)\n", caught_structural,
              100.0 * caught_structural / injected);
  std::puts("\nnote: the structural checker targets CFG-preserving rewrites "
            "and flags any value change;\nthe differential checker is "
            "probabilistic (some mutations are semantically neutral on\n"
            "sampled inputs, e.g. swapped operands of a commutative op are "
            "never defects).");
  return 0;
}
