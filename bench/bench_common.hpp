// Shared infrastructure for the benchmark binaries: the generated node suite
// (the stand-in for the paper's ~2500 ACG files), a hand-written pitch-axis
// control law, input drivers, and table formatting.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "artifact/store.hpp"
#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "driver/compiler.hpp"
#include "driver/fleet.hpp"
#include "machine/machine.hpp"
#include "minic/typecheck.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "tools/vcc_cli.hpp"
#include "validate/validate.hpp"
#include "wcet/wcet.hpp"

namespace vc::bench {

/// One benchmark unit: a node with its generated program (one "file").
struct NodeBundle {
  dataflow::Node node;
  minic::Program program;
  std::string step_fn;
};

inline NodeBundle bundle_node(dataflow::Node node) {
  NodeBundle b{std::move(node), {}, {}};
  b.program.name = b.node.name();
  dataflow::generate_node(b.node, &b.program);
  minic::type_check(b.program);
  b.step_fn = dataflow::step_function_name(b.node);
  return b;
}

/// The benchmark node suite: `count` generated nodes, fixed seed so every
/// table in EXPERIMENTS.md is reproducible.
inline std::vector<NodeBundle> make_suite(int count = 40,
                                          std::uint64_t seed = 20110318) {
  std::vector<NodeBundle> out;
  for (auto& node : dataflow::generate_suite(seed, count))
    out.push_back(bundle_node(std::move(node)));
  return out;
}

/// Adapts the bench suite to the fleet runner's input shape. The returned
/// units point into `suite`, which must outlive the run_fleet call.
inline std::vector<driver::FleetUnit> to_fleet_units(
    const std::vector<NodeBundle>& suite) {
  std::vector<driver::FleetUnit> units;
  units.reserve(suite.size());
  for (const NodeBundle& b : suite)
    units.push_back({b.node.name(), &b.program, b.step_fn, std::nullopt});
  return units;
}

/// Runs `cycles` step invocations with deterministic pseudo-random inputs;
/// returns accumulated machine statistics.
inline machine::ExecStats exercise(machine::Machine& m,
                                   const NodeBundle& bundle, int cycles,
                                   std::uint64_t seed) {
  Rng rng(seed);
  machine::ExecStats total;
  const minic::Function* fn = bundle.program.find_function(bundle.step_fn);
  const bool has_io =
      bundle.program.find_global(dataflow::kIoBusGlobal) != nullptr;
  for (int c = 0; c < cycles; ++c) {
    std::vector<minic::Value> args;
    for (const auto& p : fn->params) {
      if (p.type == minic::Type::F64)
        args.push_back(minic::Value::of_f64(rng.next_double(-20.0, 20.0)));
      else
        args.push_back(minic::Value::of_i32(
            static_cast<std::int32_t>(rng.next_range(-2, 2))));
    }
    if (has_io)
      m.write_global(dataflow::kIoBusGlobal, 0,
                     minic::Value::of_f64(rng.next_double(-3.0, 3.0)));
    m.call(bundle.step_fn, args, minic::Type::I32);
    const machine::ExecStats& s = m.stats();
    total.cycles += s.cycles;
    total.instructions += s.instructions;
    total.dcache_reads += s.dcache_reads;
    total.dcache_writes += s.dcache_writes;
    total.dcache_read_misses += s.dcache_read_misses;
    total.dcache_write_misses += s.dcache_write_misses;
    total.ifetch_line_misses += s.ifetch_line_misses;
    total.taken_branches += s.taken_branches;
  }
  return total;
}

/// A representative hand-modelled pitch-axis control law with envelope
/// protection (the workload class the paper's introduction describes).
inline NodeBundle pitch_law() {
  using dataflow::SymbolKind;
  dataflow::Node n("pitch");
  // Inputs: stick command, measured pitch rate, measured load factor.
  const auto stick = n.add(SymbolKind::InputF);
  const auto q_meas = n.add(SymbolKind::InputF);
  const auto nz_meas = n.add(SymbolKind::InputF);
  // Stick shaping: deadzone then lookup curve.
  const auto dz = n.add(SymbolKind::Deadzone, {stick}, {0.05});
  const auto shaped = n.add(
      SymbolKind::Lookup1D, {dz}, {-1.0, 1.0},
      {-25.0, -15.0, -8.0, -3.0, 0.0, 3.0, 8.0, 15.0, 25.0});
  // Filter measurements.
  const auto q_f = n.add(SymbolKind::FirstOrderLag, {q_meas}, {0.35});
  const auto nz_f = n.add(SymbolKind::MovingAverage, {nz_meas}, {8});
  // Command: shaped stick minus damping.
  const auto q_gain = n.add(SymbolKind::Gain, {q_f}, {2.2});
  const auto cmd = n.add(SymbolKind::Sub, {shaped, q_gain});
  // Envelope protection: limit load factor between -1g and 2.5g.
  const auto nz_hi = n.add(SymbolKind::ConstF, {}, {2.5});
  const auto nz_lo = n.add(SymbolKind::ConstF, {}, {-1.0});
  const auto over = n.add(SymbolKind::CmpGt, {nz_f, nz_hi});
  const auto under = n.add(SymbolKind::CmpLt, {nz_f, nz_lo});
  const auto viol = n.add(SymbolKind::LogicOr, {over, under});
  const auto relax = n.add(SymbolKind::Gain, {cmd}, {0.25});
  const auto protected_cmd = n.add(SymbolKind::Switch, {viol, relax, cmd});
  // Integrate to elevator demand with rate limiting and saturation.
  const auto integ = n.add(SymbolKind::Integrator, {protected_cmd},
                           {0.02, -30.0, 30.0});
  const auto rate = n.add(SymbolKind::RateLimiter, {integ}, {3.0, 3.0});
  const auto elev = n.add(SymbolKind::Saturate, {rate}, {-20.0, 20.0});
  n.add(SymbolKind::Output, {elev});
  n.add(SymbolKind::Output, {integ});
  return bundle_node(std::move(n));
}

inline void print_rule(int width = 78) {
  std::puts(std::string(static_cast<std::size_t>(width), '-').c_str());
}

/// Percentage change of `value` vs `reference`. A zero reference makes the
/// comparison undefined: returns NaN (rendered as "n/a" by fmt_pct), never a
/// fake "no change".
inline double pct_delta(double value, double reference) {
  if (reference == 0.0) return std::nan("");
  return (value - reference) / reference * 100.0;
}

/// Formats a pct_delta for the tables: "+12.3%", right-aligned to `width`;
/// NaN renders as "n/a".
inline std::string fmt_pct(double pct, int width = 8) {
  char buf[64];
  if (std::isnan(pct))
    std::snprintf(buf, sizeof buf, "%*s ", width, "n/a");
  else
    std::snprintf(buf, sizeof buf, "%+*.1f%%", width, pct);
  return buf;
}

/// Command-line flags shared by the fleet-driven bench binaries.
struct BenchFlags {
  // --target=ppc|rv32: target ISA for every fleet compile. Strict: an
  // unknown or empty name exits 2 — a campaign silently measuring the wrong
  // ISA would poison every cross-target table built from its report.
  std::string target = "ppc";
  int jobs = 0;   // --jobs=N  worker threads (0 = hardware concurrency)
  int nodes = 0;  // --nodes=N suite size (0 = the binary's default)
  int cache_budget_mb = 0;  // --cache-budget-mb=N LRU budget (0 = unlimited)
  std::string cache_dir;    // --cache-dir=DIR artifact store (empty = off)
  std::string report_json;  // --report-json=FILE machine-readable report
  // --validate=off|rtl|full: translation-validate every fleet compile at the
  // given level (bare --validate = rtl). Validated jobs bypass the artifact
  // cache so the checkers actually run.
  driver::ValidateLevel validate = driver::ValidateLevel::Off;
  // --wcet-engine=structural|ipet|both: which WCET engine(s) the fleet runs
  // for benches that bound WCET. Benches without a WCET phase ignore it.
  wcet::WcetEngine wcet_engine = wcet::WcetEngine::Structural;
  // --monitor=off|cfg|full: arm the runtime execution monitor on every fleet
  // job (driver/fleet.hpp). Benches that run no execution phase ignore it.
  machine::MonitorMode monitor = machine::MonitorMode::Off;
  // --ssa: enable the SSA mid-end bracket on every fleet compile
  // (FleetOptions::ssa / CompileOptions::ssa). The pattern configurations
  // ignore it; part of the artifact-store key.
  bool ssa = false;
  // --disable-pass=NAME (repeatable): drop one optimization pass from every
  // compile the bench performs. Strict like vcc: an unknown step name exits
  // 2 listing the registered steps — an ablation arm that silently measures
  // the full pipeline would poison the table.
  std::vector<std::string> disable_passes;
};

/// Parses the shared bench flags; exits 2 with a diagnostic on anything else.
/// Strictness matches vcc: contradictory repeats of a flag exit 2 instead of
/// silently letting the last occurrence win, and an explicit --jobs=0 is
/// rejected — the "all cores" default is spelled by *omitting* the flag, so a
/// literal 0 in a campaign script is almost always a templating bug that
/// would silently change the measured worker count.
inline BenchFlags parse_bench_flags(int argc, char** argv,
                                    const char* bench_name) {
  BenchFlags flags;
  tools::FlagConflicts conflicts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (const auto flag = tools::split_flag(arg);
        flag && flag->name != "--disable-pass") {
      if (const auto conflict = conflicts.note(flag->name, flag->value)) {
        std::fprintf(stderr, "%s: %s\n", bench_name, conflict->c_str());
        std::exit(2);
      }
    }
    if (arg == "--jobs=0") {
      std::fprintf(stderr,
                   "%s: --jobs=0 is rejected: omit --jobs to use every "
                   "hardware thread, or pass an explicit count >= 1\n",
                   bench_name);
      std::exit(2);
    }
    if (starts_with(arg, "--target=")) {
      const std::string name = arg.substr(9);
      const auto target = tools::parse_target_name(name);
      if (!target) {
        std::fprintf(stderr, "%s: unknown target '%s'\n", bench_name,
                     name.c_str());
        std::exit(2);
      }
      flags.target = *target;
      continue;
    }
    if (starts_with(arg, "--monitor=")) {
      const std::string name = arg.substr(10);
      const auto mode = machine::parse_monitor_mode(name);
      if (!mode) {
        std::fprintf(stderr, "%s: unknown monitor mode '%s'\n", bench_name,
                     name.c_str());
        std::exit(2);
      }
      flags.monitor = *mode;
      continue;
    }
    if (arg == "--ssa") {
      flags.ssa = true;
      continue;
    }
    if (starts_with(arg, "--disable-pass=")) {
      const std::string name = arg.substr(15);
      if (const auto bad = tools::check_pass_names({name})) {
        std::fprintf(stderr, "%s: %s\n", bench_name, bad->c_str());
        std::exit(2);
      }
      flags.disable_passes.push_back(name);
      continue;
    }
    if (arg == "--validate") {
      flags.validate = driver::ValidateLevel::Rtl;
      continue;
    }
    if (starts_with(arg, "--validate=")) {
      const std::string level = arg.substr(11);
      if (level == "off") {
        flags.validate = driver::ValidateLevel::Off;
      } else if (level == "rtl") {
        flags.validate = driver::ValidateLevel::Rtl;
      } else if (level == "full") {
        flags.validate = driver::ValidateLevel::Full;
      } else {
        std::fprintf(stderr, "%s: unknown validate level '%s'\n", bench_name,
                     level.c_str());
        std::exit(2);
      }
      continue;
    }
    if (starts_with(arg, "--wcet-engine=")) {
      const std::string name = arg.substr(14);
      const auto engine = wcet::parse_wcet_engine(name);
      if (!engine) {
        std::fprintf(stderr, "%s: unknown wcet engine '%s'\n", bench_name,
                     name.c_str());
        std::exit(2);
      }
      flags.wcet_engine = *engine;
      continue;
    }
    std::string* text_slot = nullptr;
    std::string text_rest;
    if (starts_with(arg, "--cache-dir=")) {
      text_slot = &flags.cache_dir;
      text_rest = arg.substr(12);
    } else if (starts_with(arg, "--report-json=")) {
      text_slot = &flags.report_json;
      text_rest = arg.substr(14);
    }
    if (text_slot != nullptr) {
      if (text_rest.empty()) {
        std::fprintf(stderr, "%s: empty value in '%s'\n", bench_name,
                     arg.c_str());
        std::exit(2);
      }
      *text_slot = text_rest;
      continue;
    }
    int* slot = nullptr;
    std::string rest;
    if (starts_with(arg, "--jobs=")) {
      slot = &flags.jobs;
      rest = arg.substr(7);
    } else if (starts_with(arg, "--nodes=")) {
      slot = &flags.nodes;
      rest = arg.substr(8);
    } else if (starts_with(arg, "--cache-budget-mb=")) {
      slot = &flags.cache_budget_mb;
      rest = arg.substr(18);
    }
    char* end = nullptr;
    const long v = slot ? std::strtol(rest.c_str(), &end, 10) : 0;
    if (slot == nullptr || rest.empty() || *end != '\0' || v < 0 ||
        v > 1000000) {
      std::fprintf(stderr,
                   "%s: bad argument '%s'\nusage: %s [--target=ppc|rv32] "
                   "[--jobs=N] [--nodes=N] "
                   "[--cache-dir=DIR] [--cache-budget-mb=N] "
                   "[--report-json=FILE] [--validate[=off|rtl|full]] "
                   "[--wcet-engine=structural|ipet|both] "
                   "[--monitor=off|cfg|full] [--ssa] "
                   "[--disable-pass=NAME]\n",
                   bench_name, arg.c_str(), bench_name);
      std::exit(2);
    }
    *slot = static_cast<int>(v);
  }
  return flags;
}

/// Wires the pipeline-shaping flags (--ssa / --disable-pass) into a fleet
/// run. Both feed CompileOptions for every job and salt the artifact-store
/// key, so flag'd and unflag'd campaigns never share cached compiles.
inline void attach_pipeline_flags(driver::FleetOptions* options,
                                  const BenchFlags& flags) {
  options->ssa = flags.ssa;
  options->disable_passes = flags.disable_passes;
}

/// Wires --validate into a fleet run: attaches a compile override that runs
/// the translation validator at the requested level on every job. Overridden
/// jobs bypass the artifact store (fleet.cpp) — re-checking is the point.
/// n_tests is lower than the vcc default (6 vs 12): the differential checker
/// runs per RTL pass per function, and campaign-scale validation multiplies
/// that by thousands of jobs.
inline void attach_validation(driver::FleetOptions* options,
                              driver::ValidateLevel level) {
  if (level == driver::ValidateLevel::Off) return;
  options->compile_override = [level](const minic::Program& program,
                                      driver::Config config,
                                      const driver::CompileOptions& copts) {
    return validate::validated_compile(program, config, /*n_tests=*/6,
                                       /*seed=*/1, level, copts);
  };
}

/// Opens the artifact store requested by --cache-dir (nullptr when off).
inline std::unique_ptr<artifact::ArtifactStore> open_bench_store(
    const BenchFlags& flags) {
  if (flags.cache_dir.empty()) return nullptr;
  return std::make_unique<artifact::ArtifactStore>(
      artifact::ArtifactStore::Options{
          flags.cache_dir,
          static_cast<std::uint64_t>(flags.cache_budget_mb) * 1024 * 1024});
}

/// Writes the machine-readable campaign report when --report-json was given.
inline void write_bench_report(const driver::FleetReport& report,
                               const BenchFlags& flags,
                               const char* bench_name) {
  if (flags.report_json.empty()) return;
  if (driver::write_report_json(report, flags.report_json))
    std::fprintf(stderr, "%s: wrote %s\n", bench_name,
                 flags.report_json.c_str());
  else
    std::fprintf(stderr, "%s: cannot write %s\n", bench_name,
                 flags.report_json.c_str());
}

}  // namespace vc::bench
