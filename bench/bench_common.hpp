// Shared infrastructure for the benchmark binaries: the generated node suite
// (the stand-in for the paper's ~2500 ACG files), a hand-written pitch-axis
// control law, input drivers, and table formatting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "minic/typecheck.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace vc::bench {

/// One benchmark unit: a node with its generated program (one "file").
struct NodeBundle {
  dataflow::Node node;
  minic::Program program;
  std::string step_fn;
};

inline NodeBundle bundle_node(dataflow::Node node) {
  NodeBundle b{std::move(node), {}, {}};
  b.program.name = b.node.name();
  dataflow::generate_node(b.node, &b.program);
  minic::type_check(b.program);
  b.step_fn = dataflow::step_function_name(b.node);
  return b;
}

/// The benchmark node suite: `count` generated nodes, fixed seed so every
/// table in EXPERIMENTS.md is reproducible.
inline std::vector<NodeBundle> make_suite(int count = 40,
                                          std::uint64_t seed = 20110318) {
  std::vector<NodeBundle> out;
  for (auto& node : dataflow::generate_suite(seed, count))
    out.push_back(bundle_node(std::move(node)));
  return out;
}

/// Runs `cycles` step invocations with deterministic pseudo-random inputs;
/// returns accumulated machine statistics.
inline machine::ExecStats exercise(machine::Machine& m,
                                   const NodeBundle& bundle, int cycles,
                                   std::uint64_t seed) {
  Rng rng(seed);
  machine::ExecStats total;
  const minic::Function* fn = bundle.program.find_function(bundle.step_fn);
  const bool has_io =
      bundle.program.find_global(dataflow::kIoBusGlobal) != nullptr;
  for (int c = 0; c < cycles; ++c) {
    std::vector<minic::Value> args;
    for (const auto& p : fn->params) {
      if (p.type == minic::Type::F64)
        args.push_back(minic::Value::of_f64(rng.next_double(-20.0, 20.0)));
      else
        args.push_back(minic::Value::of_i32(
            static_cast<std::int32_t>(rng.next_range(-2, 2))));
    }
    if (has_io)
      m.write_global(dataflow::kIoBusGlobal, 0,
                     minic::Value::of_f64(rng.next_double(-3.0, 3.0)));
    m.call(bundle.step_fn, args, minic::Type::I32);
    const machine::ExecStats& s = m.stats();
    total.cycles += s.cycles;
    total.instructions += s.instructions;
    total.dcache_reads += s.dcache_reads;
    total.dcache_writes += s.dcache_writes;
    total.dcache_read_misses += s.dcache_read_misses;
    total.dcache_write_misses += s.dcache_write_misses;
    total.ifetch_line_misses += s.ifetch_line_misses;
    total.taken_branches += s.taken_branches;
  }
  return total;
}

/// A representative hand-modelled pitch-axis control law with envelope
/// protection (the workload class the paper's introduction describes).
inline NodeBundle pitch_law() {
  using dataflow::SymbolKind;
  dataflow::Node n("pitch");
  // Inputs: stick command, measured pitch rate, measured load factor.
  const auto stick = n.add(SymbolKind::InputF);
  const auto q_meas = n.add(SymbolKind::InputF);
  const auto nz_meas = n.add(SymbolKind::InputF);
  // Stick shaping: deadzone then lookup curve.
  const auto dz = n.add(SymbolKind::Deadzone, {stick}, {0.05});
  const auto shaped = n.add(
      SymbolKind::Lookup1D, {dz}, {-1.0, 1.0},
      {-25.0, -15.0, -8.0, -3.0, 0.0, 3.0, 8.0, 15.0, 25.0});
  // Filter measurements.
  const auto q_f = n.add(SymbolKind::FirstOrderLag, {q_meas}, {0.35});
  const auto nz_f = n.add(SymbolKind::MovingAverage, {nz_meas}, {8});
  // Command: shaped stick minus damping.
  const auto q_gain = n.add(SymbolKind::Gain, {q_f}, {2.2});
  const auto cmd = n.add(SymbolKind::Sub, {shaped, q_gain});
  // Envelope protection: limit load factor between -1g and 2.5g.
  const auto nz_hi = n.add(SymbolKind::ConstF, {}, {2.5});
  const auto nz_lo = n.add(SymbolKind::ConstF, {}, {-1.0});
  const auto over = n.add(SymbolKind::CmpGt, {nz_f, nz_hi});
  const auto under = n.add(SymbolKind::CmpLt, {nz_f, nz_lo});
  const auto viol = n.add(SymbolKind::LogicOr, {over, under});
  const auto relax = n.add(SymbolKind::Gain, {cmd}, {0.25});
  const auto protected_cmd = n.add(SymbolKind::Switch, {viol, relax, cmd});
  // Integrate to elevator demand with rate limiting and saturation.
  const auto integ = n.add(SymbolKind::Integrator, {protected_cmd},
                           {0.02, -30.0, 30.0});
  const auto rate = n.add(SymbolKind::RateLimiter, {integ}, {3.0, 3.0});
  const auto elev = n.add(SymbolKind::Saturate, {rate}, {-20.0, 20.0});
  n.add(SymbolKind::Output, {elev});
  n.add(SymbolKind::Output, {integ});
  return bundle_node(std::move(n));
}

inline void print_rule(int width = 78) {
  std::puts(std::string(static_cast<std::size_t>(width), '-').c_str());
}

inline double pct_delta(double value, double reference) {
  if (reference == 0.0) return 0.0;
  return (value - reference) / reference * 100.0;
}

}  // namespace vc::bench
