// Micro benchmarks (google-benchmark): toolchain throughput — compilation
// per configuration, static WCET analysis, cycle-level simulation, and the
// translation validator. These measure the *tool*, complementing the
// paper-table benches that measure the *generated code*.
//
// The BM_Phase* lanes isolate the cold-campaign pipeline stages
// (parse -> RTL+opt -> machine -> WCET structural/IPET) so a throughput
// regression can be blamed on a stage without re-profiling the whole fleet.
// Every lane also reports allocs/op — heap allocations per iteration from
// the support/alloccount counters — because most past regressions here were
// allocation regressions before they were time regressions.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "minic/typecheck.hpp"
#include "support/alloccount.hpp"
#include "validate/validate.hpp"
#include "wcet/wcet.hpp"

using namespace vc;

namespace {

const bench::NodeBundle& medium_node() {
  static const bench::NodeBundle bundle = [] {
    dataflow::GeneratorOptions options;
    options.min_blocks = 50;
    options.max_blocks = 60;
    return bench::bundle_node(
        dataflow::generate_node(424242, "micro", options));
  }();
  return bundle;
}

/// Adds allocs/op (heap allocations per iteration on this thread) to the
/// lane's counters. Construct before the loop, call report() after it.
class AllocCounter {
 public:
  AllocCounter() : start_(alloc::snapshot()) {}
  void report(benchmark::State& state) const {
    const alloc::Counters now = alloc::snapshot();
    state.counters["allocs/op"] = benchmark::Counter(
        static_cast<double>(now.allocations - start_.allocations),
        benchmark::Counter::kAvgIterations);
  }

 private:
  alloc::Counters start_;
};

void BM_PhaseParse(benchmark::State& state) {
  const std::string source = minic::print_program(medium_node().program);
  const AllocCounter allocs;
  for (auto _ : state) {
    minic::Program program = minic::parse_program(source, "micro.mc");
    minic::type_check(program);
    benchmark::DoNotOptimize(program);
  }
  allocs.report(state);
}
BENCHMARK(BM_PhaseParse);

void BM_CompileO0(benchmark::State& state) {
  const AllocCounter allocs;
  for (auto _ : state)
    benchmark::DoNotOptimize(driver::compile_program(
        medium_node().program, driver::Config::O0Pattern));
  allocs.report(state);
}
BENCHMARK(BM_CompileO0);

void BM_CompileVerified(benchmark::State& state) {
  const AllocCounter allocs;
  for (auto _ : state)
    benchmark::DoNotOptimize(driver::compile_program(
        medium_node().program, driver::Config::Verified));
  allocs.report(state);
}
BENCHMARK(BM_CompileVerified);

void BM_CompileO2(benchmark::State& state) {
  const AllocCounter allocs;
  for (auto _ : state)
    benchmark::DoNotOptimize(driver::compile_program(medium_node().program,
                                                     driver::Config::O2Full));
  allocs.report(state);
}
BENCHMARK(BM_CompileO2);

void BM_ValidatedCompile(benchmark::State& state) {
  const AllocCounter allocs;
  for (auto _ : state)
    benchmark::DoNotOptimize(validate::validated_compile(
        medium_node().program, driver::Config::Verified, 4, 7));
  allocs.report(state);
}
BENCHMARK(BM_ValidatedCompile);

void BM_WcetAnalysis(benchmark::State& state) {
  const driver::Compiled compiled = driver::compile_program(
      medium_node().program, driver::Config::Verified);
  const AllocCounter allocs;
  for (auto _ : state)
    benchmark::DoNotOptimize(
        wcet::analyze_wcet(compiled.image, medium_node().step_fn));
  allocs.report(state);
}
BENCHMARK(BM_WcetAnalysis);

void BM_WcetIpet(benchmark::State& state) {
  const driver::Compiled compiled = driver::compile_program(
      medium_node().program, driver::Config::Verified);
  wcet::WcetOptions options;
  options.engine = wcet::WcetEngine::Ipet;
  const AllocCounter allocs;
  for (auto _ : state)
    benchmark::DoNotOptimize(wcet::analyze_wcet(
        compiled.image, medium_node().step_fn, options));
  allocs.report(state);
}
BENCHMARK(BM_WcetIpet);

void BM_SimulatedStep(benchmark::State& state) {
  const driver::Compiled compiled = driver::compile_program(
      medium_node().program, driver::Config::Verified);
  machine::Machine m(compiled.image);
  const minic::Function* fn =
      medium_node().program.find_function(medium_node().step_fn);
  std::vector<minic::Value> args;
  for (const auto& p : fn->params)
    args.push_back(p.type == minic::Type::F64 ? minic::Value::of_f64(1.25)
                                              : minic::Value::of_i32(1));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    m.call(medium_node().step_fn, args, minic::Type::I32);
    instructions += m.stats().instructions;
  }
  state.counters["insns/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedStep);

}  // namespace

BENCHMARK_MAIN();
