// Micro benchmarks (google-benchmark): toolchain throughput — compilation
// per configuration, static WCET analysis, cycle-level simulation, and the
// translation validator. These measure the *tool*, complementing the
// paper-table benches that measure the *generated code*.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "validate/validate.hpp"
#include "wcet/wcet.hpp"

using namespace vc;

namespace {

const bench::NodeBundle& medium_node() {
  static const bench::NodeBundle bundle = [] {
    dataflow::GeneratorOptions options;
    options.min_blocks = 50;
    options.max_blocks = 60;
    return bench::bundle_node(
        dataflow::generate_node(424242, "micro", options));
  }();
  return bundle;
}

void BM_CompileO0(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(driver::compile_program(
        medium_node().program, driver::Config::O0Pattern));
}
BENCHMARK(BM_CompileO0);

void BM_CompileVerified(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(driver::compile_program(
        medium_node().program, driver::Config::Verified));
}
BENCHMARK(BM_CompileVerified);

void BM_CompileO2(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(driver::compile_program(medium_node().program,
                                                     driver::Config::O2Full));
}
BENCHMARK(BM_CompileO2);

void BM_ValidatedCompile(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(validate::validated_compile(
        medium_node().program, driver::Config::Verified, 4, 7));
}
BENCHMARK(BM_ValidatedCompile);

void BM_WcetAnalysis(benchmark::State& state) {
  const driver::Compiled compiled = driver::compile_program(
      medium_node().program, driver::Config::Verified);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        wcet::analyze_wcet(compiled.image, medium_node().step_fn));
}
BENCHMARK(BM_WcetAnalysis);

void BM_SimulatedStep(benchmark::State& state) {
  const driver::Compiled compiled = driver::compile_program(
      medium_node().program, driver::Config::Verified);
  machine::Machine m(compiled.image);
  const minic::Function* fn =
      medium_node().program.find_function(medium_node().step_fn);
  std::vector<minic::Value> args;
  for (const auto& p : fn->params)
    args.push_back(p.type == minic::Type::F64 ? minic::Value::of_f64(1.25)
                                              : minic::Value::of_i32(1));
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    m.call(medium_node().step_fn, args, minic::Type::I32);
    instructions += m.stats().instructions;
  }
  state.counters["insns/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatedStep);

}  // namespace

BENCHMARK_MAIN();
