// Fully-monitored campaign lane: every (node, config) job executes with the
// runtime execution monitor armed, so every simulated instruction is checked
// against the statically claimed facts — reconstructed CFG edges, annotation
// intervals, and the loop-bound rows the WCET path analyses consume
// (machine/monitor.hpp). This is the dynamic soundness oracle for the fleet:
// both WCET engines share the reconstructed CFG, so their agreement proves
// nothing about reconstruction bugs; a monitored campaign with zero
// violations does.
//
// Any MonitorError is a refuted static claim: the record fails, the refuted
// fact is printed, and the bench exits non-zero. --monitor=cfg narrows the
// checks to control flow only; the lane's default is full.
#include <cstdio>
#include <map>

#include "bench_common.hpp"

using namespace vc;

int main(int argc, char** argv) {
  const bench::BenchFlags flags =
      bench::parse_bench_flags(argc, argv, "bench_monitor");
  const int nodes = flags.nodes > 0 ? flags.nodes : 24;
  // The lane exists to monitor; an explicit --monitor=cfg narrows it, but
  // "off" (the shared-flag default) means "the lane's own default": full.
  const machine::MonitorMode mode = flags.monitor == machine::MonitorMode::Off
                                        ? machine::MonitorMode::Full
                                        : flags.monitor;

  std::puts("=== Monitored campaign: every step checked against the static "
            "claims ===");
  std::printf("workload: %d generated nodes, 30 runs each with cold caches, "
              "monitor mode %s\n\n",
              nodes, machine::to_string(mode).c_str());

  const std::vector<bench::NodeBundle> suite = bench::make_suite(nodes);

  const auto store = bench::open_bench_store(flags);
  driver::FleetOptions options;
  options.target = flags.target;
  options.jobs = flags.jobs;
  options.exec_cycles = 30;
  options.cold_caches = true;
  options.wcet = true;
  options.wcet_engine = flags.wcet_engine;
  options.monitor = mode;
  options.suite_seed = 5150;  // same input streams as the tightness sweep
  options.store = store.get();
  bench::attach_pipeline_flags(&options, flags);
  bench::attach_validation(&options, flags.validate);
  const driver::FleetReport report =
      driver::run_fleet(bench::to_fleet_units(suite), options);
  bench::write_bench_report(report, flags, "bench_monitor");

  std::map<driver::Config, std::uint64_t> steps_by_config;
  std::uint64_t violations = 0;
  int failed = 0;
  for (const driver::FleetRecord& r : report.records) {
    steps_by_config[r.config] += r.monitored_steps;
    violations += r.monitor_violations;
    if (r.monitor_violations > 0)
      std::printf("REFUTED: %s %s: %s\n", r.name.c_str(),
                  driver::to_string(r.config).c_str(), r.error.c_str());
    else if (!r.ok) {
      ++failed;
      std::printf("%-10s failed (%s): %s\n", r.name.c_str(),
                  driver::to_string(r.config).c_str(), r.error.c_str());
    }
  }

  std::printf("%-16s %22s\n", "configuration", "monitored steps");
  bench::print_rule(40);
  for (driver::Config config : driver::kAllConfigs)
    std::printf("%-16s %22llu\n", driver::to_string(config).c_str(),
                static_cast<unsigned long long>(steps_by_config[config]));
  bench::print_rule(40);
  std::puts(report.throughput_summary().c_str());
  std::printf("\nrefuted static claims: %llu (must be 0), other failures: %d "
              "(must be 0)\n",
              static_cast<unsigned long long>(violations), failed);
  std::puts("expected: zero violations — the reconstructed CFG, the "
            "annotation intervals, and the\nloop-bound rows all hold on every "
            "step of every monitored execution.");
  return (violations == 0 && failed == 0) ? 0 : 1;
}
