// Reproduces the §3.4 annotation experiment: the `__builtin_annotation`
// mechanism transports loop bounds and value constraints through compilation
// to the WCET analyzer at final code addresses / operand locations.
//
// Three measurements:
//   1. Coverage: how many suite nodes are analyzable at all with and without
//      the annotation table (loops whose bound cannot be derived from the
//      binary alone need it — especially in the pattern configurations where
//      counters live in stack slots).
//   2. Automatic bound derivation: how many loop bounds the analyzer derives
//      from the binary itself per configuration (register-allocated counters
//      are derivable; slot-based ones typically are not).
//   3. Precision: WCET of a data-dependent-loop kernel with a manual
//      annotation vs the analysis failing/defaulting without it.
#include <cstdio>

#include "bench_common.hpp"
#include "minic/parser.hpp"
#include "wcet/wcet.hpp"

using namespace vc;

int main(int argc, char** argv) {
  const bench::BenchFlags flags =
      bench::parse_bench_flags(argc, argv, "bench_annotations");
  std::puts("=== §3.4: annotation transport and its effect on WCET analysis "
            "===\n");

  // --- 1 & 2: suite coverage --------------------------------------------
  std::vector<bench::NodeBundle> suite =
      bench::make_suite(flags.nodes > 0 ? flags.nodes : 40);
  std::printf("%-16s %22s %25s %28s\n", "configuration",
              "analyzable w/ annots", "analyzable w/o annots",
              "bounds derived from binary");
  bench::print_rule(96);
  for (driver::Config config : driver::kAllConfigs) {
    int with_annots = 0;
    int without_annots = 0;
    int derived = 0;
    int total_loops = 0;
    for (const auto& bundle : suite) {
      const driver::Compiled compiled =
          driver::compile_program(bundle.program, config);
      wcet::WcetOptions with;
      wcet::WcetOptions without;
      with.engine = flags.wcet_engine;
      without.use_annotations = false;
      without.engine = flags.wcet_engine;
      try {
        const wcet::WcetResult r =
            wcet::analyze_wcet(compiled.image, bundle.step_fn, with);
        ++with_annots;
        for (const auto& loop : r.loops) {
          ++total_loops;
          if (loop.derived) ++derived;
        }
      } catch (const wcet::WcetError&) {
      }
      try {
        wcet::analyze_wcet(compiled.image, bundle.step_fn, without);
        ++without_annots;
      } catch (const wcet::WcetError&) {
      }
    }
    std::printf("%-16s %15d/%zu %19d/%zu %20d/%d loops\n",
                driver::to_string(config).c_str(), with_annots, suite.size(),
                without_annots, suite.size(), derived, total_loops);
  }
  bench::print_rule(96);
  std::puts("expected: all nodes analyzable with the annotation table; "
            "optimizing configs derive\nregister-counter loop bounds from the "
            "binary, pattern configs cannot (slot counters).\n");

  // --- 3: value-annotation precision on a data-dependent loop -------------
  minic::Program program = minic::parse_program(R"(
    global f64 table[32] = {0,1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,
                            16,17,18,19,20,21,22,23,24,25,26,27,28,29,30,31};
    func f64 scan(i32 n, f64 x) {
      local f64 acc;
      local i32 i;
      __annot("0 <= %1 <= 8", n);
      acc = 0.0;
      i = 0;
      while (i < n) {
        __annot("loop <= 8");
        acc = acc + table[i] * x;
        i = i + 1;
      }
      return acc;
    }
  )",
                                                "annot_demo");
  minic::type_check(program);
  std::puts("data-dependent loop kernel (bound known only via annotation):");
  std::printf("%-16s %18s %22s\n", "configuration", "WCET w/ annots",
              "WCET w/o annots");
  bench::print_rule(60);
  for (driver::Config config : driver::kAllConfigs) {
    const driver::Compiled compiled = driver::compile_program(program, config);
    wcet::WcetOptions with;
    wcet::WcetOptions without;
    with.engine = flags.wcet_engine;
    without.use_annotations = false;
    without.engine = flags.wcet_engine;
    std::uint64_t w = 0;
    std::string wo = "analysis fails (no loop bound)";
    w = wcet::analyze_wcet(compiled.image, "scan", with).wcet_cycles;
    try {
      wo = std::to_string(
          wcet::analyze_wcet(compiled.image, "scan", without).wcet_cycles);
    } catch (const wcet::WcetError&) {
    }
    std::printf("%-16s %18llu %22s\n", driver::to_string(config).c_str(),
                static_cast<unsigned long long>(w), wo.c_str());
  }
  bench::print_rule(60);
  std::puts("\npaper §3.4: annotations compiled as pro-forma effects; the %i "
            "tokens resolve to the final\nmachine register / stack slot, and "
            "the generated annotation file feeds the a3 analyzer.");
  return 0;
}
