// Quickstart: the whole toolchain in one page.
//
//   1. Write a mini-C function (what the qualified code generator emits).
//   2. Compile it under the four compiler configurations of the paper.
//   3. Run the binaries on the cycle-level machine simulator and check them
//      against the reference interpreter.
//   4. Compute static WCET bounds and compare configurations.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "minic/interp.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "wcet/wcet.hpp"

int main() {
  using namespace vc;

  // 1. A small control-law kernel in mini-C.
  minic::Program program = minic::parse_program(R"(
    global f64 integ = 0.0;

    func f64 pid_controller(f64 error, f64 rate) {
      local f64 p;  local f64 d;
      local f64 t1; local f64 t2; local f64 t3;
      local f64 cmd;
      p = error * 1.8;
      d = rate * -0.6;
      integ = fmin(fmax(integ + error * 0.05, -10.0), 10.0);
      t1 = p + d;
      t2 = t1 + integ;
      t3 = t2 * t2 * 0.01 + t2;
      cmd = t3 - t1 * 0.02;
      return fmin(fmax(cmd, -25.0), 25.0);
    }
  )",
                                                "quickstart");
  minic::type_check(program);

  // Reference semantics: the mini-C interpreter.
  minic::Interpreter interp(program);
  const minic::Value expected =
      interp.call("pid_controller", {minic::Value::of_f64(3.5), minic::Value::of_f64(-1.0)});
  std::printf("interpreter result:      %s\n", expected.to_string().c_str());

  // 2..4. Compile, execute, analyze under each configuration.
  std::printf("\n%-16s %10s %12s %10s %12s\n", "config", "result", "cycles",
              "code B", "WCET bound");
  for (driver::Config config : driver::kAllConfigs) {
    const driver::Compiled compiled = driver::compile_program(program, config);

    machine::Machine machine(compiled.image);
    const minic::Value got = machine.call(
        "pid_controller", {minic::Value::of_f64(3.5), minic::Value::of_f64(-1.0)}, minic::Type::F64);

    const wcet::WcetResult wcet =
        wcet::analyze_wcet(compiled.image, "pid_controller");

    std::printf("%-16s %10s %12llu %10u %12llu%s\n",
                driver::to_string(config).c_str(), got.to_string().c_str(),
                static_cast<unsigned long long>(machine.stats().cycles),
                compiled.image.code_size_of("pid_controller"),
                static_cast<unsigned long long>(wcet.wcet_cycles),
                got == expected ? "" : "   <-- MISMATCH!");
  }

  std::puts("\nNote how the verified configuration (the CompCert stand-in) "
            "keeps locals in\nregisters: less code, fewer cycles, lower "
            "WCET bound than the pattern baseline.");
  return 0;
}
