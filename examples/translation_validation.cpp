// Translation validation in action (paper §3.2/§4): compiling with every
// pass checked, then demonstrating that an injected miscompilation — of the
// kind a buggy optimizer would produce — is rejected before the binary could
// ever reach an aircraft.
//
// Build & run:  ./build/examples/translation_validation
#include <cstdio>

#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "opt/opt.hpp"
#include "rtl/analysis.hpp"
#include "rtl/lower.hpp"
#include "validate/validate.hpp"

int main() {
  using namespace vc;

  minic::Program program = minic::parse_program(R"(
    global f64 alt_hold = 0.0;
    func f64 altitude_loop(f64 alt_error, f64 vs) {
      local f64 p;
      local f64 d;
      p = alt_error * 0.12;
      d = vs * -0.45;
      alt_hold = fmin(fmax(alt_hold + (p + d) * 0.02, -5.0), 5.0);
      return alt_hold;
    }
  )",
                                                "tv_demo");
  minic::type_check(program);

  // 1. Validated compilation: every RTL pass is checked (symbolically for
  //    CSE, differentially for all), and the final binary is cross-checked
  //    against the interpreter.
  std::puts("validated compilation of every configuration:");
  for (driver::Config config : driver::kAllConfigs) {
    const driver::Compiled compiled =
        validate::validated_compile(program, config, 16, 2026);
    std::printf("  %-16s OK  (%u bytes of code)\n",
                driver::to_string(config).c_str(),
                compiled.image.code_size_of("altitude_loop"));
  }

  // 2. Inject a miscompilation the way a buggy CSE might: reuse the "wrong"
  //    available expression (p+d where p-d was needed).
  std::puts("\ninjecting a defect into the optimizer output...");
  rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                         rtl::LowerMode::Value);
  rtl::remove_unreachable_blocks(fn);
  const rtl::Function before = fn;
  opt::common_subexpression_elimination(fn);

  rtl::Function bad = fn;
  for (auto& bb : bad.blocks) {
    for (auto& ins : bb.instrs) {
      if (ins.op == rtl::Opcode::Bin && ins.bin_op == minic::BinOp::FAdd) {
        ins.bin_op = minic::BinOp::FSub;  // the "defect"
        goto mutated;
      }
    }
  }
mutated:
  const validate::CheckResult symbolic =
      validate::check_structure_preserving(before, bad);
  std::printf("  symbolic checker:     %s\n",
              symbolic.ok ? "ACCEPTED (!!)"
                          : ("rejected — " + symbolic.message).c_str());
  const validate::CheckResult differential =
      validate::differential_check(program, before, bad, 24, 7);
  std::printf("  differential checker: %s\n",
              differential.ok ? "ACCEPTED (!!)"
                              : ("rejected — " + differential.message).c_str());

  std::puts("\nA rejected pass aborts compilation: this is the \"verified "
            "translation validation\"\nroute the paper discusses as the "
            "practical path to certification credit (§4).");
  return symbolic.ok || differential.ok ? 1 : 0;
}
