// A complete fly-by-wire scenario (the workload class of the paper's
// introduction): a pitch-axis control law with envelope protection is
// specified as a SCADE-like block diagram, run through the qualified code
// generator, compiled under all four configurations, executed over a flight
// profile on the machine simulator, and bounded by the static WCET analyzer.
//
// Build & run:  ./build/examples/flight_control
#include <cmath>
#include <cstdio>

#include "dataflow/acg.hpp"
#include "dataflow/node.hpp"
#include "dataflow/simulator.hpp"
#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "minic/printer.hpp"
#include "minic/typecheck.hpp"
#include "wcet/wcet.hpp"

using namespace vc;
using dataflow::SymbolKind;

namespace {

dataflow::Node build_pitch_law() {
  dataflow::Node n("pitch");
  // Inputs: stick command [-1, 1], measured pitch rate (deg/s), load factor.
  const auto stick = n.add(SymbolKind::InputF);
  const auto q_meas = n.add(SymbolKind::InputF);
  const auto nz_meas = n.add(SymbolKind::InputF);

  // Stick shaping: deadzone, then a nonlinear feel curve.
  const auto dz = n.add(SymbolKind::Deadzone, {stick}, {0.05});
  const auto shaped = n.add(
      SymbolKind::Lookup1D, {dz}, {-1.0, 1.0},
      {-25.0, -15.0, -8.0, -3.0, 0.0, 3.0, 8.0, 15.0, 25.0});

  // Sensor conditioning.
  const auto q_filt = n.add(SymbolKind::FirstOrderLag, {q_meas}, {0.35});
  const auto nz_avg = n.add(SymbolKind::MovingAverage, {nz_meas}, {8});

  // C* style command: shaped stick minus pitch-rate damping.
  const auto damping = n.add(SymbolKind::Gain, {q_filt}, {2.2});
  const auto cmd = n.add(SymbolKind::Sub, {shaped, damping});

  // Flight-envelope protection: relax authority outside -1g .. +2.5g.
  const auto nz_hi = n.add(SymbolKind::ConstF, {}, {2.5});
  const auto nz_lo = n.add(SymbolKind::ConstF, {}, {-1.0});
  const auto over = n.add(SymbolKind::CmpGt, {nz_avg, nz_hi});
  const auto under = n.add(SymbolKind::CmpLt, {nz_avg, nz_lo});
  const auto violation = n.add(SymbolKind::LogicOr, {over, under});
  const auto relaxed = n.add(SymbolKind::Gain, {cmd}, {0.25});
  const auto protected_cmd =
      n.add(SymbolKind::Switch, {violation, relaxed, cmd});

  // Elevator demand: integrate, rate-limit, saturate.
  const auto integ = n.add(SymbolKind::Integrator, {protected_cmd},
                           {0.02, -30.0, 30.0});
  const auto rate = n.add(SymbolKind::RateLimiter, {integ}, {3.0, 3.0});
  const auto elevator = n.add(SymbolKind::Saturate, {rate}, {-20.0, 20.0});
  n.add(SymbolKind::Output, {elevator});
  n.add(SymbolKind::Output, {integ});
  return n;
}

}  // namespace

int main() {
  const dataflow::Node law = build_pitch_law();

  // Qualified code generation: block diagram -> mini-C.
  minic::Program program;
  program.name = "flight_control";
  dataflow::generate_node(law, &program);
  minic::type_check(program);
  std::puts("=== generated mini-C (excerpt) ===");
  const std::string source = minic::print_program(program);
  std::fwrite(source.data(), 1, std::min<std::size_t>(source.size(), 1200),
              stdout);
  std::puts("...\n");

  // Compile all configurations; fly a 2-second profile (100 Hz) through the
  // verified binary, cross-checked against the block-diagram simulator.
  const std::string fn = dataflow::step_function_name(law);
  const driver::Compiled verified =
      driver::compile_program(program, driver::Config::Verified);
  machine::Machine machine(verified.image);
  dataflow::NodeSimulator reference(law);

  std::puts("=== flight profile on the verified binary ===");
  std::puts("  t     stick   q(deg/s)   nz(g)   elevator(deg)");
  int mismatches = 0;
  for (int step = 0; step < 200; ++step) {
    const double t = step * 0.01;
    const double stick = t < 0.5 ? 0.0 : std::sin((t - 0.5) * 3.0) * 0.8;
    const double q = std::sin(t * 2.0) * 4.0;
    const double nz = 1.0 + (t > 1.2 ? 1.8 : 0.2) * std::fabs(stick);

    const auto outputs = reference.step({stick, q, nz}, {});
    machine.call(fn,
                 {minic::Value::of_f64(stick), minic::Value::of_f64(q),
                  minic::Value::of_f64(nz)},
                 minic::Type::I32);
    const minic::Value elevator =
        machine.read_global(dataflow::output_global(law, 0), 0,
                            minic::Type::F64);
    if (!(minic::Value::of_f64(outputs[0]) == elevator)) ++mismatches;
    if (step % 40 == 0)
      std::printf("%5.2f  %6.2f   %8.2f  %6.2f   %12.4f\n", t, stick, q, nz,
                  elevator.f);
  }
  std::printf("\nbinary vs block-diagram simulator mismatches: %d (must be "
              "0)\n\n",
              mismatches);

  // Certification view: per-configuration WCET of the control law.
  std::puts("=== WCET budget per compiler configuration (10 ms frame) ===");
  for (driver::Config config : driver::kAllConfigs) {
    const driver::Compiled compiled = driver::compile_program(program, config);
    const wcet::WcetResult r = wcet::analyze_wcet(compiled.image, fn);
    std::printf("  %-16s WCET %6llu cycles, %zu loop bounds",
                driver::to_string(config).c_str(),
                static_cast<unsigned long long>(r.wcet_cycles),
                r.loops.size());
    for (const auto& loop : r.loops)
      std::printf(" [%lld%s]", static_cast<long long>(loop.bound),
                  loop.derived ? " derived" : " annotated");
    std::puts("");
  }
  return mismatches == 0 ? 0 : 1;
}
