// A miniature fly-by-wire computer: several control nodes scheduled by a
// cyclic executive, signals routed between them, the whole frame executed on
// the machine simulator and budgeted with per-node WCET bounds — the shape
// of the system whose ~2500 nodes the paper's evaluation compiles.
//
// Build & run:  ./build/examples/cyclic_executive
#include <cstdio>

#include "dataflow/generator.hpp"
#include "driver/system.hpp"
#include "support/rng.hpp"

using namespace vc;
using dataflow::SymbolKind;

int main() {
  driver::FlightSystem system;

  // Sensor conditioning node: filters the raw angle-of-attack signal.
  {
    dataflow::Node n("aoa_filter");
    const auto raw = n.add(SymbolKind::InputF);
    const auto lag = n.add(SymbolKind::FirstOrderLag, {raw}, {0.25});
    const auto avg = n.add(SymbolKind::MovingAverage, {lag}, {6});
    n.add(SymbolKind::Output, {avg});
    system.add_node(std::move(n));
  }
  // Protection node: computes an authority factor from filtered AoA.
  {
    dataflow::Node n("protection");
    const auto aoa = n.add(SymbolKind::InputF);
    const auto limit = n.add(SymbolKind::ConstF, {}, {12.0});
    const auto over = n.add(SymbolKind::CmpGt, {aoa, limit});
    const auto full = n.add(SymbolKind::ConstF, {}, {1.0});
    const auto reduced = n.add(SymbolKind::ConstF, {}, {0.3});
    const auto authority = n.add(SymbolKind::Switch, {over, reduced, full});
    n.add(SymbolKind::Output, {authority});
    system.add_node(std::move(n));
  }
  // Command node: pilot order scaled by authority, rate limited.
  {
    dataflow::Node n("command");
    const auto order = n.add(SymbolKind::InputF);
    const auto authority = n.add(SymbolKind::InputF);
    const auto scaled = n.add(SymbolKind::Mul, {order, authority});
    const auto rl = n.add(SymbolKind::RateLimiter, {scaled}, {2.0, 2.0});
    const auto sat = n.add(SymbolKind::Saturate, {rl}, {-15.0, 15.0});
    n.add(SymbolKind::Output, {sat});
    system.add_node(std::move(n));
  }

  system.connect("aoa_filter", 0, "protection", 0);
  system.connect("protection", 0, "command", 1);
  system.elaborate();

  const driver::Compiled compiled = system.compile(driver::Config::Verified);
  machine::Machine m(compiled.image);

  // Certification budget: sum of node WCETs per frame.
  const auto budget = system.frame_wcet(compiled);
  std::puts("per-node WCET budget (verified configuration):");
  for (const auto& [name, cycles] : budget.per_node)
    std::printf("  %-12s %6llu cycles\n", name.c_str(),
                static_cast<unsigned long long>(cycles));
  std::printf("  %-12s %6llu cycles\n", "frame total",
              static_cast<unsigned long long>(budget.total));

  // Fly 100 frames; check the budget holds on every frame.
  std::puts("\n  frame   aoa_raw   order   surface   frame-cycles");
  Rng rng(7);
  std::uint64_t worst = 0;
  for (int frame = 0; frame < 100; ++frame) {
    const double aoa_raw = 8.0 + 6.0 * rng.next_unit();
    const double order = rng.next_double(-10.0, 10.0);
    m.clear_caches();
    const auto stats = system.run_frame(
        m, {{"aoa_filter", {minic::Value::of_f64(aoa_raw)}},
            {"command", {minic::Value::of_f64(order)}}});
    worst = std::max(worst, stats.cycles);
    if (frame % 25 == 0) {
      const minic::Value surface =
          m.read_global("command_out0", 0, minic::Type::F64);
      std::printf("  %5d   %7.2f   %5.2f   %7.3f   %12llu\n", frame, aoa_raw,
                  order, surface.f,
                  static_cast<unsigned long long>(stats.cycles));
    }
  }
  std::printf("\nworst observed frame: %llu cycles; budget %llu cycles (%s)\n",
              static_cast<unsigned long long>(worst),
              static_cast<unsigned long long>(budget.total),
              worst <= budget.total ? "holds" : "VIOLATED");
  return worst <= budget.total ? 0 : 1;
}
