// The §3.4 annotation mechanism end to end: `__annot(...)` statements are
// compiled as pro-forma effects, survive every optimization, and surface in
// the disassembly listing at their final code addresses with their operands
// resolved to machine registers or stack slots — exactly the information the
// auto-generated annotation file hands to the WCET analyzer.
//
// Build & run:  ./build/examples/annotation_wcet
#include <cstdio>

#include "driver/compiler.hpp"
#include "support/strings.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "wcet/wcet.hpp"

int main() {
  using namespace vc;

  minic::Program program = minic::parse_program(R"(
    global f64 gains[16] = {1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16};

    func f64 blend(i32 sectors, f64 x) {
      local f64 acc;
      local i32 i;
      // The scheduler guarantees at most 12 active sectors: knowledge from
      // the design level (Gebhard et al. call this "design-level
      // information") that the analyzer cannot discover in the binary.
      __annot("0 <= %1 <= 12", sectors);
      acc = 0.0;
      i = 0;
      while (i < sectors) {
        __annot("loop <= 12");
        acc = acc + gains[i] * x;
        i = i + 1;
      }
      return acc;
    }
  )",
                                                "annot_demo");
  minic::type_check(program);

  for (driver::Config config :
       {driver::Config::O0Pattern, driver::Config::Verified}) {
    const driver::Compiled compiled = driver::compile_program(program, config);
    std::printf("=== %s ===\n", driver::to_string(config).c_str());

    // The annotation table that accompanies the binary (the "annotation
    // file" of the paper, addresses + final operand locations).
    std::puts("annotation table:");
    for (const auto& entry : compiled.image.annotations) {
      std::printf("  %s  \"%s\"", hex32(entry.addr).c_str(),
                  entry.format.c_str());
      for (const auto& loc : entry.operands)
        std::printf("  %%i -> %s", loc.to_string().c_str());
      std::puts("");
    }

    // WCET with and without consuming the table.
    const wcet::WcetResult with =
        wcet::analyze_wcet(compiled.image, "blend");
    std::printf("WCET with annotations:    %llu cycles\n",
                static_cast<unsigned long long>(with.wcet_cycles));
    wcet::WcetOptions no_annots;
    no_annots.use_annotations = false;
    try {
      const wcet::WcetResult without =
          wcet::analyze_wcet(compiled.image, "blend", no_annots);
      std::printf("WCET without annotations: %llu cycles\n",
                  static_cast<unsigned long long>(without.wcet_cycles));
    } catch (const wcet::WcetError& e) {
      std::printf("WCET without annotations: %s\n", e.what());
    }
    std::puts("");
  }

  // Show the annotation comments embedded in the listing (§3.4's
  // "# annotation:" assembler comments).
  const driver::Compiled compiled =
      driver::compile_program(program, driver::Config::Verified);
  std::puts("=== verified disassembly (excerpt around the loop) ===");
  const std::string listing = compiled.image.disassemble();
  // Print the window around the first annotation comment.
  const std::size_t pos = listing.find("# annotation");
  const std::size_t start = listing.rfind('\n', pos > 400 ? pos - 400 : 0);
  std::fwrite(listing.data() + (start == std::string::npos ? 0 : start), 1,
              std::min<std::size_t>(1400, listing.size() - start), stdout);
  std::puts("...");
  return 0;
}
