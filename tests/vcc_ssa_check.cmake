# Binary-level checks for the SSA CLI surface, driven by ctest:
#   cmake -DVCC=<path to vcc> -DSRC=<path to a .mc program> -P this-file
#
# 1. An unknown step name in --passes / --disable-pass must exit 2 at
#    argument-parse time with a diagnostic that names the offender AND lists
#    the registered steps — never a mid-compile exception (exit 1).
# 2. --ssa conflicts with --passes (the explicit list already decides the
#    pipeline): exit 2.
# 3. A plain --ssa compile must exit 0, and --ssa --dump-after=ssa-gvn must
#    actually print phi instructions — the bracket silently not running
#    would be the worst failure mode.

execute_process(
  COMMAND ${VCC} --passes=ssa-gnv ${SRC}
  RESULT_VARIABLE typo_exit
  ERROR_VARIABLE typo_err)
if(NOT typo_exit EQUAL 2)
  message(FATAL_ERROR
      "vcc --passes=ssa-gnv: expected exit 2 (strict CLI), got ${typo_exit}")
endif()
foreach(needle "unknown pass 'ssa-gnv'" "registered steps" "ssa-gvn")
  string(FIND "${typo_err}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
        "vcc unknown-pass diagnostic is missing '${needle}':\n${typo_err}")
  endif()
endforeach()

execute_process(
  COMMAND ${VCC} --disable-pass=nosuchpass ${SRC}
  RESULT_VARIABLE disable_exit
  ERROR_VARIABLE disable_err)
if(NOT disable_exit EQUAL 2)
  message(FATAL_ERROR
      "vcc --disable-pass=nosuchpass: expected exit 2, got ${disable_exit}")
endif()
string(FIND "${disable_err}" "registered steps" disable_pos)
if(disable_pos EQUAL -1)
  message(FATAL_ERROR
      "vcc --disable-pass diagnostic must list the registered steps:\n"
      "${disable_err}")
endif()

execute_process(
  COMMAND ${VCC} --ssa --passes=constprop ${SRC}
  RESULT_VARIABLE conflict_exit
  ERROR_VARIABLE conflict_err)
if(NOT conflict_exit EQUAL 2)
  message(FATAL_ERROR
      "vcc --ssa --passes=...: expected exit 2 (conflict), got "
      "${conflict_exit}")
endif()
string(FIND "${conflict_err}" "--ssa conflicts with --passes" conflict_pos)
if(conflict_pos EQUAL -1)
  message(FATAL_ERROR
      "vcc --ssa/--passes conflict diagnostic missing:\n${conflict_err}")
endif()

execute_process(
  COMMAND ${VCC} --ssa --config=verified ${SRC}
  RESULT_VARIABLE ssa_exit
  ERROR_VARIABLE ssa_err)
if(NOT ssa_exit EQUAL 0)
  message(FATAL_ERROR
      "vcc --ssa compile failed (exit ${ssa_exit}): ${ssa_err}")
endif()

execute_process(
  COMMAND ${VCC} --ssa --config=verified --dump-after=ssa-build ${SRC}
  RESULT_VARIABLE dump_exit
  OUTPUT_VARIABLE dump_out
  ERROR_VARIABLE dump_err)
if(NOT dump_exit EQUAL 0)
  message(FATAL_ERROR
      "vcc --ssa --dump-after=ssa-build failed (exit ${dump_exit}): "
      "${dump_err}")
endif()
foreach(needle "after ssa-build" "phi")
  string(FIND "${dump_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
        "vcc --ssa --dump-after=ssa-build output is missing '${needle}':\n"
        "${dump_out}")
  endif()
endforeach()
