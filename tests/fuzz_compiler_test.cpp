// Compiler fuzzing: randomly generated well-typed mini-C programs (a wider
// space than the ACG emits: nested control flow, integer bit-twiddling,
// masked dynamic array indexing, conversions, guarded divisions) are
// compiled under every configuration and cross-checked against the
// interpreter over stateful call sequences, including trap parity.
#include <gtest/gtest.h>

#include <set>

#include "minic/printer.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "support/rng.hpp"
#include "validate/validate.hpp"

namespace vc {
namespace {

using minic::BinOp;
using minic::ExprPtr;
using minic::StmtPtr;
using minic::Type;
using minic::UnOp;

class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(std::uint64_t seed) : rng_(seed) {}

  minic::Program generate() {
    minic::Program program;
    program.name = "fuzz";
    // A few globals: two scalars per type and one power-of-two array.
    program.globals.push_back({"gf0", Type::F64, 1, {1.5}});
    program.globals.push_back({"gf1", Type::F64, 1, {-0.25}});
    program.globals.push_back({"gi0", Type::I32, 1, {3}});
    program.globals.push_back({"garr", Type::F64, 8,
                               {0, 1, 2, 3, 4, 5, 6, 7}});

    minic::Function fn;
    fn.name = "fuzzed";
    fn.has_return = true;
    fn.return_type = Type::F64;
    fn.params.push_back({"pf0", Type::F64});
    fn.params.push_back({"pf1", Type::F64});
    fn.params.push_back({"pi0", Type::I32});
    fn.locals.push_back({"lf0", Type::F64});
    fn.locals.push_back({"lf1", Type::F64});
    fn.locals.push_back({"li0", Type::I32});
    fn.locals.push_back({"li1", Type::I32});
    fn.locals.push_back({"loop0", Type::I32});
    fn.locals.push_back({"loop1", Type::I32});

    fn.body = gen_block(3);
    fn.body.push_back(minic::return_stmt(gen_f64(3)));
    program.functions.push_back(std::move(fn));
    minic::type_check(program);
    return program;
  }

 private:
  const char* f64_vars_[4] = {"pf0", "pf1", "lf0", "lf1"};
  const char* i32_vars_[3] = {"pi0", "li0", "li1"};

  ExprPtr gen_f64(int depth) {
    if (depth <= 0 || rng_.next_bool(0.3)) {
      switch (rng_.next_below(4)) {
        case 0: return minic::float_lit(rng_.next_double(-16.0, 16.0));
        case 1:
          return minic::local_ref(f64_vars_[rng_.next_below(4)], Type::F64);
        case 2:
          return minic::global_ref(rng_.next_bool() ? "gf0" : "gf1",
                                   Type::F64);
        default:
          // garr[i32 & 7]: always in bounds.
          return minic::index_ref(
              "garr",
              minic::binary(BinOp::IAnd, gen_i32(depth - 1),
                            minic::int_lit(7)),
              Type::F64);
      }
    }
    switch (rng_.next_below(8)) {
      case 0:
        return minic::binary(BinOp::FAdd, gen_f64(depth - 1),
                             gen_f64(depth - 1));
      case 1:
        return minic::binary(BinOp::FSub, gen_f64(depth - 1),
                             gen_f64(depth - 1));
      case 2:
        return minic::binary(BinOp::FMul, gen_f64(depth - 1),
                             gen_f64(depth - 1));
      case 3:
        // Guarded division: |d| + 0.5 keeps it away from zero.
        return minic::binary(
            BinOp::FDiv, gen_f64(depth - 1),
            minic::binary(BinOp::FAdd,
                          minic::unary(UnOp::FAbs, gen_f64(depth - 1)),
                          minic::float_lit(0.5)));
      case 4:
        return minic::binary(rng_.next_bool() ? BinOp::FMin : BinOp::FMax,
                             gen_f64(depth - 1), gen_f64(depth - 1));
      case 5:
        return minic::unary(rng_.next_bool() ? UnOp::FNeg : UnOp::FAbs,
                            gen_f64(depth - 1));
      case 6:
        return minic::unary(UnOp::I2F, gen_i32(depth - 1));
      default:
        return minic::select(gen_bool(depth - 1), gen_f64(depth - 1),
                             gen_f64(depth - 1));
    }
  }

  ExprPtr gen_i32(int depth) {
    if (depth <= 0 || rng_.next_bool(0.3)) {
      switch (rng_.next_below(3)) {
        case 0:
          return minic::int_lit(
              static_cast<std::int32_t>(rng_.next_range(-64, 64)));
        case 1:
          return minic::local_ref(i32_vars_[rng_.next_below(3)], Type::I32);
        default:
          return minic::global_ref("gi0", Type::I32);
      }
    }
    switch (rng_.next_below(8)) {
      case 0:
        return minic::binary(BinOp::IAdd, gen_i32(depth - 1),
                             gen_i32(depth - 1));
      case 1:
        return minic::binary(BinOp::ISub, gen_i32(depth - 1),
                             gen_i32(depth - 1));
      case 2:
        return minic::binary(BinOp::IMul, gen_i32(depth - 1),
                             gen_i32(depth - 1));
      case 3:
        // Guarded integer division: denominator (d & 15) + 1 in [1, 16].
        return minic::binary(
            rng_.next_bool() ? BinOp::IDiv : BinOp::IRem, gen_i32(depth - 1),
            minic::binary(BinOp::IAdd,
                          minic::binary(BinOp::IAnd, gen_i32(depth - 1),
                                        minic::int_lit(15)),
                          minic::int_lit(1)));
      case 4: {
        const BinOp ops[] = {BinOp::IAnd, BinOp::IOr, BinOp::IXor};
        return minic::binary(ops[rng_.next_below(3)], gen_i32(depth - 1),
                             gen_i32(depth - 1));
      }
      case 5:
        return minic::binary(rng_.next_bool() ? BinOp::IShl : BinOp::IShr,
                             gen_i32(depth - 1), gen_i32(depth - 1));
      case 6:
        return minic::unary(rng_.next_bool() ? UnOp::INeg : UnOp::INot,
                            gen_i32(depth - 1));
      default:
        return minic::unary(UnOp::F2I,
                            minic::binary(BinOp::FMin,
                                          minic::binary(BinOp::FMax,
                                                        gen_f64(depth - 1),
                                                        minic::float_lit(-1e6)),
                                          minic::float_lit(1e6)));
    }
  }

  ExprPtr gen_bool(int depth) {
    const bool use_float = rng_.next_bool();
    if (use_float) {
      const BinOp ops[] = {BinOp::FCmpEq, BinOp::FCmpNe, BinOp::FCmpLt,
                           BinOp::FCmpLe, BinOp::FCmpGt, BinOp::FCmpGe};
      return minic::binary(ops[rng_.next_below(6)], gen_f64(depth - 1),
                           gen_f64(depth - 1));
    }
    const BinOp ops[] = {BinOp::ICmpEq, BinOp::ICmpNe, BinOp::ICmpLt,
                         BinOp::ICmpLe, BinOp::ICmpGt, BinOp::ICmpGe};
    return minic::binary(ops[rng_.next_below(6)], gen_i32(depth - 1),
                         gen_i32(depth - 1));
  }

  std::vector<StmtPtr> gen_block(int depth) {
    std::vector<StmtPtr> block;
    const int n = static_cast<int>(rng_.next_range(2, 5));
    for (int i = 0; i < n; ++i) block.push_back(gen_stmt(depth));
    return block;
  }

  StmtPtr gen_stmt(int depth) {
    const double roll = rng_.next_unit();
    if (depth <= 0 || roll < 0.5) {
      // Assignment to a random lvalue.
      switch (rng_.next_below(5)) {
        case 0:
          return minic::assign_local(f64_vars_[2 + rng_.next_below(2)],
                                     gen_f64(2));
        case 1:
          return minic::assign_local(i32_vars_[1 + rng_.next_below(2)],
                                     gen_i32(2));
        case 2:
          return minic::assign_global(rng_.next_bool() ? "gf0" : "gf1",
                                      gen_f64(2));
        case 3:
          return minic::assign_global("gi0", gen_i32(2));
        default:
          return minic::assign_element(
              "garr",
              minic::binary(BinOp::IAnd, gen_i32(1), minic::int_lit(7)),
              gen_f64(2));
      }
    }
    if (roll < 0.8) {
      return minic::if_stmt(gen_bool(2), gen_block(depth - 1),
                            rng_.next_bool() ? gen_block(depth - 1)
                                             : std::vector<StmtPtr>{});
    }
    // Canonical counted loop with a constant bound (auto-annotated). Pick a
    // loop variable that no enclosing loop is using (MISRA 13.6 rule).
    std::string var;
    for (const char* candidate : {"loop0", "loop1"}) {
      if (active_loops_.count(candidate) == 0) {
        var = candidate;
        break;
      }
    }
    if (var.empty())
      return minic::assign_local("lf0", gen_f64(2));  // both counters busy
    active_loops_.insert(var);
    StmtPtr loop = minic::for_stmt(
        var, minic::int_lit(0),
        minic::int_lit(static_cast<std::int32_t>(rng_.next_range(1, 6))),
        gen_block(depth - 1));
    active_loops_.erase(var);
    return loop;
  }

  Rng rng_;
  std::set<std::string> active_loops_;
};

class CompilerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CompilerFuzz, AllConfigsMatchInterpreter) {
  const std::uint64_t seed = GetParam();
  for (int variant = 0; variant < 6; ++variant) {
    ProgramFuzzer fuzzer(seed * 1000 + static_cast<std::uint64_t>(variant));
    const minic::Program program = fuzzer.generate();
    for (driver::Config config : driver::kAllConfigs) {
      const driver::Compiled compiled =
          driver::compile_program(program, config);
      const auto result = validate::cross_check_machine(
          program, compiled, "fuzzed", 10, seed ^ 0xF00D);
      ASSERT_TRUE(result.ok)
          << "seed " << seed << " variant " << variant << " config "
          << driver::to_string(config) << ": " << result.message << "\n"
          << minic::print_program(program);
    }
  }
}

TEST_P(CompilerFuzz, FuzzedProgramsRoundTripThroughThePrinter) {
  // The parser canonicalizes (it folds negated literals), so a directly
  // built AST may print differently once; after one parse the fixed point
  // must be reached: print(parse(text)) == print(parse(print(parse(text)))).
  ProgramFuzzer fuzzer(GetParam() ^ 0xABCD);
  const minic::Program program = fuzzer.generate();
  const std::string text0 = minic::print_program(program);
  const minic::Program p1 = minic::parse_program(text0);
  minic::type_check(p1);
  const std::string text1 = minic::print_program(p1);
  const minic::Program p2 = minic::parse_program(text1);
  minic::type_check(p2);
  EXPECT_EQ(minic::print_program(p2), text1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompilerFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u));

}  // namespace
}  // namespace vc
