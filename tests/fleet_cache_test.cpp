// Fleet-level caching contract: a warm rerun through the artifact store
// must produce bit-identical records (modulo timing and cache-outcome
// fields) at any worker count; a corrupted store entry must be detected,
// counted, and transparently recompiled; image-only hits must recompute
// run-dependent results from the cached executable; and the JSON campaign
// report must round-trip the record array. Complements fleet_test.cpp
// (thread-count invariance without a store) and artifact_test.cpp (store
// unit tests).
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <stdexcept>

#include "artifact/store.hpp"
#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "driver/fleet.hpp"
#include "minic/printer.hpp"
#include "minic/typecheck.hpp"
#include "support/json.hpp"

namespace vc {
namespace {

namespace fs = std::filesystem;

struct Suite {
  std::vector<minic::Program> programs;
  std::vector<driver::FleetUnit> units;
};

Suite small_suite(int count) {
  Suite s;
  const std::vector<dataflow::Node> nodes =
      dataflow::generate_suite(20110318, count);
  for (const dataflow::Node& node : nodes) {
    minic::Program program;
    program.name = node.name();
    dataflow::generate_node(node, &program);
    minic::type_check(program);
    s.programs.push_back(std::move(program));
  }
  for (std::size_t i = 0; i < nodes.size(); ++i)
    s.units.push_back({nodes[i].name(), &s.programs[i],
                       dataflow::step_function_name(nodes[i])});
  return s;
}

driver::FleetOptions cached_options(artifact::ArtifactStore* store,
                                    int jobs) {
  driver::FleetOptions options;
  options.jobs = jobs;
  options.exec_cycles = 5;
  options.wcet = true;
  options.wcet_nocache = true;
  options.store = store;
  return options;
}

/// The warm-rerun determinism contract: everything except wall times and
/// cache-outcome flags must be bit-identical.
void expect_records_identical(const driver::FleetReport& a,
                              const driver::FleetReport& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const driver::FleetRecord& ra = a.records[i];
    const driver::FleetRecord& rb = b.records[i];
    SCOPED_TRACE(ra.name + "/" + driver::to_string(ra.config));
    EXPECT_EQ(ra.name, rb.name);
    EXPECT_EQ(ra.config, rb.config);
    EXPECT_EQ(ra.ok, rb.ok);
    EXPECT_EQ(ra.error, rb.error);
    EXPECT_EQ(ra.code_bytes, rb.code_bytes);
    EXPECT_EQ(ra.exec.cycles, rb.exec.cycles);
    EXPECT_EQ(ra.exec.instructions, rb.exec.instructions);
    EXPECT_EQ(ra.exec.dcache_reads, rb.exec.dcache_reads);
    EXPECT_EQ(ra.exec.dcache_writes, rb.exec.dcache_writes);
    EXPECT_EQ(ra.exec.dcache_read_misses, rb.exec.dcache_read_misses);
    EXPECT_EQ(ra.exec.dcache_write_misses, rb.exec.dcache_write_misses);
    EXPECT_EQ(ra.exec.ifetch_line_misses, rb.exec.ifetch_line_misses);
    EXPECT_EQ(ra.exec.taken_branches, rb.exec.taken_branches);
    EXPECT_EQ(ra.observed_max_cycles, rb.observed_max_cycles);
    EXPECT_EQ(ra.wcet_cycles, rb.wcet_cycles);
    EXPECT_EQ(ra.wcet_nocache_cycles, rb.wcet_nocache_cycles);
  }
}

class FleetCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("vcflight-fleet-cache-" + std::string(::testing::UnitTest::
                                                       GetInstance()
                                                           ->current_test_info()
                                                           ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(FleetCacheTest, WarmRerunIsBitIdenticalSerialAndParallel) {
  const Suite suite = small_suite(4);
  artifact::ArtifactStore store({dir_, 0});

  const driver::FleetReport cold =
      driver::run_fleet(suite.units, cached_options(&store, 1));
  EXPECT_FALSE(cold.records.empty());
  EXPECT_TRUE(cold.cache_enabled);
  EXPECT_EQ(cold.cache_misses, cold.records.size());
  EXPECT_EQ(cold.cache_full_hits, 0u);

  // Warm rerun, serial: every job replays from the store.
  const driver::FleetReport warm1 =
      driver::run_fleet(suite.units, cached_options(&store, 1));
  EXPECT_EQ(warm1.cache_full_hits, warm1.records.size());
  EXPECT_EQ(warm1.cache_misses, 0u);
  expect_records_identical(cold, warm1);
  for (const driver::FleetRecord& r : warm1.records) EXPECT_TRUE(r.cache_hit);

  // Warm rerun, 8 workers: same records, same hits, regardless of schedule.
  const driver::FleetReport warm8 =
      driver::run_fleet(suite.units, cached_options(&store, 8));
  EXPECT_EQ(warm8.cache_full_hits, warm8.records.size());
  expect_records_identical(cold, warm8);
}

TEST_F(FleetCacheTest, ColdRunsAtDifferentWorkerCountsPublishIdentically) {
  const Suite suite = small_suite(3);
  // Two independent stores, one cold run each at different worker counts:
  // the published artifacts must be interchangeable, so a warm run against
  // either store replays the same records.
  artifact::ArtifactStore store_a({dir_ + "-a", 0});
  artifact::ArtifactStore store_b({dir_ + "-b", 0});
  const driver::FleetReport cold_serial =
      driver::run_fleet(suite.units, cached_options(&store_a, 1));
  const driver::FleetReport cold_parallel =
      driver::run_fleet(suite.units, cached_options(&store_b, 8));
  expect_records_identical(cold_serial, cold_parallel);
  const driver::FleetReport warm_cross =
      driver::run_fleet(suite.units, cached_options(&store_b, 1));
  EXPECT_EQ(warm_cross.cache_full_hits, warm_cross.records.size());
  expect_records_identical(cold_serial, warm_cross);
  fs::remove_all(dir_ + "-a");
  fs::remove_all(dir_ + "-b");
}

TEST_F(FleetCacheTest, CorruptedEntryIsRecompiledTransparently) {
  const Suite suite = small_suite(2);
  artifact::ArtifactStore store({dir_, 0});
  const driver::FleetReport cold =
      driver::run_fleet(suite.units, cached_options(&store, 1));

  // Deliberately corrupt every stored image on disk (flip one byte each).
  std::size_t corrupted = 0;
  for (const auto& shard : fs::directory_iterator(dir_)) {
    if (!shard.is_directory()) continue;
    for (const auto& entry : fs::directory_iterator(shard.path())) {
      const fs::path image = entry.path() / "image.bin";
      if (!fs::exists(image)) continue;
      std::fstream f(image, std::ios::in | std::ios::out | std::ios::binary);
      ASSERT_TRUE(f.good());
      char byte = 0;
      f.read(&byte, 1);
      f.seekp(0);
      byte = static_cast<char>(byte ^ 0xA5);
      f.write(&byte, 1);
      ++corrupted;
    }
  }
  ASSERT_EQ(corrupted, cold.records.size());

  // The rerun must detect every corrupt entry, count it, recompile cold,
  // and still produce bit-identical results.
  const driver::FleetReport rerun =
      driver::run_fleet(suite.units, cached_options(&store, 1));
  EXPECT_EQ(rerun.cache_full_hits, 0u);
  EXPECT_EQ(rerun.cache_misses, rerun.records.size());
  EXPECT_GE(store.stats().corrupt_dropped, corrupted);
  expect_records_identical(cold, rerun);

  // The recompiled artifacts were re-published: a third run is all hits.
  const driver::FleetReport warm =
      driver::run_fleet(suite.units, cached_options(&store, 1));
  EXPECT_EQ(warm.cache_full_hits, warm.records.size());
  expect_records_identical(cold, warm);
}

TEST_F(FleetCacheTest, ChangedRunParametersReuseTheCachedImage) {
  const Suite suite = small_suite(2);
  artifact::ArtifactStore store({dir_, 0});
  driver::run_fleet(suite.units, cached_options(&store, 1));

  // Same compile key, different run parameters: the executable is reused
  // (no compile), execution/WCET are recomputed with the new parameters.
  driver::FleetOptions changed = cached_options(&store, 1);
  changed.exec_cycles = 9;
  changed.suite_seed = 12345;
  const driver::FleetReport image_hits =
      driver::run_fleet(suite.units, changed);
  EXPECT_EQ(image_hits.cache_image_hits, image_hits.records.size());
  EXPECT_EQ(image_hits.cache_full_hits, 0u);
  for (const driver::FleetRecord& r : image_hits.records) {
    EXPECT_TRUE(r.cache_image_hit);
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.exec.cycles, 0u);
  }

  // The new parameter stanza was appended: rerunning the changed options is
  // now a full hit, and the original options still hit too.
  const driver::FleetReport warm_changed =
      driver::run_fleet(suite.units, changed);
  EXPECT_EQ(warm_changed.cache_full_hits, warm_changed.records.size());
  expect_records_identical(image_hits, warm_changed);
  const driver::FleetReport warm_original =
      driver::run_fleet(suite.units, cached_options(&store, 1));
  EXPECT_EQ(warm_original.cache_full_hits, warm_original.records.size());
}

TEST_F(FleetCacheTest, NegativeJobsIsRejected) {
  const Suite suite = small_suite(1);
  driver::FleetOptions options;
  options.jobs = -1;
  EXPECT_THROW(driver::run_fleet(suite.units, options),
               std::invalid_argument);
  options.jobs = -100;
  EXPECT_THROW(driver::run_fleet(suite.units, options),
               std::invalid_argument);
}

TEST_F(FleetCacheTest, ReportJsonRoundTripsTheRecordArray) {
  const Suite suite = small_suite(2);
  artifact::ArtifactStore store({dir_, 0});
  const driver::FleetReport report =
      driver::run_fleet(suite.units, cached_options(&store, 2));

  const json::Value doc = driver::to_json(report);
  EXPECT_EQ(doc.at("schema").as_string(), "vcflight-fleet-report-v7");
  EXPECT_EQ(doc.at("units").as_u64(), report.units);
  EXPECT_EQ(doc.at("cache").at("enabled").as_bool(), true);
  // v2 carries the per-pass telemetry array (ordered by pipeline position).
  const json::Array& passes = doc.at("pass_stats").as_array();
  ASSERT_FALSE(passes.empty());
  for (const json::Value& p : passes) {
    EXPECT_FALSE(p.at("name").as_string().empty());
    EXPECT_GE(p.at("runs").as_u64(), 0u);
  }
  // v3 adds the WCET-engine stanza and per-record IPET fields.
  EXPECT_EQ(doc.at("wcet").at("engine").as_string(),
            wcet::to_string(report.wcet_engine));
  EXPECT_EQ(doc.at("wcet").at("ipet_records").as_u64(), report.ipet_records);
  // v4 adds the execution-monitor stanza and per-record monitor fields.
  EXPECT_EQ(doc.at("monitor").at("mode").as_string(),
            machine::to_string(report.monitor_mode));
  EXPECT_EQ(doc.at("monitor").at("violations").as_u64(),
            report.monitor_violations);
  // v5 adds the vccd service stanza: disabled (and bare) for offline
  // campaigns like this one, populated by the daemon's report path.
  EXPECT_FALSE(doc.at("service").at("enabled").as_bool(true));
  EXPECT_TRUE(doc.at("service").at("shards").is_null());
  const json::Array& records = doc.at("records").as_array();
  ASSERT_EQ(records.size(), report.records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const json::Value& r = records[i];
    EXPECT_EQ(r.at("name").as_string(), report.records[i].name);
    EXPECT_EQ(r.at("ok").as_bool(), report.records[i].ok);
    EXPECT_EQ(r.at("wcet_cycles").as_u64(), report.records[i].wcet_cycles);
    EXPECT_EQ(r.at("wcet_ipet_cycles").as_u64(),
              report.records[i].wcet_ipet_cycles);
    EXPECT_EQ(r.at("wcet_ipet_certified").as_bool(),
              report.records[i].wcet_ipet_certified);
    EXPECT_EQ(r.at("exec").at("cycles").as_u64(),
              report.records[i].exec.cycles);
  }

  // write_report_json emits a parseable file with the same document.
  const std::string path = dir_ + "-report.json";
  ASSERT_TRUE(driver::write_report_json(report, path));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const json::Parsed parsed = json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.value.dump(), doc.dump());
  fs::remove(path);
}

TEST(FleetReportServiceStanzaTest, RoundTripsWhenEnabled) {
  driver::FleetReport report;
  report.service.enabled = true;
  report.service.shards = 4;
  report.service.requests = 123;
  report.service.incremental_hits = 45;
  report.service.queue_peak = 9;
  report.service.shard_restarts = 1;
  const json::Value doc = driver::to_json(report);
  EXPECT_EQ(doc.at("schema").as_string(), "vcflight-fleet-report-v7");
  const json::Value& service = doc.at("service");
  EXPECT_TRUE(service.at("enabled").as_bool(false));
  EXPECT_EQ(service.at("shards").as_i64(), 4);
  EXPECT_EQ(service.at("requests").as_u64(), 123u);
  EXPECT_EQ(service.at("incremental_hits").as_u64(), 45u);
  EXPECT_EQ(service.at("queue_peak").as_u64(), 9u);
  EXPECT_EQ(service.at("shard_restarts").as_u64(), 1u);
}

}  // namespace
}  // namespace vc
