// The per-job scratch layer behind the fleet runner's steady-state
// allocation behavior: the bump arena (alignment, chunk reuse across
// reset(), oversized-block fallback, ASan poisoning of free space), the
// symbol interner, the workspace scratch pools, the heap-allocation
// counters, and the allocation-regression pin that keeps the per-job
// compile path from quietly growing new heap traffic.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <set>

#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "driver/compiler.hpp"
#include "minic/typecheck.hpp"
#include "support/alloccount.hpp"
#include "support/arena.hpp"
#include "support/diagnostics.hpp"
#include "support/symtab.hpp"
#include "support/workspace.hpp"
#include "wcet/wcet.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define VC_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VC_TEST_ASAN 1
#endif
#endif
#if defined(VC_TEST_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace vc {
namespace {

// ------------------------------------------------------------------ arena

TEST(ArenaTest, RespectsRequestedAlignment) {
  Arena arena;
  for (std::size_t align : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                            std::size_t{8}, std::size_t{16}}) {
    // Odd sizes force the bump pointer out of natural alignment, so the
    // next request must realign.
    void* a = arena.allocate(3, 1);
    void* b = arena.allocate(24, align);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % align, 0u)
        << "align " << align;
  }
}

TEST(ArenaTest, AllocArrayZeroInitializesAndIsWritable) {
  Arena arena;
  std::uint32_t* xs = arena.alloc_array<std::uint32_t>(1000);
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(xs[i], 0u);
  for (std::size_t i = 0; i < 1000; ++i) xs[i] = static_cast<std::uint32_t>(i);
  EXPECT_EQ(xs[999], 999u);
}

TEST(ArenaTest, ResetReusesChunksInsteadOfGrowing) {
  Arena arena(4096);
  auto fill = [&] {
    for (int i = 0; i < 64; ++i) (void)arena.alloc_array<std::uint64_t>(32);
  };
  fill();
  const std::size_t chunks_after_first_epoch = arena.chunk_count();
  EXPECT_GE(chunks_after_first_epoch, 2u);  // 64*256B does not fit one chunk
  for (int epoch = 0; epoch < 10; ++epoch) {
    arena.reset();
    fill();
  }
  // Steady state: the same workload re-runs inside the chunks the first
  // epoch created; reset() must never hand the memory back.
  EXPECT_EQ(arena.chunk_count(), chunks_after_first_epoch);
}

TEST(ArenaTest, ResetRecyclesAddresses) {
  Arena arena;
  void* first = arena.allocate(128, 8);
  arena.reset();
  void* again = arena.allocate(128, 8);
  EXPECT_EQ(first, again);  // bump pointer rewound to the same chunk start
}

TEST(ArenaTest, OversizedRequestsGetDedicatedBlocks) {
  Arena arena(4096);
  // Larger than half a chunk: served by a dedicated block, so chunk
  // utilization is unaffected and the chunk list does not grow.
  const std::size_t before = arena.chunk_count();
  auto* big = arena.alloc_array<std::uint8_t>(3000);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 3000);  // fully usable
  EXPECT_EQ(arena.chunk_count(), before);
  // Small allocations still bump the normal chunks afterwards.
  void* small = arena.allocate(64, 8);
  EXPECT_NE(small, nullptr);
  arena.reset();  // dedicated blocks are freed here; must not leak (asan)
  void* after = arena.allocate(64, 8);
  EXPECT_NE(after, nullptr);
}

TEST(ArenaTest, CountersTrackTraffic) {
  Arena arena;
  EXPECT_EQ(arena.allocations(), 0u);
  (void)arena.allocate(100, 8);
  (void)arena.allocate(50, 8);
  EXPECT_EQ(arena.allocations(), 2u);
  EXPECT_GE(arena.bytes_allocated(), 150u);
  EXPECT_GE(arena.peak_bytes(), 150u);
  const std::uint64_t bytes_before_reset = arena.bytes_allocated();
  arena.reset();
  (void)arena.allocate(10, 8);
  // bytes_allocated is monotonic across resets (it feeds --profile totals);
  // peak_bytes tracks the high-water mark across epochs.
  EXPECT_GT(arena.bytes_allocated(), bytes_before_reset);
  EXPECT_GE(arena.peak_bytes(), 150u);
}

TEST(ArenaTest, RejectsTinyChunkSize) {
  EXPECT_THROW(Arena arena(16), InternalError);
}

#if defined(VC_TEST_ASAN)
TEST(ArenaTest, FreeSpaceIsPoisonedUnderAsan) {
  Arena arena;
  auto* p = static_cast<unsigned char*>(arena.allocate(64, 8));
  // The allocation itself must be addressable; the free space immediately
  // after it must be poisoned like a heap redzone.
  EXPECT_EQ(__asan_region_is_poisoned(p, 64), nullptr);
  EXPECT_NE(__asan_region_is_poisoned(p + 64, 8), nullptr);
  arena.reset();
  // After reset the chunk interior is poisoned again until re-allocated.
  EXPECT_NE(__asan_region_is_poisoned(p, 8), nullptr);
  auto* q = static_cast<unsigned char*>(arena.allocate(32, 8));
  EXPECT_EQ(__asan_region_is_poisoned(q, 32), nullptr);
}
#endif

// ----------------------------------------------------------------- symtab

TEST(SymbolTableTest, InternAssignsDenseIdsInFirstSightOrder) {
  SymbolTable syms;
  EXPECT_EQ(syms.intern("alpha"), 0);
  EXPECT_EQ(syms.intern("beta"), 1);
  EXPECT_EQ(syms.intern("alpha"), 0);  // idempotent
  EXPECT_EQ(syms.intern("gamma"), 2);
  EXPECT_EQ(syms.size(), 3u);
  EXPECT_EQ(syms.name(0), "alpha");
  EXPECT_EQ(syms.name(2), "gamma");
}

TEST(SymbolTableTest, FindNeverInterns) {
  SymbolTable syms;
  (void)syms.intern("known");
  EXPECT_EQ(syms.find("known"), 0);
  EXPECT_EQ(syms.find("unknown"), kNoSymbol);
  EXPECT_EQ(syms.size(), 1u);  // the miss did not grow the table
}

TEST(SymbolTableTest, NameOutOfRangeIsAnError) {
  SymbolTable syms;
  EXPECT_THROW((void)syms.name(0), InternalError);
  EXPECT_THROW((void)syms.name(kNoSymbol), InternalError);
}

TEST(SymbolTableTest, ClearRestartsIds) {
  SymbolTable syms;
  (void)syms.intern("a");
  (void)syms.intern("b");
  syms.clear();
  EXPECT_EQ(syms.size(), 0u);
  EXPECT_EQ(syms.find("a"), kNoSymbol);
  EXPECT_EQ(syms.intern("z"), 0);
}

// -------------------------------------------------------------- workspace

TEST(ScratchPoolTest, LeaseClearsButKeepsCapacity) {
  ScratchPool<std::vector<std::uint32_t>> pool;
  std::size_t grown_capacity = 0;
  {
    auto v = pool.lease();
    for (std::uint32_t i = 0; i < 1000; ++i) v->push_back(i);
    grown_capacity = v->capacity();
  }
  EXPECT_EQ(pool.idle(), 1u);
  auto v = pool.lease();
  EXPECT_TRUE(v->empty());
  EXPECT_GE(v->capacity(), grown_capacity);  // the asset the pool preserves
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(ScratchPoolTest, ConcurrentLeasesAreDistinct) {
  ScratchPool<std::vector<std::uint32_t>> pool;
  auto a = pool.lease();
  auto b = pool.lease();
  a->push_back(1);
  b->push_back(2);
  EXPECT_NE(&*a, &*b);
  EXPECT_EQ((*a)[0], 1u);
  EXPECT_EQ((*b)[0], 2u);
}

TEST(WorkspaceTest, ResetRewindsArenaButKeepsSymbols) {
  CompileWorkspace ws;
  const SymbolId id = ws.symbols.intern("gain");
  (void)ws.arena.allocate(512, 8);
  const std::uint64_t jobs_before = ws.jobs_reset();
  ws.reset();
  EXPECT_EQ(ws.jobs_reset(), jobs_before + 1);
  // Interned names survive reset: ids must stay stable for the worker's
  // lifetime (cached id lookups in long-lived tables depend on it).
  EXPECT_EQ(ws.symbols.find("gain"), id);
}

TEST(WorkspaceTest, ThreadWorkspaceIsStablePerThread) {
  CompileWorkspace& a = this_thread_workspace();
  CompileWorkspace& b = this_thread_workspace();
  EXPECT_EQ(&a, &b);
}

// ------------------------------------------------------------- alloccount

TEST(AllocCountTest, ScopeSeesHeapTraffic) {
  alloc::Scope scope;
  auto p = std::make_unique<char[]>(10000);
  p[9999] = 1;
  const alloc::Counters d = scope.delta();
  EXPECT_GE(d.allocations, 1u);
  EXPECT_GE(d.bytes, 10000u);
}

TEST(AllocCountTest, ArenaSteadyStateBypassesTheHeap) {
  Arena arena;
  // Warm the arena so every chunk the workload needs exists...
  for (int i = 0; i < 100; ++i) (void)arena.alloc_array<std::uint64_t>(64);
  arena.reset();
  // ...then the same workload after reset must be pure pointer bumping.
  alloc::Scope scope;
  for (int i = 0; i < 100; ++i) (void)arena.alloc_array<std::uint64_t>(64);
  EXPECT_EQ(scope.delta().allocations, 0u);
}

// Pins the steady-state heap-allocation count of a warm compile+WCET job.
// This is the regression the whole workspace layer exists to protect: a
// copy-by-value or dropped reserve() on the per-job path shows up here as
// a count jump long before it is visible in wall-clock noise. The bound is
// ~2x the measured steady state, so it flags regressions of the "extra
// copy of every function" kind, not allocator jitter. Skipped under ASan:
// sanitizer runtimes allocate on their own schedule.
#if !defined(VC_TEST_ASAN)
TEST(AllocCountTest, WarmCompileJobAllocationBudget) {
  dataflow::GeneratorOptions options;
  options.min_blocks = 30;
  options.max_blocks = 40;
  const dataflow::Node node =
      dataflow::generate_node(987654, "allocpin", options);
  minic::Program program;
  dataflow::generate_node(node, &program);
  minic::type_check(program);

  auto job = [&] {
    this_thread_workspace().reset();
    const driver::Compiled compiled =
        driver::compile_program(program, driver::Config::O2Full);
    wcet::WcetOptions wopts;
    wopts.engine = wcet::WcetEngine::Both;
    (void)wcet::analyze_wcet(compiled.image,
                             dataflow::step_function_name(node), wopts);
  };
  job();  // warm the thread workspace, pools, and ILP scratch
  job();
  alloc::Scope scope;
  job();
  const std::uint64_t warm = scope.delta().allocations;
  // Measured steady state on the default preset is ~64k allocations for
  // this node (O2 compile + both WCET engines, IPET certificate included).
  // 130k — roughly 2x — is the alarm line.
  EXPECT_LT(warm, 130000u) << "per-job allocation count regressed";
}
#endif

}  // namespace
}  // namespace vc
