// WCET analyzer internals: value analysis intervals, cache classification
// behavior, loop-forest construction, block costs, and option monotonicity.
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "mach/target.hpp"
#include "minic/interp.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "wcet/annotations.hpp"
#include "wcet/cache.hpp"
#include "wcet/cfg.hpp"
#include "wcet/value_analysis.hpp"
#include "wcet/wcet.hpp"

namespace vc {
namespace {

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

driver::Compiled compile(const minic::Program& p,
                         driver::Config config = driver::Config::Verified) {
  return driver::compile_program(p, config);
}

TEST(WcetValueAnalysis, TracksConstantsAndRefinement) {
  const auto program = parse(R"(
    func i32 f(i32 n) {
      local i32 r;
      if (n < 10) { r = n; } else { r = 10; }
      return r;
    }
  )");
  const auto compiled = compile(program);
  const wcet::Cfg cfg = wcet::build_cfg(compiled.image, "f");
  const wcet::AnnotIndex annots;
  const auto values = wcet::analyze_values(cfg, annots, mach::target_by_name("ppc"));
  // r2 is pinned to the data base everywhere reachable.
  for (const auto& state : values.block_in) {
    if (!state.reachable) continue;
    EXPECT_EQ(state.gpr[2].as_constant(),
              static_cast<std::int64_t>(mach::Image::kDataBase));
    EXPECT_TRUE(state.gpr[1].as_constant().has_value());  // stack pointer
  }
  // A compare fact must be recorded for the conditional block.
  EXPECT_FALSE(values.compare_facts.empty());
}

TEST(WcetValueAnalysis, MemoryAccessAddressesAreResolved) {
  const auto program = parse(R"(
    global f64 arr[8] = {0,1,2,3,4,5,6,7};
    func f64 f(i32 k) {
      local i32 idx;
      // Sequential self-clamps, the idiom interval analysis can refine
      // (a nested ternary hides the relation between arms — documented
      // limitation of non-relational domains).
      idx = k;
      idx = idx < 0 ? 0 : idx;
      idx = idx > 7 ? 7 : idx;
      return arr[idx];
    }
  )");
  const auto compiled = compile(program);
  const wcet::Cfg cfg = wcet::build_cfg(compiled.image, "f");
  const wcet::AnnotIndex annots;
  const auto values = wcet::analyze_values(cfg, annots, mach::target_by_name("ppc"));
  // The array access address interval must be inside the array, thanks to
  // the clamp refinement: [base, base + 7*8].
  const std::uint32_t base = compiled.image.global_addr.at("arr");
  bool found_indexed = false;
  for (const auto& acc : values.accesses) {
    if (acc.is_f64 && !acc.is_store && !acc.address.as_constant()) {
      found_indexed = true;
      EXPECT_GE(acc.address.lo(), base);
      EXPECT_LE(acc.address.hi(), base + 7 * 8);
    }
  }
  EXPECT_TRUE(found_indexed);
}

TEST(WcetCfg, LoopForestForNestedLoops) {
  const auto program = parse(R"(
    func i32 f() {
      local i32 i; local i32 j; local i32 s;
      s = 0;
      for (i = 0; i < 3; i = i + 1) {
        for (j = 0; j < 4; j = j + 1) {
          s = s + 1;
        }
      }
      return s;
    }
  )");
  const auto compiled = compile(program);
  const wcet::Cfg cfg = wcet::build_cfg(compiled.image, "f");
  ASSERT_EQ(cfg.loops.size(), 2u);
  // One loop nested in the other.
  const bool nested_0_in_1 = cfg.loops[0].parent == 1;
  const bool nested_1_in_0 = cfg.loops[1].parent == 0;
  EXPECT_TRUE(nested_0_in_1 || nested_1_in_0);
  const auto& outer = nested_1_in_0 ? cfg.loops[0] : cfg.loops[1];
  const auto& inner = nested_1_in_0 ? cfg.loops[1] : cfg.loops[0];
  EXPECT_GT(outer.blocks.size(), inner.blocks.size());
  EXPECT_FALSE(inner.latches.empty());
  EXPECT_FALSE(inner.exits.empty());
}

TEST(WcetCache, FirstMissThenPersistentHits) {
  // A loop touching one global repeatedly: the line must be classified
  // persistent (one miss per function entry), not miss-per-iteration.
  const auto program = parse(R"(
    global f64 g = 1.0;
    func f64 f() {
      local f64 s;
      local i32 i;
      s = 0.0;
      for (i = 0; i < 50; i = i + 1) {
        s = s + g;
      }
      return s;
    }
  )");
  const auto compiled = compile(program);
  const wcet::WcetResult with_cache =
      wcet::analyze_wcet(compiled.image, "f");
  wcet::WcetOptions no_cache;
  no_cache.cache_analysis = false;
  const wcet::WcetResult without_cache =
      wcet::analyze_wcet(compiled.image, "f", no_cache);
  // Without cache analysis, 50 iterations each pay the miss penalty for the
  // load of g and for the I-lines: vastly larger.
  EXPECT_GT(without_cache.wcet_cycles, with_cache.wcet_cycles * 2);
}

TEST(WcetCache, ImpreciseAccessDoesNotBreakSoundness) {
  // An unclamped data-dependent index (bounded only by the annotation)
  // produces an imprecise access; analysis must still complete and stay
  // above any actual run.
  const auto program = parse(R"(
    global f64 arr[64];
    global f64 sink = 0.0;
    func void f(i32 k) {
      __annot("0 <= %1 <= 63", k);
      sink = arr[k];
    }
  )");
  const auto compiled = compile(program);
  const wcet::WcetResult r = wcet::analyze_wcet(compiled.image, "f");
  machine::Machine m(compiled.image);
  for (int k = 0; k < 64; k += 7) {
    m.clear_caches();
    m.call("f", {minic::Value::of_i32(k)}, minic::Type::I32);
    EXPECT_LE(m.stats().cycles, r.wcet_cycles);
  }
}

TEST(Wcet, LoopBoundTakesMinimumOfSources) {
  // Annotation says 100 but the derived bound is 10: the analyzer must use
  // the tighter derived bound.
  const auto program = parse(R"(
    func i32 f() {
      local i32 i; local i32 s;
      s = 0;
      for (i = 0; i < 10; i = i + 1) {
        __annot("loop <= 100");
        s = s + i;
      }
      return s;
    }
  )");
  const auto compiled = compile(program);
  const wcet::WcetResult r = wcet::analyze_wcet(compiled.image, "f");
  ASSERT_EQ(r.loops.size(), 1u);
  EXPECT_EQ(r.loops[0].bound, 10);
}

TEST(Wcet, ZeroTripLoopIsHandled) {
  const auto program = parse(R"(
    func i32 f() {
      local i32 i; local i32 s;
      s = 7;
      for (i = 5; i < 5; i = i + 1) { s = s + 100; }
      return s;
    }
  )");
  const auto compiled = compile(program);
  const wcet::WcetResult r = wcet::analyze_wcet(compiled.image, "f");
  machine::Machine m(compiled.image);
  EXPECT_EQ(m.call("f", {}, minic::Type::I32), minic::Value::of_i32(7));
  EXPECT_LE(m.stats().cycles, r.wcet_cycles);
}

TEST(Wcet, BlockCostsArePositiveAndReported) {
  const auto program = parse(R"(
    func f64 f(f64 x) { return x * x + 1.0; }
  )");
  const auto compiled = compile(program);
  const wcet::WcetResult r = wcet::analyze_wcet(compiled.image, "f");
  ASSERT_FALSE(r.block_costs.empty());
  for (const auto& [addr, cost] : r.block_costs) {
    EXPECT_GE(addr, mach::Image::kCodeBase);
    EXPECT_GT(cost, 0u);
  }
}

TEST(Wcet, UnknownFunctionThrows) {
  const auto program = parse("func i32 f() { return 1; }");
  const auto compiled = compile(program);
  EXPECT_THROW(wcet::analyze_wcet(compiled.image, "ghost"),
               std::out_of_range);
}

}  // namespace
}  // namespace vc
