// vccd service contract: strict frame/request parsing (every malformed
// input gets one error reply and a dropped connection — the daemon never
// crashes), the incremental-recompilation memo, and the determinism soak —
// the same 200-job mix submitted through one client, eight concurrent
// clients, and a spawned `vccd --shards=4` supervisor must yield
// byte-identical record documents and identical certificate counts.
// Complements bench_service (cold/warm/restart/kill-one-shard arms against
// the serial reference) and vcc_cli_test (local batch CLI).
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <gtest/gtest.h>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "driver/fleet.hpp"
#include "minic/printer.hpp"
#include "minic/typecheck.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "support/json.hpp"

#ifndef VCFLIGHT_VCCD_PATH
#define VCFLIGHT_VCCD_PATH "vccd"
#endif

namespace vc {
namespace {

std::string unique_socket(const char* tag) {
  static int counter = 0;
  return "/tmp/vcsvc-" + std::to_string(::getpid()) + "-" + tag + "-" +
         std::to_string(counter++) + ".sock";
}

/// In-process daemon: start() + serve() on a thread, drained in stop().
class InProcessServer {
 public:
  explicit InProcessServer(const char* tag)
      : socket_(unique_socket(tag)) {
    service::ServerOptions options;
    options.socket_path = socket_;
    server_ = std::make_unique<service::ServiceServer>(options);
    std::string error;
    started_ = server_->start(&error);
    EXPECT_TRUE(started_) << error;
    if (started_) thread_ = std::thread([this] { exit_code_ = server_->serve(); });
  }

  ~InProcessServer() { stop(); }

  void stop() {
    if (!thread_.joinable()) return;
    server_->request_drain();
    thread_.join();
    EXPECT_EQ(exit_code_, 0);
  }

  [[nodiscard]] const std::string& socket() const { return socket_; }

 private:
  std::string socket_;
  std::unique_ptr<service::ServiceServer> server_;
  bool started_ = false;
  int exit_code_ = -1;
  std::thread thread_;
};

/// One frame, little-endian length prefix + payload, as raw bytes.
std::string framed(const std::string& payload) {
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.push_back(static_cast<char>(n & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out += payload;
  return out;
}

std::string raw_header(std::uint32_t n) {
  std::string out;
  out.push_back(static_cast<char>(n & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  return out;
}

void raw_send(int fd, const std::string& bytes) {
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(bytes.size()));
}

/// The strict-protocol contract: the daemon answers `bytes` with exactly
/// one {"ok":false,...} frame, drops the connection, and keeps serving
/// other clients.
void expect_error_then_drop(const std::string& socket,
                            const std::string& bytes) {
  const int fd = service::connect_unix(socket);
  ASSERT_GE(fd, 0);
  raw_send(fd, bytes);
  const service::Frame reply = service::read_frame(fd);
  ASSERT_EQ(reply.status, service::Frame::Status::Ok) << reply.error;
  const json::Parsed parsed = json::parse(reply.payload);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_FALSE(parsed.value.at("ok").as_bool(true));
  EXPECT_FALSE(parsed.value.at("error").as_string().empty());
  // The connection is dropped after the error frame.
  const service::Frame next = service::read_frame(fd);
  EXPECT_EQ(next.status, service::Frame::Status::Eof);
  ::close(fd);
  // ...and the daemon is still alive for well-formed clients.
  service::ServiceClient client;
  ASSERT_TRUE(client.connect(socket));
  json::Value ping;
  ping["op"] = json::Value("ping");
  const auto pong = client.call(ping);
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->at("pong").as_bool());
}

TEST(ServiceProtocolTest, PingAndStatusRoundTrip) {
  InProcessServer server("ping");
  service::ServiceClient client;
  ASSERT_TRUE(client.connect(server.socket()));
  json::Value ping;
  ping["op"] = json::Value("ping");
  const auto pong = client.call(ping);
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->at("ok").as_bool());
  EXPECT_TRUE(pong->at("pong").as_bool());

  json::Value status_req;
  status_req["op"] = json::Value("status");
  const auto status = client.call(status_req);
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->at("ok").as_bool());
  const json::Value& doc = status->at("status");
  EXPECT_GE(doc.at("requests").as_u64(), 1u);
  EXPECT_EQ(doc.at("queue_depth").as_u64(), 0u);
  EXPECT_GE(doc.at("uptime_seconds").as_double(), 0.0);
  EXPECT_TRUE(doc.at("cache").is_object());
}

TEST(ServiceProtocolTest, MalformedJsonGetsErrorAndDrop) {
  InProcessServer server("badjson");
  expect_error_then_drop(server.socket(), framed("this is not json {{"));
}

TEST(ServiceProtocolTest, ZeroLengthFrameIsRejected) {
  InProcessServer server("zerolen");
  expect_error_then_drop(server.socket(), raw_header(0));
}

TEST(ServiceProtocolTest, OversizeLengthIsRejected) {
  InProcessServer server("oversize");
  expect_error_then_drop(server.socket(),
                         raw_header(service::kMaxFrameBytes + 1));
}

TEST(ServiceProtocolTest, NonObjectPayloadIsRejected) {
  InProcessServer server("nonobject");
  expect_error_then_drop(server.socket(), framed("[1,2,3]"));
}

TEST(ServiceProtocolTest, UnknownOpIsRejected) {
  InProcessServer server("unknownop");
  expect_error_then_drop(server.socket(), framed("{\"op\":\"frobnicate\"}"));
}

TEST(ServiceProtocolTest, IllTypedFieldsAreRejected) {
  InProcessServer server("illtyped");
  // Non-string source.
  expect_error_then_drop(server.socket(),
                         framed("{\"op\":\"job\",\"id\":1,\"source\":12}"));
  // Job without an integer id.
  expect_error_then_drop(
      server.socket(),
      framed("{\"op\":\"job\",\"source\":\"func f64 f(f64 x){return x;}\"}"));
  // Ill-typed run parameter.
  expect_error_then_drop(
      server.socket(),
      framed("{\"op\":\"job\",\"id\":1,\"source\":\"func f64 f(f64 x)"
             "{return x;}\",\"exec_cycles\":\"nope\"}"));
  // Unknown config name.
  expect_error_then_drop(
      server.socket(),
      framed("{\"op\":\"job\",\"id\":1,\"source\":\"func f64 f(f64 x)"
             "{return x;}\",\"config\":\"O9\"}"));
}

TEST(ServiceProtocolTest, TruncatedFrameDoesNotCrashTheDaemon) {
  InProcessServer server("truncated");
  const int fd = service::connect_unix(server.socket());
  ASSERT_GE(fd, 0);
  // Header promises 100 bytes; deliver 10 and vanish.
  raw_send(fd, raw_header(100));
  raw_send(fd, "0123456789");
  ::close(fd);
  // Partial header, then vanish.
  const int fd2 = service::connect_unix(server.socket());
  ASSERT_GE(fd2, 0);
  raw_send(fd2, "\x07");
  ::close(fd2);
  service::ServiceClient client;
  ASSERT_TRUE(client.connect(server.socket()));
  json::Value ping;
  ping["op"] = json::Value("ping");
  const auto pong = client.call(ping);
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->at("pong").as_bool());
}

// --- determinism soak ------------------------------------------------------

struct SuiteJob {
  service::JobRequest request;  // id stamped at submission time
};

/// The 200-job mix: 25 generated filter nodes x all four configurations x
/// two input seeds, every job running execution + both WCET engines.
std::vector<SuiteJob> make_job_mix() {
  const std::vector<dataflow::Node> nodes = dataflow::generate_suite(42, 25);
  std::vector<SuiteJob> jobs;
  jobs.reserve(nodes.size() * 4 * 2);
  for (const dataflow::Node& node : nodes) {
    minic::Program program;
    dataflow::generate_node(node, &program);
    minic::type_check(program);
    const std::string source = minic::print_program(program);
    const std::string entry = dataflow::step_function_name(node);
    for (const driver::Config config : driver::kAllConfigs) {
      for (int seed = 0; seed < 2; ++seed) {
        SuiteJob job;
        job.request.name = node.name();
        job.request.source = source;
        job.request.entry = entry;
        job.request.config = config;
        job.request.exec_cycles = 20;
        job.request.wcet = true;
        job.request.wcet_engine = wcet::WcetEngine::Both;
        job.request.input_seed =
            driver::fleet_job_seed(7, static_cast<std::size_t>(seed));
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

struct SoakOutcome {
  // job id -> canonical record document (json::Object is ordered, so
  // dump() is a byte-stable canonical form).
  std::map<std::int64_t, std::string> records;
  std::size_t certified = 0;
  std::size_t failures = 0;
};

/// Submits every job (ids = indices) across `n_clients` pipelined
/// connections, stride-sliced like the bench does.
SoakOutcome submit_jobs(const std::string& socket,
                        const std::vector<SuiteJob>& jobs, int n_clients) {
  SoakOutcome out;
  std::mutex merge_mutex;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(n_clients));
  for (int c = 0; c < n_clients; ++c) {
    clients.emplace_back([&, c] {
      service::ServiceClient client;
      if (!client.connect(socket)) {
        std::lock_guard<std::mutex> lock(merge_mutex);
        out.failures += 1;
        return;
      }
      std::size_t sent = 0;
      for (std::size_t i = static_cast<std::size_t>(c); i < jobs.size();
           i += static_cast<std::size_t>(n_clients)) {
        service::JobRequest request = jobs[i].request;
        request.id = static_cast<std::int64_t>(i);
        if (client.send(service::job_to_json(request))) ++sent;
      }
      std::map<std::int64_t, std::string> local;
      std::size_t local_certified = 0;
      std::size_t local_failures = 0;
      for (std::size_t r = 0; r < sent; ++r) {
        const auto reply = client.recv();
        if (!reply.has_value() || !reply->at("ok").as_bool(false)) {
          ++local_failures;
          continue;
        }
        const json::Value& record = reply->at("record");
        if (!record.at("ok").as_bool(false)) ++local_failures;
        if (record.at("wcet_ipet_certified").as_bool(false))
          ++local_certified;
        local.emplace(reply->at("id").as_i64(), record.dump());
      }
      std::lock_guard<std::mutex> lock(merge_mutex);
      out.records.insert(local.begin(), local.end());
      out.certified += local_certified;
      out.failures += local_failures;
    });
  }
  for (std::thread& t : clients) t.join();
  return out;
}

TEST(ServiceSoakTest, TwoHundredJobMixIsDeterministicAcrossTopologies) {
  const std::vector<SuiteJob> jobs = make_job_mix();
  ASSERT_EQ(jobs.size(), 200u);

  // Way 1: one client, one in-process daemon.
  SoakOutcome serial;
  {
    InProcessServer server("soak1");
    serial = submit_jobs(server.socket(), jobs, 1);
  }
  EXPECT_EQ(serial.failures, 0u);
  ASSERT_EQ(serial.records.size(), jobs.size());
  EXPECT_GT(serial.certified, 0u);

  // Way 2: eight concurrent pipelined clients against a fresh daemon —
  // batching and reply interleaving must not leak into the records.
  SoakOutcome concurrent;
  {
    InProcessServer server("soak8");
    concurrent = submit_jobs(server.socket(), jobs, 8);
  }
  EXPECT_EQ(concurrent.failures, 0u);
  ASSERT_EQ(concurrent.records.size(), jobs.size());
  EXPECT_EQ(concurrent.certified, serial.certified);
  EXPECT_TRUE(concurrent.records == serial.records)
      << "concurrent-client records diverge from the serial reference";

  // Way 3: a spawned `vccd --shards=4` supervisor: round-robin forwarding
  // across four worker processes must still be invisible in the records.
  const std::string socket = unique_socket("soak-shards");
  const pid_t pid = service::spawn_daemon(
      VCFLIGHT_VCCD_PATH, {"--socket=" + socket, "--shards=4"});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(service::wait_until_ready(socket, 30.0));
  const SoakOutcome sharded = submit_jobs(socket, jobs, 8);
  EXPECT_EQ(service::terminate_daemon(pid, 60.0), 0)
      << "sharded daemon failed to drain-exit 0";
  EXPECT_EQ(sharded.failures, 0u);
  ASSERT_EQ(sharded.records.size(), jobs.size());
  EXPECT_EQ(sharded.certified, serial.certified);
  EXPECT_TRUE(sharded.records == serial.records)
      << "sharded records diverge from the serial reference";
}

TEST(ServiceIncrementalTest, ResubmissionIsAnsweredFromTheMemo) {
  InProcessServer server("memo");
  service::ServiceClient client;
  ASSERT_TRUE(client.connect(server.socket()));

  service::JobRequest request;
  request.id = 1;
  request.name = "lowpass";
  request.source = "func f64 lowpass(f64 x) { return 0.2 * x; }\n";
  request.entry = "lowpass";
  request.exec_cycles = 10;
  request.wcet = true;
  request.wcet_engine = wcet::WcetEngine::Both;

  const auto first = client.call(service::job_to_json(request));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first->at("ok").as_bool(false));
  EXPECT_NE(first->at("cache").as_string(), "incremental");

  request.id = 2;
  const auto second = client.call(service::job_to_json(request));
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(second->at("ok").as_bool(false));
  EXPECT_EQ(second->at("cache").as_string(), "incremental");
  EXPECT_EQ(second->at("id").as_i64(), 2);
  // The memoized record is byte-identical to the compiled one.
  EXPECT_EQ(second->at("record").dump(), first->at("record").dump());

  // A different seed is a different dependency hash: no false sharing.
  request.id = 3;
  request.input_seed = 99;
  const auto third = client.call(service::job_to_json(request));
  ASSERT_TRUE(third.has_value());
  ASSERT_TRUE(third->at("ok").as_bool(false));
  EXPECT_NE(third->at("cache").as_string(), "incremental");
}

// Regression: the warm-campaign pipelining deadlock. Memo-hit replies used
// to be sent inline on the connection's read thread (holding the memo
// mutex); a client that pipelined a resubmission burst larger than the
// kernel socket buffers without draining any reply wedged the daemon — the
// reader blocked in send(), stopped reading, both buffers filled, and the
// client's own send blocked too. Replies now always originate on the
// batcher thread, so the reader keeps draining and the burst completes.
TEST(ServiceIncrementalTest, PipelinedMemoBurstDoesNotDeadlock) {
  InProcessServer server("memoburst");

  const std::vector<dataflow::Node> nodes = dataflow::generate_suite(42, 1);
  minic::Program program;
  dataflow::generate_node(nodes[0], &program);
  minic::type_check(program);

  service::JobRequest request;
  request.name = nodes[0].name();
  request.source = minic::print_program(program);
  request.entry = dataflow::step_function_name(nodes[0]);
  request.exec_cycles = 5;

  // Compile once so every burst job below is a memo hit.
  service::ServiceClient warmup;
  ASSERT_TRUE(warmup.connect(server.socket()));
  request.id = 0;
  const auto first = warmup.call(service::job_to_json(request));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first->at("ok").as_bool(false));

  // Pipeline far more request/reply bytes than the socket buffers hold,
  // without reading a single reply until everything has been sent.
  constexpr int kBurst = 1200;
  service::ServiceClient client;
  ASSERT_TRUE(client.connect(server.socket()));
  for (int i = 1; i <= kBurst; ++i) {
    request.id = i;
    ASSERT_TRUE(client.send(service::job_to_json(request)));
  }
  std::set<std::int64_t> ids;
  for (int i = 0; i < kBurst; ++i) {
    const auto reply = client.recv();
    ASSERT_TRUE(reply.has_value());
    ASSERT_TRUE(reply->at("ok").as_bool(false));
    EXPECT_EQ(reply->at("cache").as_string(), "incremental");
    EXPECT_EQ(reply->at("record").dump(), first->at("record").dump());
    ids.insert(reply->at("id").as_i64());
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kBurst));
}

// Sharded resubmission: the supervisor keeps no record memo of its own
// (its readers must never send — see supervisor.cpp), so an incremental
// hit through `--shards=N` only happens because the placement map routes
// the repeat back to the shard whose memo already holds it.
TEST(ServiceIncrementalTest, ShardedResubmissionHitsTheOwningShardsMemo) {
  const std::string socket = unique_socket("shardmemo");
  const pid_t pid = service::spawn_daemon(
      VCFLIGHT_VCCD_PATH, {"--socket=" + socket, "--shards=2"});
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(service::wait_until_ready(socket, 30.0));
  service::ServiceClient client;
  ASSERT_TRUE(client.connect(socket));

  service::JobRequest request;
  request.id = 1;
  request.name = "gain";
  request.source = "func f64 gain(f64 x) { return 3.0 * x; }\n";
  request.entry = "gain";
  request.exec_cycles = 5;

  const auto first = client.call(service::job_to_json(request));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first->at("ok").as_bool(false));
  EXPECT_NE(first->at("cache").as_string(), "incremental");

  request.id = 2;
  const auto second = client.call(service::job_to_json(request));
  ASSERT_TRUE(second.has_value());
  ASSERT_TRUE(second->at("ok").as_bool(false));
  EXPECT_EQ(second->at("cache").as_string(), "incremental");
  EXPECT_EQ(second->at("record").dump(), first->at("record").dump());

  EXPECT_EQ(service::terminate_daemon(pid, 60.0), 0);
}

TEST(ServiceIncrementalTest, FailedParseIsReportedPerJobNotAsProtocolError) {
  InProcessServer server("badjob");
  service::ServiceClient client;
  ASSERT_TRUE(client.connect(server.socket()));
  service::JobRequest request;
  request.id = 7;
  request.name = "broken";
  request.source = "func f64 broken(f64 x) { return undeclared_name; }\n";
  const auto reply = client.call(service::job_to_json(request));
  ASSERT_TRUE(reply.has_value());
  // The job failed, but the protocol succeeded: ok record with ok=false.
  ASSERT_TRUE(reply->at("ok").as_bool(false));
  EXPECT_FALSE(reply->at("record").at("ok").as_bool(true));
  EXPECT_FALSE(reply->at("record").at("error").as_string().empty());
  // The connection survives a failed job (unlike a malformed frame).
  json::Value ping;
  ping["op"] = json::Value("ping");
  const auto pong = client.call(ping);
  ASSERT_TRUE(pong.has_value());
  EXPECT_TRUE(pong->at("pong").as_bool());
}

}  // namespace
}  // namespace vc
