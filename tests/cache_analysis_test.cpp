// Cache-analysis tests through the analyzer's public pipeline: must-hit
// classification for repeated accesses, persistence scoping, imprecise
// access pollution, and agreement with the simulator's actual miss counts.
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "mach/target.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "wcet/annotations.hpp"
#include "wcet/cache.hpp"
#include "wcet/cfg.hpp"
#include "wcet/value_analysis.hpp"

namespace vc {
namespace {

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

struct Analysis {
  wcet::Cfg cfg;
  wcet::ValueAnalysisResult values;
  wcet::CacheAnalysisResult caches;
};

Analysis analyze(const driver::Compiled& compiled, const std::string& fn) {
  Analysis a{wcet::build_cfg(compiled.image, fn), {}, {}};
  const wcet::AnnotIndex annots = wcet::index_annotations(
      compiled.image, compiled.image.fn_entry.at(fn),
      compiled.image.fn_end.at(fn));
  a.values = wcet::analyze_values(a.cfg, annots, mach::target_by_name("ppc"));
  a.caches = wcet::analyze_caches(a.cfg, a.values, mach::MachineConfig{});
  return a;
}

int count_daccess(const Analysis& a, wcet::CacheClass cls) {
  int n = 0;
  for (const auto& c : a.caches.daccess)
    if (c.cls == cls) ++n;
  return n;
}

TEST(CacheAnalysis, RepeatedAccessIsAlwaysHit) {
  // Two consecutive reads of the same global: the second must be a must-hit.
  const auto program = parse(R"(
    global f64 g = 1.0;
    func f64 f() {
      return g + g * 2.0;
    }
  )");
  const auto compiled =
      driver::compile_program(program, driver::Config::O0Pattern);
  const Analysis a = analyze(compiled, "f");
  EXPECT_GE(count_daccess(a, wcet::CacheClass::AlwaysHit), 1);
  // And nothing is an unconditional per-execution miss: straight-line code
  // in a function fits the cache, so first accesses are function-persistent.
  EXPECT_EQ(count_daccess(a, wcet::CacheClass::Miss), 0);
}

TEST(CacheAnalysis, LoopBodyLinesArePersistentNotMiss) {
  const auto program = parse(R"(
    global f64 buf[16];
    func f64 f() {
      local f64 s;
      local i32 i;
      s = 0.0;
      for (i = 0; i < 16; i = i + 1) {
        s = s + buf[i];
      }
      return s;
    }
  )");
  const auto compiled =
      driver::compile_program(program, driver::Config::Verified);
  const Analysis a = analyze(compiled, "f");
  // I-cache: every line event must be classified AlwaysHit or Persistent —
  // a Miss classification inside the loop would charge 30 cycles * 16.
  for (const auto& block : a.caches.ilines) {
    for (const auto& ev : block) {
      EXPECT_NE(ev.cls.cls, wcet::CacheClass::Miss);
    }
  }
  // The indexed array access has an imprecise (interval) address -> Miss by
  // classification, which is the sound choice.
  EXPECT_GE(count_daccess(a, wcet::CacheClass::Miss), 1);
}

TEST(CacheAnalysis, PersistenceScopeIsOutermost) {
  // A global accessed in a nested loop should be persistent at function
  // scope (one miss total), not per-iteration of any loop.
  const auto program = parse(R"(
    global f64 k = 2.0;
    global f64 acc = 0.0;
    func void f() {
      local i32 i; local i32 j;
      for (i = 0; i < 3; i = i + 1) {
        for (j = 0; j < 3; j = j + 1) {
          acc = acc + k;
        }
      }
    }
  )");
  const auto compiled =
      driver::compile_program(program, driver::Config::Verified);
  const Analysis a = analyze(compiled, "f");
  bool found_function_scope = false;
  for (const auto& c : a.caches.daccess) {
    if (c.cls == wcet::CacheClass::Persistent && c.scope == -1)
      found_function_scope = true;
    EXPECT_NE(c.cls, wcet::CacheClass::Miss);
  }
  EXPECT_TRUE(found_function_scope);
}

TEST(CacheAnalysis, ClassificationAgreesWithSimulatedMissCounts) {
  // End-to-end agreement: on a straight-line stateful kernel, the number of
  // simulated D-misses (cold caches) must not exceed the analyzer's charge
  // (persistent lines + per-execution misses).
  const auto program = parse(R"(
    global f64 s0 = 0.0;
    global f64 s1 = 0.0;
    func f64 f(f64 x) {
      s0 = s0 * 0.9 + x;
      s1 = s1 * 0.8 + s0;
      return s0 + s1;
    }
  )");
  for (driver::Config config : driver::kAllConfigs) {
    const auto compiled = driver::compile_program(program, config);
    const Analysis a = analyze(compiled, "f");
    int charged = 0;
    for (const auto& c : a.caches.daccess)
      if (c.cls != wcet::CacheClass::AlwaysHit) ++charged;
    machine::Machine m(compiled.image);
    m.call("f", {minic::Value::of_f64(1.0)}, minic::Type::F64);
    const auto observed = m.stats().dcache_read_misses +
                          m.stats().dcache_write_misses;
    EXPECT_LE(observed, static_cast<std::uint64_t>(charged))
        << driver::to_string(config);
  }
}

}  // namespace
}  // namespace vc
