// End-to-end pipeline smoke tests: parse -> typecheck -> compile under every
// configuration -> simulate -> compare against the reference interpreter
// (results and global state, bit-exact).
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "minic/interp.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"

namespace vc {
namespace {

using minic::Value;

struct CompiledSet {
  minic::Program program;
  std::vector<driver::Compiled> compiled;

  explicit CompiledSet(const std::string& source)
      : program(minic::parse_program(source)) {
    minic::type_check(program);
    for (driver::Config c : driver::kAllConfigs)
      compiled.push_back(driver::compile_program(program, c));
  }
};

/// Runs `fn` with `args` through the interpreter and through the simulator
/// for every configuration; expects bit-identical results and globals.
void expect_all_configs_match(CompiledSet& set, const std::string& fn,
                              const std::vector<Value>& args) {
  minic::Interpreter interp(set.program);
  const minic::Function* f = set.program.find_function(fn);
  ASSERT_NE(f, nullptr);
  const minic::Type ret_type =
      f->has_return ? f->return_type : minic::Type::I32;
  const Value expected = interp.call(fn, args);

  for (const auto& compiled : set.compiled) {
    machine::Machine m(compiled.image);
    const Value got = m.call(fn, args, ret_type);
    EXPECT_EQ(expected, got)
        << "config " << driver::to_string(compiled.config) << ": expected "
        << expected.to_string() << ", got " << got.to_string();
    for (const auto& g : set.program.globals) {
      for (std::size_t i = 0; i < g.count; ++i) {
        const Value want = interp.read_global(g.name, i);
        const Value have = m.read_global(g.name, i, g.type);
        EXPECT_EQ(want, have)
            << "config " << driver::to_string(compiled.config) << ", global "
            << g.name << "[" << i << "]";
      }
    }
  }
}

TEST(Pipeline, ScalarArithmetic) {
  CompiledSet set(R"(
    func f64 step(f64 x, f64 y) {
      local f64 t;
      t = (x + y) * (x - y);
      return t / 2.0 + fabs(x) - fmin(x, y) + fmax(x, 1.5);
    }
  )");
  expect_all_configs_match(set, "step",
                           {Value::of_f64(3.25), Value::of_f64(-1.5)});
  expect_all_configs_match(set, "step",
                           {Value::of_f64(-0.0), Value::of_f64(0.0)});
}

TEST(Pipeline, IntegerOps) {
  CompiledSet set(R"(
    func i32 mix(i32 a, i32 b) {
      local i32 t;
      t = (a + b) * 3 - (a / (b + 1000000)) + (a % 7);
      t = t ^ (a & b) | (a << 2) ^ (b >> 1);
      return t + (a < b ? 10 : 20) + (a == b ? 1 : 0);
    }
  )");
  expect_all_configs_match(set, "mix", {Value::of_i32(12345),
                                        Value::of_i32(-999)});
  expect_all_configs_match(set, "mix", {Value::of_i32(-2147483647 - 1),
                                        Value::of_i32(2147483647)});
}

TEST(Pipeline, GlobalStateAndLoops) {
  CompiledSet set(R"(
    global f64 history[4] = {1.0, 2.0, 3.0, 4.0};
    global f64 accum = 0.0;
    global i32 calls = 0;

    func f64 step(f64 x) {
      local f64 sum;
      local i32 i;
      sum = 0.0;
      for (i = 0; i < 4; i = i + 1) {
        sum = sum + history[i];
      }
      history[3] = history[2];
      history[2] = history[1];
      history[1] = history[0];
      history[0] = x;
      accum = accum + sum;
      calls = calls + 1;
      return sum / 4.0;
    }
  )");
  // Stateful: run a sequence of calls on BOTH sides without reset.
  minic::Interpreter interp(set.program);
  for (const auto& compiled : set.compiled) {
    machine::Machine m(compiled.image);
    interp.reset_globals();
    for (int k = 0; k < 6; ++k) {
      const Value x = Value::of_f64(0.5 * k - 1.0);
      const Value want = interp.call("step", {x});
      const Value got = m.call("step", {x}, minic::Type::F64);
      ASSERT_EQ(want, got) << "config " << driver::to_string(compiled.config)
                           << " call " << k;
    }
    EXPECT_EQ(interp.read_global("calls", 0),
              m.read_global("calls", 0, minic::Type::I32));
    EXPECT_EQ(interp.read_global("accum", 0),
              m.read_global("accum", 0, minic::Type::F64));
  }
}

TEST(Pipeline, ControlFlowAndConversions) {
  CompiledSet set(R"(
    global i32 mode = 0;
    func f64 clampsel(f64 x, i32 sel) {
      local f64 r;
      local i32 k;
      r = 0.0;
      if (sel == 0) {
        r = fmin(fmax(x, -1.0), 1.0);
      } else if (sel == 1) {
        k = (i32)(x * 10.0);
        r = (f64)(k) / 10.0;
      } else {
        while (r < x) {
          __annot("loop <= 64");
          r = r + 0.25;
        }
      }
      mode = sel;
      return r;
    }
  )");
  for (int sel = 0; sel <= 2; ++sel) {
    expect_all_configs_match(
        set, "clampsel", {Value::of_f64(3.7), Value::of_i32(sel)});
    expect_all_configs_match(
        set, "clampsel", {Value::of_f64(-2.2), Value::of_i32(sel)});
  }
}

TEST(Pipeline, CodeSizeOrdering) {
  // The paper's central observation: register allocation removes the
  // per-pattern loads/stores, shrinking code substantially (§3.3: -26%).
  CompiledSet set(R"(
    global f64 s1 = 0.0;
    func f64 law(f64 a, f64 b, f64 c) {
      local f64 t1; local f64 t2; local f64 t3; local f64 t4;
      t1 = a + b;
      t2 = t1 * c;
      t3 = t2 - a;
      t4 = t3 / 2.0;
      s1 = s1 + t4;
      return t4 * t1 + t2;
    }
  )");
  const auto size_of = [&](driver::Config c) {
    for (const auto& comp : set.compiled)
      if (comp.config == c) return comp.image.code_size_of("law");
    throw std::logic_error("config missing");
  };
  const auto o0 = size_of(driver::Config::O0Pattern);
  const auto verified = size_of(driver::Config::Verified);
  const auto o2 = size_of(driver::Config::O2Full);
  EXPECT_LT(verified, o0);
  EXPECT_LE(o2, verified);
}

}  // namespace
}  // namespace vc
