// Execution-monitor tests: the dynamic soundness oracle (machine/monitor.hpp)
// against real compiled executions.
//
// The load-bearing cases are the seeded *mutation* tests: corrupt one fact of
// the statically-built MonitorSpec — a CFG edge, an annotation interval, a
// loop-bound row — and prove the armed simulator refutes it with a
// MonitorError naming the right function and pc. A monitor that cannot catch
// a planted lie proves nothing when a campaign reports zero violations.
//
// Also here: the FuelExhausted error taxonomy (a truncated run is not an
// observation), the fleet's discard-on-failure audit, thread-count
// determinism of monitored campaigns, and uint64 counter-width pinning.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <type_traits>

#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "driver/compiler.hpp"
#include "driver/fleet.hpp"
#include "machine/machine.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "mach/timing.hpp"
#include "mach/target.hpp"
#include "wcet/monitor_spec.hpp"

namespace vc {
namespace {

using minic::Value;

/// The workhorse program: an annotated parameter and a bounded loop, so a
/// Full spec carries all three fact kinds (edges, intervals, loop rows).
constexpr const char* kLoopSource = R"(
  func i32 f(i32 n) {
    local i32 i;
    local i32 acc;
    __annot("0 <= %1 <= 6", n);
    i = 0;
    acc = 0;
    while (i < n) {
      __annot("loop <= 6");
      acc = acc + i;
      i = i + 1;
    }
    return acc;
  }
)";

driver::Compiled compile(const std::string& source,
                         driver::Config config = driver::Config::Verified) {
  minic::Program program = minic::parse_program(source);
  minic::type_check(program);
  return driver::compile_program(program, config);
}

machine::MonitorSpec full_spec(const driver::Compiled& compiled,
                               const std::string& fn = "f") {
  return wcet::build_monitor_spec(compiled.image, fn,
                                  machine::MonitorMode::Full);
}

std::int32_t run_monitored(const driver::Compiled& compiled,
                           const machine::MonitorSpec& spec,
                           machine::MonitorMode mode, std::int32_t arg) {
  machine::Machine m(compiled.image);
  m.arm_monitor(spec, mode);
  return m.call("f", {Value::of_i32(arg)}, minic::Type::I32).i;
}

TEST(MonitorChain, IndependentParserMatchesTheGrammar) {
  const auto r = machine::monitor_parse_chain("0 <= %1 <= %2 < 360");
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0].operand, 1);
  EXPECT_EQ((*r)[0].lo, 0);
  EXPECT_EQ((*r)[0].hi, 359);
  EXPECT_EQ((*r)[1].lo, 0);
  EXPECT_EQ((*r)[1].hi, 359);

  // Strict links tighten by one per hop (integer anchors).
  const auto s = machine::monitor_parse_chain("-5 < %1 < 5");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ((*s)[0].lo, -4);
  EXPECT_EQ((*s)[0].hi, 4);

  // Loop rows and junk are not value chains.
  EXPECT_FALSE(machine::monitor_parse_chain("loop <= 6").has_value());
  EXPECT_FALSE(machine::monitor_parse_chain("mode is cruise").has_value());
  EXPECT_FALSE(machine::monitor_parse_chain("%1 >= 0").has_value());
}

TEST(Monitor, CleanRunChecksEveryStepAndFindsNothing) {
  const driver::Compiled compiled = compile(kLoopSource);
  const machine::MonitorSpec spec = full_spec(compiled);

  // The spec is non-trivial: it really carries all three fact kinds.
  EXPECT_FALSE(spec.branch_targets.empty());
  EXPECT_FALSE(spec.value_checks.empty());
  ASSERT_EQ(spec.loops.size(), 1u);
  EXPECT_EQ(spec.loops[0].bound, 6);

  machine::Machine m(compiled.image);
  m.arm_monitor(spec, machine::MonitorMode::Full);
  const Value result = m.call("f", {Value::of_i32(5)}, minic::Type::I32);
  EXPECT_EQ(result.i, 0 + 1 + 2 + 3 + 4);
  ASSERT_NE(m.monitor(), nullptr);
  // Every executed instruction passed through the monitor.
  EXPECT_EQ(m.monitor()->steps(), m.stats().instructions);
  EXPECT_GT(m.monitor()->steps(), 0u);
}

TEST(Monitor, MutatedCfgEdgeFiresWithFunctionAndPc) {
  const driver::Compiled compiled = compile(kLoopSource);
  machine::MonitorSpec spec = full_spec(compiled);
  ASSERT_EQ(spec.loops.size(), 1u);
  const machine::MonitorLoopRow& row = spec.loops[0];

  // Corrupt the back edge: find the branch inside the loop body that targets
  // the header and delete the header from its legal-successor list.
  std::uint32_t latch_pc = 0;
  for (auto& [pc, targets] : spec.branch_targets) {
    if (!row.contains(pc)) continue;
    const auto it = std::find(targets.begin(), targets.end(), row.header_pc);
    if (it == targets.end()) continue;
    targets.erase(it);
    latch_pc = pc;
    break;
  }
  ASSERT_NE(latch_pc, 0u) << "no back-edge branch found to mutate";

  try {
    run_monitored(compiled, spec, machine::MonitorMode::Full, 5);
    FAIL() << "planted CFG lie was not refuted";
  } catch (const machine::MonitorError& e) {
    EXPECT_EQ(e.function(), "f");
    EXPECT_EQ(e.pc(), latch_pc);
    EXPECT_NE(e.fact().find("not an edge"), std::string::npos) << e.fact();
  }
}

TEST(Monitor, MutatedAnnotationBoundFiresAtItsAnchor) {
  const driver::Compiled compiled = compile(kLoopSource);
  machine::MonitorSpec spec = full_spec(compiled);
  ASSERT_FALSE(spec.value_checks.empty());
  // Tighten the claimed interval of n from [0, 6] to [0, 2]; calling with
  // n = 5 then refutes the (now false) claim at its anchor.
  spec.value_checks[0].hi = 2;
  const std::uint32_t anchor = spec.value_checks[0].pc;

  try {
    run_monitored(compiled, spec, machine::MonitorMode::Full, 5);
    FAIL() << "planted annotation lie was not refuted";
  } catch (const machine::MonitorError& e) {
    EXPECT_EQ(e.function(), "f");
    EXPECT_EQ(e.pc(), anchor);
    EXPECT_NE(e.fact().find("annotation"), std::string::npos) << e.fact();
  }
}

TEST(Monitor, MutatedLoopBoundRowFires) {
  const driver::Compiled compiled = compile(kLoopSource);
  machine::MonitorSpec spec = full_spec(compiled);
  ASSERT_EQ(spec.loops.size(), 1u);
  // Claim at most 3 back edges per entry; n = 5 takes 5.
  spec.loops[0].bound = 3;

  try {
    run_monitored(compiled, spec, machine::MonitorMode::Full, 5);
    FAIL() << "planted loop-bound lie was not refuted";
  } catch (const machine::MonitorError& e) {
    EXPECT_EQ(e.function(), "f");
    EXPECT_NE(e.fact().find("back edge"), std::string::npos) << e.fact();
  }
}

TEST(Monitor, CfgModeIgnoresValueAndLoopFacts) {
  const driver::Compiled compiled = compile(kLoopSource);
  machine::MonitorSpec spec = full_spec(compiled);
  ASSERT_FALSE(spec.value_checks.empty());
  ASSERT_EQ(spec.loops.size(), 1u);
  // Both lies planted — but Cfg mode only checks control flow.
  spec.value_checks[0].hi = -1;
  spec.loops[0].bound = 0;
  EXPECT_EQ(run_monitored(compiled, spec, machine::MonitorMode::Cfg, 5), 10);
}

TEST(Monitor, BrokenCallerContractIsRefutedWithoutAnyMutation) {
  // f claims 0 <= n <= 6; calling with n = 9 makes the *genuine* annotation
  // false on the live trace. The monitor exists to catch exactly this: a
  // static fact base the real execution does not honour.
  const driver::Compiled compiled = compile(kLoopSource);
  const machine::MonitorSpec spec = full_spec(compiled);
  EXPECT_THROW(run_monitored(compiled, spec, machine::MonitorMode::Full, 9),
               machine::MonitorError);
  // Unmonitored, the same call runs to completion — the lie goes unnoticed.
  machine::Machine m(compiled.image);
  EXPECT_EQ(m.call("f", {Value::of_i32(9)}, minic::Type::I32).i, 36);
}

TEST(Monitor, MonitoredRunMatchesUnmonitoredResultsAndTiming) {
  const driver::Compiled compiled = compile(kLoopSource);
  const machine::MonitorSpec spec = full_spec(compiled);

  machine::Machine plain(compiled.image);
  const Value want = plain.call("f", {Value::of_i32(6)}, minic::Type::I32);
  const std::uint64_t want_cycles = plain.stats().cycles;

  machine::Machine monitored(compiled.image);
  monitored.arm_monitor(spec, machine::MonitorMode::Full);
  const Value got = monitored.call("f", {Value::of_i32(6)}, minic::Type::I32);
  EXPECT_EQ(got.i, want.i);
  // The monitor observes; it must not perturb the timing model.
  EXPECT_EQ(monitored.stats().cycles, want_cycles);
}

TEST(Monitor, FuelExhaustionIsADistinctError) {
  const driver::Compiled compiled = compile(kLoopSource);
  machine::Machine m(compiled.image);
  m.set_fuel(10);
  EXPECT_THROW(m.call("f", {Value::of_i32(6)}, minic::Type::I32),
               machine::FuelExhausted);
  // Still a MachineError, so existing catch-all harnesses keep working.
  static_assert(
      std::is_base_of_v<machine::MachineError, machine::FuelExhausted>);
}

TEST(Monitor, FleetNeverRecordsStatsFromFailedExecution) {
  // divw by zero faults at runtime under O0 (no folding); the job must fail
  // AND carry no execution observations — stats from a truncated or faulted
  // run would fake out the WCET soundness comparison.
  minic::Program program = minic::parse_program(R"(
    func i32 bad(i32 a) {
      return 7 / (a - a);
    }
  )");
  minic::type_check(program);

  driver::FleetOptions options;
  options.jobs = 1;
  options.exec_cycles = 3;
  options.configs = {driver::Config::O0Pattern};
  const driver::FleetReport report =
      driver::run_fleet({{"bad", &program, "bad"}}, options);
  ASSERT_EQ(report.records.size(), 1u);
  const driver::FleetRecord& r = report.records[0];
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("divw"), std::string::npos) << r.error;
  EXPECT_EQ(r.exec.cycles, 0u);
  EXPECT_EQ(r.exec.instructions, 0u);
  EXPECT_EQ(r.observed_max_cycles, 0u);
}

/// Owns the generated programs (FleetUnit only points at them).
struct Suite {
  std::vector<minic::Program> programs;
  std::vector<driver::FleetUnit> units;
};

Suite small_suite(int count) {
  Suite s;
  const std::vector<dataflow::Node> nodes =
      dataflow::generate_suite(20110318, count);
  for (const dataflow::Node& node : nodes) {
    minic::Program program;
    program.name = node.name();
    dataflow::generate_node(node, &program);
    minic::type_check(program);
    s.programs.push_back(std::move(program));
  }
  for (std::size_t i = 0; i < nodes.size(); ++i)
    s.units.push_back({nodes[i].name(), &s.programs[i],
                       dataflow::step_function_name(nodes[i])});
  return s;
}

TEST(Monitor, MonitoredFleetIsThreadCountInvariant) {
  const Suite suite = small_suite(4);
  driver::FleetOptions options;
  options.exec_cycles = 5;
  options.wcet = true;
  options.monitor = machine::MonitorMode::Full;

  options.jobs = 1;
  const driver::FleetReport serial = driver::run_fleet(suite.units, options);
  options.jobs = 8;
  const driver::FleetReport parallel = driver::run_fleet(suite.units, options);

  EXPECT_EQ(serial.monitor_mode, machine::MonitorMode::Full);
  EXPECT_EQ(serial.monitor_violations, 0u);
  EXPECT_EQ(serial.monitored_records, serial.records.size());
  EXPECT_GT(serial.monitored_steps, 0u);

  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    const driver::FleetRecord& a = serial.records[i];
    const driver::FleetRecord& b = parallel.records[i];
    SCOPED_TRACE(a.name + "/" + driver::to_string(a.config));
    EXPECT_TRUE(a.ok) << a.error;
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.monitored_steps, b.monitored_steps);
    EXPECT_EQ(a.monitor_violations, b.monitor_violations);
    EXPECT_EQ(a.exec.cycles, b.exec.cycles);
    EXPECT_EQ(a.observed_max_cycles, b.observed_max_cycles);
    // The armed monitor checked exactly the executed instructions.
    EXPECT_EQ(a.monitored_steps, a.exec.instructions);
  }
  EXPECT_EQ(serial.monitored_steps, parallel.monitored_steps);
}

TEST(CounterWidth, ExecStatsAndIssueModelAreUint64Clean) {
  // Pin the accumulator widths: a 2500-node campaign at ~30 runs per job can
  // push cycle totals far past 2^32; any uint32 intermediate would wrap
  // silently.
  static_assert(std::is_same_v<decltype(machine::ExecStats::cycles),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(machine::ExecStats::instructions),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(machine::ExecStats::dcache_reads),
                               std::uint64_t>);
  static_assert(std::is_same_v<decltype(machine::ExecStats::taken_branches),
                               std::uint64_t>);

  // The pipeline's cycle counter must keep counting past uint32 range even
  // when fed uint32-sized stalls.
  mach::IssueModel pipe(mach::target_by_name("ppc"));
  pipe.reset();
  const std::uint32_t big = 0xFFFFFFFFu;
  pipe.add_stall(big);
  pipe.add_stall(big);
  pipe.add_stall(big);
  EXPECT_GE(pipe.current_cycle(),
            3u * static_cast<std::uint64_t>(big));
}

}  // namespace
}  // namespace vc
