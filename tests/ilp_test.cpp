// The exact-rational LP/ILP solver that backs the IPET WCET engine, with a
// focus on its edge lanes: infeasible systems, unbounded objectives,
// degenerate pivoting (Bland anti-cycling), rational overflow, branch and
// bound on known small ILPs, and the independent certificate verifier's
// rejection of corrupted assignments.
#include <gtest/gtest.h>

#include "ilp/rational.hpp"
#include "ilp/solver.hpp"
#include "support/diagnostics.hpp"
#include "support/rng.hpp"

namespace vc::ilp {
namespace {

Constraint cons(std::vector<LinTerm> terms, Sense sense, Rat rhs,
                std::string tag = {}) {
  Constraint c;
  c.terms = std::move(terms);
  c.sense = sense;
  c.rhs = rhs;
  c.tag = std::move(tag);
  return c;
}

// -------------------------------------------------------------------- Rat

TEST(RatTest, ArithmeticIsExact) {
  const Rat third = Rat::fraction(1, 3);
  const Rat sixth = Rat::fraction(1, 6);
  EXPECT_EQ(third + sixth, Rat::fraction(1, 2));
  EXPECT_EQ(third - sixth, sixth);
  EXPECT_EQ(third * Rat(6), Rat(2));
  EXPECT_EQ(Rat(1) / Rat(3), third);
  EXPECT_EQ((-third).to_string(), "-1/3");
}

TEST(RatTest, NormalizesSignAndGcd) {
  EXPECT_EQ(Rat::fraction(2, -4), Rat::fraction(-1, 2));
  EXPECT_EQ(Rat::fraction(-6, -9), Rat::fraction(2, 3));
  EXPECT_EQ(Rat::fraction(0, -7), Rat(0));
  EXPECT_TRUE(Rat::fraction(8, 4).is_integer());
}

TEST(RatTest, FloorCeilOnNegatives) {
  EXPECT_EQ(Rat::fraction(7, 2).floor(), 3);
  EXPECT_EQ(Rat::fraction(7, 2).ceil(), 4);
  EXPECT_EQ(Rat::fraction(-7, 2).floor(), -4);
  EXPECT_EQ(Rat::fraction(-7, 2).ceil(), -3);
  EXPECT_EQ(Rat(5).floor(), 5);
  EXPECT_EQ(Rat(5).ceil(), 5);
}

TEST(RatTest, ComparisonsCrossMultiply) {
  EXPECT_LT(Rat::fraction(1, 3), Rat::fraction(1, 2));
  EXPECT_LT(Rat::fraction(-1, 2), Rat::fraction(-1, 3));
  EXPECT_LE(Rat::fraction(2, 4), Rat::fraction(1, 2));
  EXPECT_GT(Rat(1), Rat::fraction(999999, 1000000));
}

TEST(RatTest, OverflowIsDetectedNotWrapped) {
  const Rat big = Rat(INT64_MAX / 2);
  EXPECT_THROW((void)(big * Rat(4)), InternalError);
  EXPECT_THROW((void)(big + big + big), InternalError);
  // Denominator blowup: 1/p + 1/q with coprime p, q near 2^32 exceeds the
  // int64 denominator budget even though each operand is representable.
  const Rat a = Rat::fraction(1, (1LL << 31) - 1);  // Mersenne prime 2^31-1
  const Rat b = Rat::fraction(1, (1LL << 33) + 1);
  EXPECT_THROW((void)(a + b), InternalError);
  EXPECT_THROW((void)-Rat(INT64_MIN), InternalError);
}

TEST(RatTest, DivisionByZeroIsAnError) {
  EXPECT_THROW((void)(Rat(1) / Rat(0)), InternalError);
  EXPECT_THROW((void)Rat::fraction(1, 0), InternalError);
}

// --------------------------------------------------------------- simplex

TEST(SimplexTest, SolvesTextbookMaximum) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  → x=2, y=6, obj=36.
  Problem p;
  p.num_vars = 2;
  p.objective = {{0, Rat(3)}, {1, Rat(5)}};
  p.constraints = {
      cons({{0, Rat(1)}}, Sense::Le, Rat(4), "x-cap"),
      cons({{1, Rat(2)}}, Sense::Le, Rat(12), "y-cap"),
      cons({{0, Rat(3)}, {1, Rat(2)}}, Sense::Le, Rat(18), "mix"),
  };
  const Solution s = solve_lp(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_EQ(s.objective, Rat(36));
  EXPECT_EQ(s.values[0], Rat(2));
  EXPECT_EQ(s.values[1], Rat(6));
  EXPECT_TRUE(check_certificate(p, s.values, s.objective).empty());
}

TEST(SimplexTest, HandlesEqualityAndGeRows) {
  // max x + y  s.t. x + y = 10, x >= 3, y <= 4  → x=6, y=4 (any split works
  // for the objective; the equality pins the optimum at 10).
  Problem p;
  p.num_vars = 2;
  p.objective = {{0, Rat(1)}, {1, Rat(1)}};
  p.constraints = {
      cons({{0, Rat(1)}, {1, Rat(1)}}, Sense::Eq, Rat(10), "sum"),
      cons({{0, Rat(1)}}, Sense::Ge, Rat(3), "x-min"),
      cons({{1, Rat(1)}}, Sense::Le, Rat(4), "y-cap"),
  };
  const Solution s = solve_lp(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_EQ(s.objective, Rat(10));
  EXPECT_TRUE(check_certificate(p, s.values, s.objective).empty());
}

TEST(SimplexTest, NegativeRhsRowsAreNormalized) {
  // -x <= -5 is x >= 5 in disguise; exercises the sign-flip path.
  Problem p;
  p.num_vars = 1;
  p.objective = {{0, Rat(-1)}};  // maximize -x → minimize x
  p.constraints = {cons({{0, Rat(-1)}}, Sense::Le, Rat(-5), "neg-rhs")};
  const Solution s = solve_lp(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_EQ(s.values[0], Rat(5));
  EXPECT_EQ(s.objective, Rat(-5));
}

TEST(SimplexTest, DetectsInfeasibleSystem) {
  // x <= 2 and x >= 5 cannot both hold.
  Problem p;
  p.num_vars = 1;
  p.objective = {{0, Rat(1)}};
  p.constraints = {
      cons({{0, Rat(1)}}, Sense::Le, Rat(2), "cap"),
      cons({{0, Rat(1)}}, Sense::Ge, Rat(5), "floor"),
  };
  EXPECT_EQ(solve_lp(p).status, Status::Infeasible);
  p.integer = true;
  EXPECT_EQ(solve(p).status, Status::Infeasible);
}

TEST(SimplexTest, DetectsUnboundedObjective) {
  // max x + y with only y capped: x grows without limit.
  Problem p;
  p.num_vars = 2;
  p.objective = {{0, Rat(1)}, {1, Rat(1)}};
  p.constraints = {cons({{1, Rat(1)}}, Sense::Le, Rat(3), "y-cap")};
  EXPECT_EQ(solve_lp(p).status, Status::Unbounded);
  p.integer = true;
  EXPECT_EQ(solve(p).status, Status::Unbounded);
}

TEST(SimplexTest, BlandRuleEscapesDegenerateCycling) {
  // Beale's classic cycling example: with Dantzig's most-negative rule a
  // simplex loops forever on these degenerate pivots; Bland's rule must
  // terminate at the optimum (objective 1/20 at x3 = 1, minimization form).
  // Stated as: min -3/4 x0 + 150 x1 - 1/50 x2 + 6 x3  (we maximize the
  // negation) subject to two degenerate rows and x2 <= ... (see Beale 1955 /
  // Chvátal ch. 3).
  Problem p;
  p.num_vars = 4;
  p.objective = {{0, Rat::fraction(3, 4)},
                 {1, Rat(-150)},
                 {2, Rat::fraction(1, 50)},
                 {3, Rat(-6)}};
  p.constraints = {
      cons({{0, Rat::fraction(1, 4)},
            {1, Rat(-60)},
            {2, Rat::fraction(-1, 25)},
            {3, Rat(9)}},
           Sense::Le, Rat(0), "r0"),
      cons({{0, Rat::fraction(1, 2)},
            {1, Rat(-90)},
            {2, Rat::fraction(-1, 50)},
            {3, Rat(3)}},
           Sense::Le, Rat(0), "r1"),
      cons({{2, Rat(1)}}, Sense::Le, Rat(1), "r2"),
  };
  const Solution s = solve_lp(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_EQ(s.objective, Rat::fraction(1, 20));
  EXPECT_LT(s.pivots, 50);  // terminates promptly, no cycling
  EXPECT_TRUE(check_certificate(p, s.values, s.objective).empty());
}

TEST(SimplexTest, EmptyProblemIsTriviallyOptimal) {
  Problem p;
  const Solution s = solve_lp(p);
  EXPECT_EQ(s.status, Status::Optimal);
  EXPECT_EQ(s.objective, Rat(0));
}

// ------------------------------------------------------- branch and bound

TEST(BranchAndBoundTest, RoundsAwayFractionalLpOptimum) {
  // max x + y s.t. 2x + 3y <= 12, 2x + y <= 6.5. LP optimum is fractional;
  // the best integral point is (1, 3) with objective 4.
  Problem p;
  p.num_vars = 2;
  p.integer = true;
  p.objective = {{0, Rat(1)}, {1, Rat(1)}};
  p.constraints = {
      cons({{0, Rat(2)}, {1, Rat(3)}}, Sense::Le, Rat(12), "a"),
      cons({{0, Rat(2)}, {1, Rat(1)}}, Sense::Le, Rat::fraction(13, 2), "b"),
  };
  const Solution relaxed = solve_lp(p);
  ASSERT_EQ(relaxed.status, Status::Optimal);
  EXPECT_FALSE(relaxed.values[0].is_integer() &&
               relaxed.values[1].is_integer());
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_EQ(s.objective, Rat(4));
  EXPECT_TRUE(s.values[0].is_integer());
  EXPECT_TRUE(s.values[1].is_integer());
  EXPECT_GT(s.bnb_nodes, 1);
  EXPECT_TRUE(check_certificate(p, s.values, s.objective).empty());
}

TEST(BranchAndBoundTest, KnapsackOptimum) {
  // 0/1 knapsack: values {10, 13, 7}, weights {3, 4, 2}, capacity 6.
  // Optimum picks items 1 and 3: value 20 (the greedy-by-density LP answer
  // is fractional).
  Problem p;
  p.num_vars = 3;
  p.integer = true;
  p.objective = {{0, Rat(10)}, {1, Rat(13)}, {2, Rat(7)}};
  p.constraints = {
      cons({{0, Rat(3)}, {1, Rat(4)}, {2, Rat(2)}}, Sense::Le, Rat(6), "w"),
      cons({{0, Rat(1)}}, Sense::Le, Rat(1), "x0<=1"),
      cons({{1, Rat(1)}}, Sense::Le, Rat(1), "x1<=1"),
      cons({{2, Rat(1)}}, Sense::Le, Rat(1), "x2<=1"),
  };
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  EXPECT_EQ(s.objective, Rat(20));
  EXPECT_EQ(s.values[0], Rat(0));
  EXPECT_EQ(s.values[1], Rat(1));
  EXPECT_EQ(s.values[2], Rat(1));
}

// ------------------------------------------------------------ certificate

TEST(CertificateTest, AcceptsExactSolutionRejectsAnyMutation) {
  Problem p;
  p.num_vars = 3;
  p.integer = true;
  p.objective = {{0, Rat(4)}, {1, Rat(3)}, {2, Rat(2)}};
  p.constraints = {
      cons({{0, Rat(1)}, {1, Rat(1)}}, Sense::Le, Rat(7), "ab"),
      cons({{1, Rat(1)}, {2, Rat(1)}}, Sense::Eq, Rat(5), "bc"),
      cons({{0, Rat(1)}}, Sense::Ge, Rat(1), "a-min"),
  };
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::Optimal);
  ASSERT_TRUE(check_certificate(p, s.values, s.objective).empty());

  // Seeded single-variable mutations: every perturbed assignment must be
  // rejected (each variable is pinned by at least one tight row here, and
  // the objective recomputation catches anything the rows miss).
  Rng rng(20260807);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<Rat> mutated = s.values;
    const std::size_t victim = rng.next_below(mutated.size());
    const std::int64_t delta =
        1 + static_cast<std::int64_t>(rng.next_below(5));
    mutated[victim] += (trial % 2 == 0) ? Rat(delta) : Rat(-delta);
    EXPECT_FALSE(check_certificate(p, mutated, s.objective).empty())
        << "mutation of x" << victim << " by " << delta << " was accepted";
  }
}

TEST(CertificateTest, RejectsWrongObjectiveClaim) {
  Problem p;
  p.num_vars = 1;
  p.objective = {{0, Rat(2)}};
  p.constraints = {cons({{0, Rat(1)}}, Sense::Le, Rat(3), "cap")};
  const Solution s = solve_lp(p);
  ASSERT_EQ(s.status, Status::Optimal);
  const std::string err = check_certificate(p, s.values, s.objective + Rat(1));
  EXPECT_NE(err.find("objective mismatch"), std::string::npos) << err;
}

TEST(CertificateTest, RejectsSizeAndSignErrors) {
  Problem p;
  p.num_vars = 2;
  p.integer = true;
  EXPECT_FALSE(check_certificate(p, {Rat(1)}, Rat(0)).empty());
  EXPECT_NE(check_certificate(p, {Rat(-1), Rat(0)}, Rat(0)).find("negative"),
            std::string::npos);
  EXPECT_NE(check_certificate(p, {Rat::fraction(1, 2), Rat(0)}, Rat(0))
                .find("fractional"),
            std::string::npos);
}

TEST(CertificateTest, NamesTheViolatedConstraintTag) {
  Problem p;
  p.num_vars = 1;
  p.constraints = {cons({{0, Rat(1)}}, Sense::Le, Rat(2), "loop@0x40")};
  const std::string err = check_certificate(p, {Rat(9)}, Rat(0));
  EXPECT_NE(err.find("loop@0x40"), std::string::npos) << err;
}

// ----------------------------------------------------- pivot-kernel parity
//
// The int64 fast lane and the rational lane follow the same Bland rule over
// the same exact values, so on any problem where the fast lane fits they
// must return bit-identical solutions — same status, same objective, same
// assignment, same pivot/node counts. `Auto` must match both (it IS the
// fast lane, with a transparent rational re-solve on overflow).

/// Both forced kernels and Auto agree exactly on `p`.
void expect_kernels_agree(const Problem& p, const char* label) {
  SCOPED_TRACE(label);
  const Solution rational = solve(p, PivotKernel::Rational);
  const Solution fast = solve(p, PivotKernel::Int64);
  const Solution chosen = solve(p);  // Auto
  for (const Solution* s : {&fast, &chosen}) {
    EXPECT_EQ(s->status, rational.status);
    EXPECT_EQ(s->objective, rational.objective);
    ASSERT_EQ(s->values.size(), rational.values.size());
    for (std::size_t i = 0; i < rational.values.size(); ++i)
      EXPECT_EQ(s->values[i], rational.values[i]) << "x" << i;
    EXPECT_EQ(s->pivots, rational.pivots);
    EXPECT_EQ(s->bnb_nodes, rational.bnb_nodes);
  }
  EXPECT_EQ(fast.fast_fallbacks, 0);
  EXPECT_EQ(chosen.fast_fallbacks, 0);
  if (rational.status == Status::Optimal) {
    EXPECT_TRUE(
        check_certificate(p, rational.values, rational.objective).empty());
  }
}

TEST(KernelParityTest, AgreesOnEveryHandWrittenLane) {
  // The same problem shapes the solver lanes above exercise: textbook
  // maximum, equality/>= rows (phase-1 artificials), negative rhs
  // normalization, infeasible, unbounded, degenerate Bland cycling, a
  // fractional LP optimum driven through branch and bound, and a knapsack.
  {
    Problem p;
    p.num_vars = 2;
    p.objective = {{0, Rat(3)}, {1, Rat(5)}};
    p.constraints = {
        cons({{0, Rat(1)}}, Sense::Le, Rat(4), "x<=4"),
        cons({{1, Rat(2)}}, Sense::Le, Rat(12), "2y<=12"),
        cons({{0, Rat(3)}, {1, Rat(2)}}, Sense::Le, Rat(18), "mix"),
    };
    expect_kernels_agree(p, "textbook-max");
  }
  {
    Problem p;
    p.num_vars = 2;
    p.objective = {{0, Rat(2)}, {1, Rat(1)}};
    p.constraints = {
        cons({{0, Rat(1)}, {1, Rat(1)}}, Sense::Eq, Rat(4), "eq"),
        cons({{0, Rat(1)}}, Sense::Ge, Rat(1), "ge"),
        cons({{1, Rat(1)}}, Sense::Le, Rat(3), "le"),
    };
    expect_kernels_agree(p, "eq-and-ge");
  }
  {
    Problem p;
    p.num_vars = 2;
    p.objective = {{0, Rat(1)}, {1, Rat(1)}};
    p.constraints = {
        cons({{0, Rat(-1)}, {1, Rat(-1)}}, Sense::Le, Rat(-2), "neg-rhs"),
        cons({{0, Rat(1)}, {1, Rat(1)}}, Sense::Le, Rat(10), "cap"),
    };
    expect_kernels_agree(p, "negative-rhs");
  }
  {
    Problem p;
    p.num_vars = 1;
    p.objective = {{0, Rat(1)}};
    p.constraints = {
        cons({{0, Rat(1)}}, Sense::Ge, Rat(5), "lo"),
        cons({{0, Rat(1)}}, Sense::Le, Rat(3), "hi"),
    };
    expect_kernels_agree(p, "infeasible");
  }
  {
    Problem p;
    p.num_vars = 2;
    p.objective = {{0, Rat(1)}, {1, Rat(1)}};
    p.constraints = {cons({{0, Rat(1)}, {1, Rat(-1)}}, Sense::Le, Rat(1),
                          "one-sided")};
    expect_kernels_agree(p, "unbounded");
  }
  {
    // Beale's cycling example — fractional coefficients, so the fast lane
    // exercises its per-row denominator handling, and Bland's rule its
    // anti-cycling guarantee.
    Problem p;
    p.num_vars = 4;
    p.objective = {{0, Rat::fraction(3, 4)},
                   {1, Rat(-150)},
                   {2, Rat::fraction(1, 50)},
                   {3, Rat(-6)}};
    p.constraints = {
        cons({{0, Rat::fraction(1, 4)},
              {1, Rat(-60)},
              {2, Rat::fraction(-1, 25)},
              {3, Rat(9)}},
             Sense::Le, Rat(0), "r0"),
        cons({{0, Rat::fraction(1, 2)},
              {1, Rat(-90)},
              {2, Rat::fraction(-1, 50)},
              {3, Rat(3)}},
             Sense::Le, Rat(0), "r1"),
        cons({{2, Rat(1)}}, Sense::Le, Rat(1), "r2"),
    };
    expect_kernels_agree(p, "beale-degenerate");
  }
  {
    Problem p;
    p.num_vars = 2;
    p.integer = true;
    p.objective = {{0, Rat(1)}, {1, Rat(1)}};
    p.constraints = {
        cons({{0, Rat(2)}, {1, Rat(3)}}, Sense::Le, Rat(12), "a"),
        cons({{0, Rat(2)}, {1, Rat(1)}}, Sense::Le, Rat::fraction(13, 2),
             "b"),
    };
    expect_kernels_agree(p, "fractional-bnb");
  }
  {
    Problem p;
    p.num_vars = 3;
    p.integer = true;
    p.objective = {{0, Rat(10)}, {1, Rat(13)}, {2, Rat(7)}};
    p.constraints = {
        cons({{0, Rat(3)}, {1, Rat(4)}, {2, Rat(2)}}, Sense::Le, Rat(6),
             "w"),
        cons({{0, Rat(1)}}, Sense::Le, Rat(1), "x0<=1"),
        cons({{1, Rat(1)}}, Sense::Le, Rat(1), "x1<=1"),
        cons({{2, Rat(1)}}, Sense::Le, Rat(1), "x2<=1"),
    };
    expect_kernels_agree(p, "knapsack");
  }
}

TEST(KernelParityTest, AgreesOnSeededRandomProblems) {
  // 48 seeded random problems over small fractional coefficients and mixed
  // senses — enough variety to hit phase-1, degenerate, infeasible, and
  // unbounded paths in both lanes. Integer trials are generated so x = 0 is
  // always feasible and every variable is explicitly bounded: the solver
  // treats "feasible relaxation but no integral point" as an internal error
  // (IPET systems always contain one), so parity trials must stay inside
  // that contract.
  Rng rng(0xF1A7C0DE);
  for (int trial = 0; trial < 48; ++trial) {
    Problem p;
    p.num_vars = static_cast<int>(2 + rng.next_below(4));
    p.integer = rng.next_below(2) == 0;
    for (int v = 0; v < p.num_vars; ++v)
      p.objective.push_back(
          {v, Rat::fraction(rng.next_range(-5, 6),
                            1 + static_cast<std::int64_t>(
                                    rng.next_below(3)))});
    const std::size_t rows = 2 + rng.next_below(4);
    for (std::size_t r = 0; r < rows; ++r) {
      Constraint c;
      for (int v = 0; v < p.num_vars; ++v) {
        const std::int64_t num = p.integer ? rng.next_range(0, 6)
                                           : rng.next_range(-4, 6);
        if (num != 0) c.terms.push_back({v, Rat(num)});
      }
      if (c.terms.empty()) c.terms.push_back({0, Rat(1)});
      const std::uint64_t pick = p.integer ? 3 : rng.next_below(4);
      c.sense = pick == 0 ? Sense::Ge : pick == 1 ? Sense::Eq : Sense::Le;
      c.rhs = Rat(p.integer ? rng.next_range(0, 20)
                            : rng.next_range(-8, 20));
      c.tag = "r" + std::to_string(r);
      p.constraints.push_back(std::move(c));
    }
    if (p.integer)
      for (int v = 0; v < p.num_vars; ++v)
        p.constraints.push_back(cons({{v, Rat(1)}}, Sense::Le,
                                     Rat(rng.next_range(0, 8)),
                                     "bound-x" + std::to_string(v)));
    expect_kernels_agree(p, ("seeded-trial-" + std::to_string(trial)).c_str());
  }
}

TEST(KernelParityTest, OverflowFallsBackTransparently) {
  // One row whose coefficient denominators are eight large primes: each Rat
  // cell is tiny (1/p), so the rational lane is comfortable, but the fast
  // lane stores rows over a single shared denominator — the lcm, here the
  // product of the primes, ~9.7e23 — which cannot fit the int64 budget.
  // Auto must re-solve on the rational lane (counted in fast_fallbacks) and
  // match it exactly; a forced Int64 kernel must refuse loudly instead of
  // wrapping.
  const std::int64_t primes[] = {947, 953, 967, 971, 977, 983, 991, 997};
  Problem p;
  p.num_vars = 9;
  // Only x8 carries objective weight; the prime row constrains x0..x7,
  // which stay nonbasic at zero, so the rational lane never pivots on it
  // and its per-cell fractions stay tiny. The fast lane, however, scales
  // the whole row to its lcm denominator at build time and must bail.
  p.objective = {{8, Rat(1)}};
  Constraint mixed;
  for (int v = 0; v < 8; ++v)
    mixed.terms.push_back({v, Rat::fraction(1, primes[v])});
  mixed.sense = Sense::Le;
  mixed.rhs = Rat(1);
  mixed.tag = "prime-row";
  p.constraints.push_back(std::move(mixed));
  p.constraints.push_back(cons({{8, Rat(1)}}, Sense::Le, Rat(2), "cap-x8"));

  const Solution rational = solve_lp(p, PivotKernel::Rational);
  const Solution chosen = solve_lp(p);  // Auto
  ASSERT_EQ(rational.status, Status::Optimal);
  EXPECT_EQ(rational.objective, Rat(2));  // cap-x8 binds; prime row slack
  EXPECT_EQ(chosen.status, rational.status);
  EXPECT_EQ(chosen.objective, rational.objective);
  ASSERT_EQ(chosen.values.size(), rational.values.size());
  for (std::size_t i = 0; i < rational.values.size(); ++i)
    EXPECT_EQ(chosen.values[i], rational.values[i]) << "x" << i;
  EXPECT_GT(chosen.fast_fallbacks, 0);
  EXPECT_THROW((void)solve_lp(p, PivotKernel::Int64), InternalError);
}

}  // namespace
}  // namespace vc::ilp
