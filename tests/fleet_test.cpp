// Fleet runner: thread-count invariance (the determinism contract — any
// worker count produces bit-identical per-node stats and WCET bounds),
// record ordering, per-job failure isolation, and the thread pool itself.
#include <atomic>
#include <gtest/gtest.h>

#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "driver/fleet.hpp"
#include "minic/typecheck.hpp"
#include "support/threadpool.hpp"
#include "validate/validate.hpp"

namespace vc {
namespace {

/// Owns the generated programs (FleetUnit only points at them). Moving the
/// struct keeps the programs vector's heap buffer, so the unit pointers stay
/// valid.
struct Suite {
  std::vector<minic::Program> programs;
  std::vector<driver::FleetUnit> units;
};

Suite small_suite(int count) {
  Suite s;
  const std::vector<dataflow::Node> nodes =
      dataflow::generate_suite(20110318, count);
  for (const dataflow::Node& node : nodes) {
    minic::Program program;
    program.name = node.name();
    dataflow::generate_node(node, &program);
    minic::type_check(program);
    s.programs.push_back(std::move(program));
  }
  for (std::size_t i = 0; i < nodes.size(); ++i)
    s.units.push_back({nodes[i].name(), &s.programs[i],
                       dataflow::step_function_name(nodes[i])});
  return s;
}

driver::FleetOptions exec_and_wcet_options(int jobs) {
  driver::FleetOptions options;
  options.jobs = jobs;
  options.exec_cycles = 10;
  options.wcet = true;
  options.wcet_nocache = true;
  return options;
}

/// Everything except the wall-time fields must match across worker counts.
void expect_records_identical(const driver::FleetReport& a,
                              const driver::FleetReport& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const driver::FleetRecord& ra = a.records[i];
    const driver::FleetRecord& rb = b.records[i];
    SCOPED_TRACE(ra.name + "/" + driver::to_string(ra.config));
    EXPECT_EQ(ra.name, rb.name);
    EXPECT_EQ(ra.config, rb.config);
    EXPECT_EQ(ra.ok, rb.ok);
    EXPECT_EQ(ra.error, rb.error);
    EXPECT_EQ(ra.code_bytes, rb.code_bytes);
    EXPECT_EQ(ra.exec.cycles, rb.exec.cycles);
    EXPECT_EQ(ra.exec.instructions, rb.exec.instructions);
    EXPECT_EQ(ra.exec.dcache_reads, rb.exec.dcache_reads);
    EXPECT_EQ(ra.exec.dcache_writes, rb.exec.dcache_writes);
    EXPECT_EQ(ra.exec.dcache_read_misses, rb.exec.dcache_read_misses);
    EXPECT_EQ(ra.exec.dcache_write_misses, rb.exec.dcache_write_misses);
    EXPECT_EQ(ra.exec.ifetch_line_misses, rb.exec.ifetch_line_misses);
    EXPECT_EQ(ra.exec.taken_branches, rb.exec.taken_branches);
    EXPECT_EQ(ra.observed_max_cycles, rb.observed_max_cycles);
    EXPECT_EQ(ra.wcet_cycles, rb.wcet_cycles);
    EXPECT_EQ(ra.wcet_nocache_cycles, rb.wcet_nocache_cycles);
    EXPECT_EQ(ra.wcet_ipet_cycles, rb.wcet_ipet_cycles);
    EXPECT_EQ(ra.wcet_ipet_capped_edges, rb.wcet_ipet_capped_edges);
    EXPECT_EQ(ra.wcet_ipet_certified, rb.wcet_ipet_certified);
  }
}

TEST(FleetTest, ThreadCountInvariance) {
  const Suite suite = small_suite(6);
  const driver::FleetReport serial =
      driver::run_fleet(suite.units, exec_and_wcet_options(1));
  const driver::FleetReport parallel8 =
      driver::run_fleet(suite.units, exec_and_wcet_options(8));
  EXPECT_EQ(serial.jobs, 1);
  EXPECT_EQ(parallel8.jobs, 8);
  expect_records_identical(serial, parallel8);
}

TEST(FleetTest, ThreadCountInvarianceWithWorkspaceReuse) {
  // The campaign configuration the acceptance run uses: both WCET engines,
  // full translation validation, and the execution monitor armed. Every
  // worker reuses its thread-local CompileWorkspace across jobs, so this is
  // the determinism contract for the pooled-scratch paths specifically: a
  // stale bitset or worklist surviving a reset() would show up here as a
  // jobs=1 vs jobs=8 record divergence.
  const Suite suite = small_suite(5);
  driver::FleetOptions options = exec_and_wcet_options(1);
  options.wcet_engine = wcet::WcetEngine::Both;
  options.monitor = machine::MonitorMode::Full;
  options.compile_override = [](const minic::Program& program,
                                driver::Config config,
                                const driver::CompileOptions& copts) {
    return validate::validated_compile(program, config, /*n_tests=*/4,
                                       /*seed=*/1,
                                       driver::ValidateLevel::Full, copts);
  };
  const driver::FleetReport serial = driver::run_fleet(suite.units, options);
  options.jobs = 8;
  const driver::FleetReport parallel8 =
      driver::run_fleet(suite.units, options);
  expect_records_identical(serial, parallel8);
  for (const driver::FleetRecord& r : serial.records) {
    EXPECT_TRUE(r.ok) << r.name << ": " << r.error;
    EXPECT_EQ(r.monitor_violations, 0u) << r.name;
  }
}

TEST(FleetTest, RecordOrderingAndShape) {
  const Suite suite = small_suite(3);
  driver::FleetOptions options = exec_and_wcet_options(4);
  const driver::FleetReport report = driver::run_fleet(suite.units, options);
  ASSERT_EQ(report.units, suite.units.size());
  ASSERT_EQ(report.configs, options.configs.size());
  ASSERT_EQ(report.records.size(),
            suite.units.size() * options.configs.size());
  for (std::size_t u = 0; u < report.units; ++u) {
    for (std::size_t c = 0; c < report.configs; ++c) {
      const driver::FleetRecord& r = report.at(u, c);
      EXPECT_EQ(r.name, suite.units[u].name);
      EXPECT_EQ(r.config, options.configs[c]);
      EXPECT_TRUE(r.ok) << r.error;
      EXPECT_GT(r.code_bytes, 0u);
      EXPECT_GT(r.exec.cycles, 0u);
      EXPECT_GT(r.wcet_cycles, 0u);
      // Cache analysis can only tighten the bound.
      EXPECT_GE(r.wcet_nocache_cycles, r.wcet_cycles);
      // The bound must cover every observed run (soundness).
      EXPECT_GE(r.wcet_cycles, r.observed_max_cycles);
    }
  }
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.compile_seconds, 0.0);
  EXPECT_FALSE(report.throughput_summary().empty());
}

TEST(FleetTest, BothEnginesFillIpetFieldsAndAggregates) {
  const Suite suite = small_suite(3);
  driver::FleetOptions options = exec_and_wcet_options(2);
  options.wcet_engine = wcet::WcetEngine::Both;
  const driver::FleetReport report = driver::run_fleet(suite.units, options);
  EXPECT_EQ(report.wcet_engine, wcet::WcetEngine::Both);
  std::uint64_t certified = 0;
  for (const driver::FleetRecord& r : report.records) {
    ASSERT_TRUE(r.ok) << r.error;
    // wcet_cycles stays the structural bound (back-compat for the deltas
    // the fig2/tightness tables compute); the IPET bound rides alongside.
    EXPECT_GT(r.wcet_cycles, 0u);
    EXPECT_GT(r.wcet_ipet_cycles, 0u);
    EXPECT_TRUE(r.wcet_ipet_certified);
    // Both engines sound against the observed maximum.
    EXPECT_GE(r.wcet_cycles, r.observed_max_cycles);
    EXPECT_GE(r.wcet_ipet_cycles, r.observed_max_cycles);
    if (r.wcet_ipet_certified) ++certified;
  }
  EXPECT_EQ(report.ipet_records, report.records.size());
  EXPECT_EQ(report.ipet_certified, certified);
  // The footer mentions the engine line when IPET ran.
  EXPECT_NE(report.throughput_summary().find("wcet engine both"),
            std::string::npos);
}

TEST(FleetTest, JobFailureIsIsolated) {
  Suite suite = small_suite(2);
  suite.units[0].entry = "no_such_function";
  driver::FleetOptions options;
  options.jobs = 2;
  options.exec_cycles = 2;
  const driver::FleetReport report = driver::run_fleet(suite.units, options);
  for (std::size_t c = 0; c < report.configs; ++c) {
    EXPECT_FALSE(report.at(0, c).ok);
    EXPECT_FALSE(report.at(0, c).error.empty());
    EXPECT_TRUE(report.at(1, c).ok) << report.at(1, c).error;
  }
}

TEST(FleetTest, JobSeedIsPureFunctionOfSuiteSeedAndIndex) {
  EXPECT_EQ(driver::fleet_job_seed(7, 0), driver::fleet_job_seed(7, 0));
  EXPECT_NE(driver::fleet_job_seed(7, 0), driver::fleet_job_seed(7, 1));
  EXPECT_NE(driver::fleet_job_seed(7, 0), driver::fleet_job_seed(8, 0));
}

// The report schema version is a contract with the CI distillers and the
// trajectory tooling; v5 added the vccd service stanza (disabled for
// plain in-process campaigns).
TEST(FleetTest, ReportSchemaIsV5WithServiceStanza) {
  const json::Value doc = driver::to_json(driver::FleetReport{});
  EXPECT_EQ(doc.at("schema").as_string(), "vcflight-fleet-report-v7");
  EXPECT_FALSE(doc.at("service").at("enabled").as_bool(true));
}

TEST(ThreadPoolTest, RunsEveryJobExactlyOnce) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 1000);
  }
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(hits.size(), 8,
               [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ParallelForSerialFallback) {
  std::vector<int> hits(64, 0);
  parallel_for(hits.size(), 1, [&hits](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  EXPECT_THROW(
      parallel_for(16, 4,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

}  // namespace
}  // namespace vc
