// Machine-level pass interaction tests: the O2 scheduler must help (or at
// least never hurt) latency-bound kernels, annotations must survive all O2
// transformations at meaningful addresses, and generator coverage sanity.
#include <gtest/gtest.h>

#include <set>

#include "dataflow/generator.hpp"
#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "wcet/wcet.hpp"

namespace vc {
namespace {

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

TEST(Schedule, InterleavableChainsBenefitFromO2) {
  // Four independent FP chains: the scheduler can interleave them to hide
  // the 4-cycle FPU latency; unscheduled code executes them back to back.
  const auto program = parse(R"(
    func f64 chains(f64 a, f64 b, f64 c, f64 d) {
      local f64 w; local f64 x; local f64 y; local f64 z;
      w = a * a; w = w * a; w = w * a; w = w * a;
      x = b * b; x = x * b; x = x * b; x = x * b;
      y = c * c; y = y * c; y = y * c; y = y * c;
      z = d * d; z = z * d; z = z * d; z = z * d;
      return (w + x) + (y + z);
    }
  )");
  std::map<driver::Config, std::uint64_t> cycles;
  const std::vector<minic::Value> args{
      minic::Value::of_f64(1.01), minic::Value::of_f64(0.99),
      minic::Value::of_f64(1.02), minic::Value::of_f64(0.98)};
  minic::Value expect = minic::Value::of_i32(0);
  for (driver::Config config :
       {driver::Config::Verified, driver::Config::O2Full}) {
    const auto compiled = driver::compile_program(program, config);
    machine::Machine m(compiled.image);
    const minic::Value r = m.call("chains", args, minic::Type::F64);
    if (config == driver::Config::Verified) expect = r;
    EXPECT_EQ(expect, r);  // scheduling must not change results
    cycles[config] = m.stats().cycles;
  }
  EXPECT_LT(cycles[driver::Config::O2Full],
            cycles[driver::Config::Verified]);
}

TEST(Schedule, AnnotationsSurviveO2Transformations) {
  const auto program = parse(R"(
    global f64 tab[8] = {0,1,2,3,4,5,6,7};
    func f64 f(i32 k, f64 x) {
      local f64 acc;
      local i32 i;
      __annot("0 <= %1 <= 7", k);
      acc = x * 2.0 + 1.0;
      i = 0;
      while (i < k) {
        __annot("loop <= 7");
        acc = acc + tab[i] * x;
        i = i + 1;
      }
      return acc;
    }
  )");
  const auto compiled = driver::compile_program(program, driver::Config::O2Full);
  // Both annotations present, inside the function, and the loop annotation
  // attaches to the loop (analysis succeeds with a bound of 7).
  ASSERT_EQ(compiled.image.annotations.size(), 2u);
  for (const auto& a : compiled.image.annotations) {
    EXPECT_GE(a.addr, compiled.image.fn_entry.at("f"));
    EXPECT_LT(a.addr, compiled.image.fn_end.at("f"));
  }
  const wcet::WcetResult r = wcet::analyze_wcet(compiled.image, "f");
  ASSERT_EQ(r.loops.size(), 1u);
  EXPECT_EQ(r.loops[0].bound, 7);
  // Soundness spot check at the annotated extreme.
  machine::Machine m(compiled.image);
  m.call("f", {minic::Value::of_i32(7), minic::Value::of_f64(1.5)},
         minic::Type::F64);
  EXPECT_LE(m.stats().cycles, r.wcet_cycles);
}

TEST(Generator, LargeSuiteCoversTheSymbolLibrary) {
  // Over a big generated suite, (nearly) every symbol kind must appear —
  // guards against silently dead generator paths after histogram edits.
  std::set<dataflow::SymbolKind> seen;
  for (const auto& node : dataflow::generate_suite(13, 60))
    for (const auto& b : node.blocks()) seen.insert(b.kind);
  using K = dataflow::SymbolKind;
  for (K k : {K::InputF, K::ConstF, K::Add, K::Sub, K::Mul, K::Gain, K::Bias,
              K::Abs, K::Neg, K::Min, K::Saturate, K::Deadzone, K::CmpGt,
              K::Switch, K::UnitDelay, K::FirstOrderLag, K::Integrator,
              K::RateLimiter, K::Biquad, K::DivSafe, K::MovingAverage,
              K::Lookup1D, K::Output, K::IoAcquire, K::Hysteresis,
              K::Debounce}) {
    EXPECT_TRUE(seen.count(k) != 0) << dataflow::to_string(k);
  }
}

}  // namespace
}  // namespace vc
