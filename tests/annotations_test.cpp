// Annotation machinery tests: chain parsing, loop-bound parsing, indexing by
// address range, operand location resolution, and end-to-end transport.
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "wcet/annotations.hpp"

namespace vc {
namespace {

TEST(AnnotChain, SimpleBounds) {
  const auto r = wcet::parse_chain("0 <= %1 <= 59");
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->at(1), Interval::range(0, 59));
}

TEST(AnnotChain, PaperExample) {
  // The paper's own example: "0 <= %1 <= %2 < 360".
  const auto r = wcet::parse_chain("0 <= %1 <= %2 < 360");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->at(1), Interval::range(0, 359));
  EXPECT_EQ(r->at(2), Interval::range(0, 359));
}

TEST(AnnotChain, StrictInequalitiesAndChains) {
  const auto r = wcet::parse_chain("-5 < %1 < 5");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->at(1), Interval::range(-4, 4));

  const auto r2 = wcet::parse_chain("0 <= %1 <= 10 <= %2 <= 20");
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->at(1), Interval::range(0, 10));
  EXPECT_EQ(r2->at(2), Interval::range(10, 20));

  // One-sided.
  const auto r3 = wcet::parse_chain("%1 <= 100");
  ASSERT_TRUE(r3.has_value());
  EXPECT_EQ(r3->at(1).hi(), 100);
}

TEST(AnnotChain, Rejections) {
  EXPECT_FALSE(wcet::parse_chain("hello world").has_value());
  EXPECT_FALSE(wcet::parse_chain("%1 >= 0").has_value());  // only <= and <
  EXPECT_FALSE(wcet::parse_chain("%0 <= 3").has_value());  // operands 1-based
  EXPECT_FALSE(wcet::parse_chain("1 <=").has_value());
  EXPECT_FALSE(wcet::parse_chain("").has_value());
}

TEST(AnnotIndex, LoopBoundsAndConstraints) {
  const auto program = [] {
    minic::Program p = minic::parse_program(R"(
      func i32 f(i32 n) {
        local i32 i;
        __annot("0 <= %1 <= 6", n);
        i = 0;
        while (i < n) {
          __annot("loop <= 6");
          i = i + 1;
        }
        return i;
      }
    )");
    minic::type_check(p);
    return p;
  }();
  const driver::Compiled compiled =
      driver::compile_program(program, driver::Config::Verified);
  const auto index = wcet::index_annotations(
      compiled.image, compiled.image.fn_entry.at("f"),
      compiled.image.fn_end.at("f"));
  EXPECT_TRUE(index.warnings.empty());
  ASSERT_EQ(index.loop_bounds.size(), 1u);
  EXPECT_EQ(index.loop_bounds.begin()->second, 6);
  ASSERT_EQ(index.constraints.size(), 1u);
  const auto& constraints = index.constraints.begin()->second;
  ASSERT_EQ(constraints.size(), 1u);
  EXPECT_EQ(constraints[0].range, Interval::range(0, 6));
  // In the verified config the operand lives in a register.
  EXPECT_EQ(constraints[0].loc.kind, mach::MLoc::Kind::Gpr);
}

TEST(AnnotIndex, PatternModeResolvesToStackSlots) {
  const auto program = [] {
    minic::Program p = minic::parse_program(R"(
      func i32 f(i32 n) {
        __annot("0 <= %1 <= 6", n);
        return n;
      }
    )");
    minic::type_check(p);
    return p;
  }();
  const driver::Compiled compiled =
      driver::compile_program(program, driver::Config::O0Pattern);
  const auto index = wcet::index_annotations(
      compiled.image, compiled.image.fn_entry.at("f"),
      compiled.image.fn_end.at("f"));
  ASSERT_EQ(index.constraints.size(), 1u);
  EXPECT_EQ(index.constraints.begin()->second[0].loc.kind,
            mach::MLoc::Kind::StackSlot);
}

TEST(AnnotIndex, UnparseableFormatsWarnButDoNotFail) {
  const auto program = [] {
    minic::Program p = minic::parse_program(R"(
      func i32 f(i32 n) {
        __annot("mode is cruise", n);
        return n;
      }
    )");
    minic::type_check(p);
    return p;
  }();
  const driver::Compiled compiled =
      driver::compile_program(program, driver::Config::Verified);
  const auto index = wcet::index_annotations(
      compiled.image, compiled.image.fn_entry.at("f"),
      compiled.image.fn_end.at("f"));
  EXPECT_EQ(index.constraints.size(), 0u);
  EXPECT_EQ(index.warnings.size(), 1u);
}

}  // namespace
}  // namespace vc
