// The vcc strict argument-parsing rules (malformed literals, wrong arity,
// and flag values are diagnosed instead of silently truncated/zero-filled)
// and the --batch exit-code/summary policy: a batch with any failing file
// must exit non-zero and name every failure explicitly.
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

#include "mach/target.hpp"
#include "tools/vcc_cli.hpp"

namespace vc::tools {
namespace {

minic::Function two_param_fn() {
  minic::Function fn;
  fn.name = "f";
  fn.params = {{"x", minic::Type::F64}, {"n", minic::Type::I32}};
  return fn;
}

TEST(VccCliTest, ParsesWellFormedArguments) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5,-3");
  ASSERT_TRUE(args.ok()) << args.error;
  ASSERT_EQ(args.values.size(), 2u);
  EXPECT_EQ(args.values[0].type, minic::Type::F64);
  EXPECT_DOUBLE_EQ(args.values[0].f, 4.5);
  EXPECT_EQ(args.values[1].type, minic::Type::I32);
  EXPECT_EQ(args.values[1].i, -3);
}

TEST(VccCliTest, AcceptsScientificAndNegativeF64) {
  minic::Function fn;
  fn.name = "g";
  fn.params = {{"x", minic::Type::F64}};
  const CallArgs args = parse_call_args(fn, "-1.25e3");
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_DOUBLE_EQ(args.values[0].f, -1250.0);
}

TEST(VccCliTest, RejectsMalformedF64) {
  const CallArgs args = parse_call_args(two_param_fn(), "abc,3");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("invalid f64 literal 'abc'"), std::string::npos);
  EXPECT_NE(args.error.find("'x'"), std::string::npos);
}

TEST(VccCliTest, RejectsTrailingGarbage) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5x,3");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("invalid f64"), std::string::npos);
}

TEST(VccCliTest, RejectsFractionalI32) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5,3.7");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("invalid i32 literal '3.7'"), std::string::npos);
}

TEST(VccCliTest, RejectsOutOfRangeI32) {
  const CallArgs args = parse_call_args(two_param_fn(), "1.0,99999999999");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("invalid i32"), std::string::npos);
}

TEST(VccCliTest, RejectsMissingArguments) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("expects 2 argument(s), got 1"),
            std::string::npos);
}

TEST(VccCliTest, RejectsNoArgumentsWhenParamsExpected) {
  const CallArgs args = parse_call_args(two_param_fn(), "");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("expects 2 argument(s), got 0"),
            std::string::npos);
}

TEST(VccCliTest, RejectsExtraArguments) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5,3,9");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("expects 2 argument(s), got 3"),
            std::string::npos);
}

TEST(VccCliTest, RejectsEmptyItem) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5,");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("invalid i32 literal ''"), std::string::npos);
}

TEST(VccCliTest, EmptySpecMatchesNullaryFunction) {
  minic::Function fn;
  fn.name = "h";
  const CallArgs args = parse_call_args(fn, "");
  EXPECT_TRUE(args.ok()) << args.error;
  EXPECT_TRUE(args.values.empty());
}

TEST(VccCliTest, ParseConfigName) {
  EXPECT_EQ(parse_config_name("O0"), driver::Config::O0Pattern);
  EXPECT_EQ(parse_config_name("O1"), driver::Config::O1NoRegalloc);
  EXPECT_EQ(parse_config_name("verified"), driver::Config::Verified);
  EXPECT_EQ(parse_config_name("O2"), driver::Config::O2Full);
  EXPECT_FALSE(parse_config_name("O3").has_value());
  EXPECT_FALSE(parse_config_name("").has_value());
}

TEST(VccCliTest, ParseTargetName) {
  // Round-trip every registered target through the strict parser.
  for (const std::string& name : mach::target_names())
    EXPECT_EQ(parse_target_name(name), name);
  EXPECT_EQ(parse_target_name("ppc"), "ppc");
  EXPECT_EQ(parse_target_name("rv32"), "rv32");
  // Unknown, empty, and case-mangled spellings are rejected (the callers
  // turn nullopt into a diagnostic + exit 2).
  EXPECT_FALSE(parse_target_name("riscv").has_value());
  EXPECT_FALSE(parse_target_name("PPC").has_value());
  EXPECT_FALSE(parse_target_name("rv32 ").has_value());
  EXPECT_FALSE(parse_target_name("").has_value());
}

TEST(VccCliTest, TargetFlagConflictsAreContradictoryRepeats) {
  FlagConflicts conflicts;
  EXPECT_FALSE(conflicts.note("--target", "ppc").has_value());
  EXPECT_FALSE(conflicts.note("--target", "ppc").has_value());
  const auto conflict = conflicts.note("--target", "rv32");
  ASSERT_TRUE(conflict.has_value());
  EXPECT_NE(conflict->find("--target"), std::string::npos) << *conflict;
  EXPECT_NE(conflict->find("'ppc'"), std::string::npos) << *conflict;
  EXPECT_NE(conflict->find("'rv32'"), std::string::npos) << *conflict;
}

TEST(VccCliTest, ParseWcetEngineName) {
  EXPECT_EQ(parse_wcet_engine_name("structural"), wcet::WcetEngine::Structural);
  EXPECT_EQ(parse_wcet_engine_name("ipet"), wcet::WcetEngine::Ipet);
  EXPECT_EQ(parse_wcet_engine_name("both"), wcet::WcetEngine::Both);
  // Round-trip through the one name table.
  for (const char* name : wcet::kWcetEngineNames)
    EXPECT_EQ(wcet::to_string(*parse_wcet_engine_name(name)), name);
  EXPECT_FALSE(parse_wcet_engine_name("exact").has_value());
  EXPECT_FALSE(parse_wcet_engine_name("Structural").has_value());
  EXPECT_FALSE(parse_wcet_engine_name("").has_value());
}

TEST(VccCliTest, ParseCountFlag) {
  EXPECT_EQ(parse_count_flag("8"), 8);
  EXPECT_EQ(parse_count_flag("0"), 0);
  EXPECT_FALSE(parse_count_flag("").has_value());
  EXPECT_FALSE(parse_count_flag("abc").has_value());
  EXPECT_FALSE(parse_count_flag("-1").has_value());
  EXPECT_FALSE(parse_count_flag("8x").has_value());
  EXPECT_FALSE(parse_count_flag("10000001").has_value());
}

TEST(VccCliTest, SplitFlagRecognizesFlagShapes) {
  const auto f = split_flag("--jobs=4");
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->name, "--jobs");
  EXPECT_EQ(f->value, "4");

  const auto bare = split_flag("--emit-asm");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->name, "--emit-asm");
  EXPECT_EQ(bare->value, "");

  // Bare --validate means --validate=rtl; the conflict guard must see them
  // as the same value.
  const auto v = split_flag("--validate");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->value, "rtl");

  // Non-flag words (file paths, "--") are not flags.
  EXPECT_FALSE(split_flag("file.mc").has_value());
  EXPECT_FALSE(split_flag("--").has_value());
  EXPECT_FALSE(split_flag("-j4").has_value());
}

TEST(VccCliTest, FlagConflictsDiagnoseContradictoryRepeats) {
  FlagConflicts conflicts;
  EXPECT_FALSE(conflicts.note("--jobs", "4").has_value());
  // Agreeing repeat: tolerated.
  EXPECT_FALSE(conflicts.note("--jobs", "4").has_value());
  // Contradictory repeat: diagnosed, naming both values.
  const auto conflict = conflicts.note("--jobs", "8");
  ASSERT_TRUE(conflict.has_value());
  EXPECT_NE(conflict->find("--jobs"), std::string::npos) << *conflict;
  EXPECT_NE(conflict->find("'4'"), std::string::npos) << *conflict;
  EXPECT_NE(conflict->find("'8'"), std::string::npos) << *conflict;
  // Distinct flags never interact.
  EXPECT_FALSE(conflicts.note("--nodes", "8").has_value());

  // The bare/= spellings of --validate agree through split_flag.
  FlagConflicts validate;
  EXPECT_FALSE(
      validate.note(split_flag("--validate")->name,
                    split_flag("--validate")->value).has_value());
  EXPECT_FALSE(
      validate.note(split_flag("--validate=rtl")->name,
                    split_flag("--validate=rtl")->value).has_value());
  EXPECT_TRUE(
      validate.note(split_flag("--validate=full")->name,
                    split_flag("--validate=full")->value).has_value());
}

// -------------------------------------------------------------- --profile

TEST(VccProfileTest, FormatsPhaseTableWithTotals) {
  std::vector<ProfilePhase> phases;
  phases.push_back({"compile", 0.25, 1000, 64000});
  phases.push_back({"wcet", 0.5, 200, 8192});
  const pass::PipelineStats no_passes;
  const std::string out = format_profile(phases, no_passes);
  EXPECT_NE(out.find("== profile =="), std::string::npos) << out;
  EXPECT_NE(out.find("compile"), std::string::npos);
  EXPECT_NE(out.find("wcet"), std::string::npos);
  EXPECT_NE(out.find("0.250000"), std::string::npos) << out;
  EXPECT_NE(out.find("64000"), std::string::npos) << out;
  // The (total) row sums the phases: 0.75s, 1200 allocations, 72192 bytes.
  EXPECT_NE(out.find("(total)"), std::string::npos);
  EXPECT_NE(out.find("0.750000"), std::string::npos) << out;
  EXPECT_NE(out.find("1200"), std::string::npos) << out;
  EXPECT_NE(out.find("72192"), std::string::npos) << out;
  // No pass telemetry -> no pass table (a cache-served compile runs none).
  EXPECT_EQ(out.find("(passes)"), std::string::npos) << out;
}

TEST(VccProfileTest, AppendsPassTableWhenTelemetryPresent) {
  std::vector<ProfilePhase> phases;
  phases.push_back({"compile", 0.1, 10, 100});
  pass::PipelineStats stats;
  pass::PassStat cse;
  cse.name = "cse";
  cse.seconds = 0.025;
  cse.runs = 3;
  cse.applied = 2;
  cse.rewrites = 17;
  cse.checks = 5;
  stats.passes.push_back(cse);
  const std::string out = format_profile(phases, stats);
  EXPECT_NE(out.find("cse"), std::string::npos) << out;
  EXPECT_NE(out.find("0.025000"), std::string::npos) << out;
  EXPECT_NE(out.find("17"), std::string::npos) << out;
  EXPECT_NE(out.find("(passes)"), std::string::npos) << out;
}

TEST(VccProfileTest, SplitFlagKeepsProfileBare) {
  // `--profile` is a bare boolean: the valued spelling is a distinct name
  // ("--profile=x" splits to name "--profile", value "x") which the vcc
  // flag loop rejects with exit 2 (covered by the vcc_profile_cli ctest).
  const auto bare = split_flag("--profile");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->name, "--profile");
  EXPECT_TRUE(bare->value.empty());
  const auto valued = split_flag("--profile=x");
  ASSERT_TRUE(valued.has_value());
  EXPECT_EQ(valued->name, "--profile");
  EXPECT_EQ(valued->value, "x");
}

// ---------------------------------------------------------------- --batch

namespace fs = std::filesystem;

/// A scratch directory of .mc files, removed on destruction.
class BatchDir {
 public:
  explicit BatchDir(const std::string& tag)
      : dir_((fs::temp_directory_path() / ("vcc-batch-test-" + tag))
                 .string()) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~BatchDir() {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void add(const std::string& name, const std::string& source) const {
    std::ofstream out(fs::path(dir_) / name);
    out << source;
  }

  [[nodiscard]] const std::string& path() const { return dir_; }

 private:
  std::string dir_;
};

const char kGoodSource[] =
    "func f64 lowpass(f64 x) { return 0.2 * x; }\n";
const char kBadSource[] =
    "func f64 broken(f64 x) { return undeclared_name; }\n";

TEST(VccBatchTest, AllFilesOkExitsZero) {
  const BatchDir dir("all-ok");
  dir.add("a.mc", kGoodSource);
  dir.add("b.mc", kGoodSource);
  const BatchResult result = run_batch(dir.path(), BatchOptions{});
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_EQ(result.total, 2u);
  EXPECT_EQ(result.compiled, 2u);
  EXPECT_TRUE(result.failures.empty());
  ASSERT_EQ(result.lines.size(), 2u);
  for (const std::string& line : result.lines)
    EXPECT_NE(line.find(": ok"), std::string::npos) << line;
  EXPECT_NE(result.summary.find("2/2 file(s) ok, 0 failed"),
            std::string::npos)
      << result.summary;
}

TEST(VccBatchTest, AnyFailureExitsNonZeroAndIsNamed) {
  const BatchDir dir("one-bad");
  dir.add("a.mc", kGoodSource);
  dir.add("bad.mc", kBadSource);
  dir.add("c.mc", kGoodSource);
  const BatchResult result = run_batch(dir.path(), BatchOptions{});
  EXPECT_NE(result.exit_code, 0);
  EXPECT_EQ(result.total, 3u);
  EXPECT_EQ(result.compiled, 2u);
  // The failing file is named in the failure list AND its per-file line.
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].find("bad.mc"), std::string::npos);
  bool saw_error_line = false;
  for (const std::string& line : result.lines)
    if (line.find("bad.mc") != std::string::npos &&
        line.find("error") != std::string::npos)
      saw_error_line = true;
  EXPECT_TRUE(saw_error_line);
  EXPECT_NE(result.summary.find("2/3 file(s) ok, 1 failed"),
            std::string::npos)
      << result.summary;
}

TEST(VccBatchTest, FailureIsolatedPerFileAtAnyWorkerCount) {
  const BatchDir dir("parallel-bad");
  dir.add("bad.mc", kBadSource);
  for (int i = 0; i < 6; ++i)
    dir.add("ok" + std::to_string(i) + ".mc", kGoodSource);
  BatchOptions options;
  options.jobs = 4;
  const BatchResult result = run_batch(dir.path(), options);
  EXPECT_NE(result.exit_code, 0);
  EXPECT_EQ(result.compiled, 6u);
  EXPECT_EQ(result.failures.size(), 1u);
}

TEST(VccBatchTest, NegativeJobsIsDiagnosed) {
  const BatchDir dir("neg-jobs");
  dir.add("a.mc", kGoodSource);
  BatchOptions options;
  options.jobs = -3;
  const BatchResult result = run_batch(dir.path(), options);
  EXPECT_EQ(result.exit_code, 2);  // usage error, not a compile failure
  EXPECT_EQ(result.total, 0u);  // rejected before any file was touched
  EXPECT_NE(result.summary.find("--jobs must be >= 0"), std::string::npos)
      << result.summary;
  EXPECT_NE(result.summary.find("-3"), std::string::npos);
}

TEST(VccBatchTest, MissingDirectoryIsDiagnosed) {
  const BatchResult result =
      run_batch("/nonexistent/vcc-batch-dir", BatchOptions{});
  EXPECT_EQ(result.exit_code, 2);
  // Diagnostic names the path and the reason.
  EXPECT_NE(result.summary.find("not a directory"), std::string::npos)
      << result.summary;
  EXPECT_NE(result.summary.find("/nonexistent/vcc-batch-dir"),
            std::string::npos)
      << result.summary;
}

TEST(VccBatchTest, PathThatIsARegularFileIsDiagnosedWithReason) {
  const BatchDir dir("not-a-dir");
  dir.add("plain.mc", kGoodSource);
  const std::string file = (fs::path(dir.path()) / "plain.mc").string();
  const BatchResult result = run_batch(file, BatchOptions{});
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_EQ(result.total, 0u);
  EXPECT_NE(result.summary.find("not a directory"), std::string::npos)
      << result.summary;
  EXPECT_NE(result.summary.find(file), std::string::npos) << result.summary;
  EXPECT_NE(result.summary.find("regular file"), std::string::npos)
      << result.summary;
}

TEST(VccBatchTest, UnreadableFileIsNamedWithReasonAndExits2) {
  const BatchDir dir("unreadable");
  dir.add("good.mc", kGoodSource);
  dir.add("locked.mc", kGoodSource);
  const fs::path locked = fs::path(dir.path()) / "locked.mc";
  fs::permissions(locked, fs::perms::none);
  // Root ignores permission bits; only assert the diagnostic when the file
  // is actually unreadable in this environment.
  if (std::ifstream(locked).good()) {
    fs::permissions(locked, fs::perms::owner_all);
    GTEST_SKIP() << "cannot make a file unreadable here (running as root)";
  }
  const BatchResult result = run_batch(dir.path(), BatchOptions{});
  fs::permissions(locked, fs::perms::owner_all);
  EXPECT_EQ(result.exit_code, 2);  // environment error, not a compile error
  EXPECT_EQ(result.io_errors, 1u);
  EXPECT_EQ(result.compiled, 1u);
  bool saw = false;
  for (const std::string& line : result.lines)
    if (line.find("locked.mc") != std::string::npos &&
        line.find("cannot open file") != std::string::npos &&
        line.find("(") != std::string::npos)
      saw = true;  // path + strerror reason on one line
  EXPECT_TRUE(saw);
}

TEST(VccBatchTest, EmptyDirectoryIsDiagnosed) {
  const BatchDir dir("empty");
  const BatchResult result = run_batch(dir.path(), BatchOptions{});
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.summary.find("no .mc files"), std::string::npos);
}

TEST(VccBatchTest, SecondRunHitsTheCache) {
  const BatchDir dir("cache");
  // Distinct sources: identical files would share one artifact key (content
  // addressing) and the second file would hit within the cold run already.
  dir.add("a.mc", kGoodSource);
  dir.add("b.mc", "func f64 gain(f64 x) { return 1.5 * x; }\n");
  const std::string cache =
      (fs::temp_directory_path() / "vcc-batch-test-cache-store").string();
  fs::remove_all(cache);
  BatchOptions options;
  options.cache_dir = cache;

  const BatchResult cold = run_batch(dir.path(), options);
  EXPECT_EQ(cold.exit_code, 0);
  EXPECT_EQ(cold.cache_hits, 0u);

  const BatchResult warm = run_batch(dir.path(), options);
  EXPECT_EQ(warm.exit_code, 0);
  EXPECT_EQ(warm.cache_hits, 2u);
  for (const std::string& line : warm.lines)
    EXPECT_NE(line.find("(cached)"), std::string::npos) << line;
  // The cache footer rides along in the summary.
  EXPECT_NE(warm.summary.find("artifact store"), std::string::npos)
      << warm.summary;
  fs::remove_all(cache);
}

TEST(VccBatchTest, ValidateBypassesTheCache) {
  const BatchDir dir("validate");
  dir.add("a.mc", kGoodSource);
  const std::string cache =
      (fs::temp_directory_path() / "vcc-batch-test-validate-store").string();
  fs::remove_all(cache);
  BatchOptions options;
  options.cache_dir = cache;
  options.validate = driver::ValidateLevel::Rtl;
  const BatchResult first = run_batch(dir.path(), options);
  EXPECT_EQ(first.exit_code, 0);
  const BatchResult second = run_batch(dir.path(), options);
  EXPECT_EQ(second.exit_code, 0);
  EXPECT_EQ(second.cache_hits, 0u);  // re-validation is the point of the run
  fs::remove_all(cache);
}

// ----------------------------------------------------- pass-name strictness

TEST(VccCliTest, CheckPassNamesAcceptsRegisteredSteps) {
  EXPECT_EQ(check_pass_names({}), std::nullopt);
  EXPECT_EQ(check_pass_names({"constprop", "cse", "dce"}), std::nullopt);
  // The SSA bracket steps are selectable like any other optimization step.
  EXPECT_EQ(check_pass_names({"ssa-build", "ssa-gvn", "ssa-licm",
                              "ssa-unroll", "ssa-rotate", "ssa-out"}),
            std::nullopt);
}

TEST(VccCliTest, CheckPassNamesDiagnosesUnknownNameListingRegistry) {
  // The classic typo: the diagnostic must name the offender AND list every
  // registered selectable step so the operator can fix it without digging.
  const auto diag = check_pass_names({"constprop", "ssa-gnv"});
  ASSERT_TRUE(diag.has_value());
  EXPECT_NE(diag->find("unknown pass 'ssa-gnv'"), std::string::npos) << *diag;
  EXPECT_NE(diag->find("registered steps"), std::string::npos) << *diag;
  EXPECT_NE(diag->find("ssa-gvn"), std::string::npos) << *diag;
  EXPECT_NE(diag->find("constprop"), std::string::npos) << *diag;
}

TEST(VccCliTest, CheckPassNamesRejectsStructuralSteps) {
  const auto diag = check_pass_names({"regalloc"});
  ASSERT_TRUE(diag.has_value());
  EXPECT_NE(diag->find("structural"), std::string::npos) << *diag;
}

TEST(VccBatchTest, SsaBatchCompilesAndKeysTheCacheSeparately) {
  const BatchDir dir("ssa");
  dir.add("loop.mc", "global f64 acc = 0.0;\n"
                     "func f64 accumulate(f64 x) {\n"
                     "  local i32 i;\n"
                     "  i = 0;\n"
                     "  while (i < 8) { __annot(\"loop <= 8\");\n"
                     "    acc = acc + x * 2.0; i = i + 1; }\n"
                     "  return acc;\n"
                     "}\n");
  const std::string cache =
      (fs::temp_directory_path() / "vcc-batch-test-ssa-store").string();
  fs::remove_all(cache);
  BatchOptions options;
  options.cache_dir = cache;

  const BatchResult plain = run_batch(dir.path(), options);
  EXPECT_EQ(plain.exit_code, 0);
  // The SSA run must not replay the non-SSA entry: the "+ssa" key salt
  // forces a cold compile under the bracket.
  options.ssa = true;
  const BatchResult ssa_cold = run_batch(dir.path(), options);
  EXPECT_EQ(ssa_cold.exit_code, 0);
  EXPECT_EQ(ssa_cold.cache_hits, 0u);
  const BatchResult ssa_warm = run_batch(dir.path(), options);
  EXPECT_EQ(ssa_warm.exit_code, 0);
  EXPECT_EQ(ssa_warm.cache_hits, 1u);
  fs::remove_all(cache);
}

}  // namespace
}  // namespace vc::tools
