// The vcc strict argument-parsing rules: malformed literals, wrong arity,
// and flag values are diagnosed instead of silently truncated/zero-filled.
#include <gtest/gtest.h>

#include "tools/vcc_cli.hpp"

namespace vc::tools {
namespace {

minic::Function two_param_fn() {
  minic::Function fn;
  fn.name = "f";
  fn.params = {{"x", minic::Type::F64}, {"n", minic::Type::I32}};
  return fn;
}

TEST(VccCliTest, ParsesWellFormedArguments) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5,-3");
  ASSERT_TRUE(args.ok()) << args.error;
  ASSERT_EQ(args.values.size(), 2u);
  EXPECT_EQ(args.values[0].type, minic::Type::F64);
  EXPECT_DOUBLE_EQ(args.values[0].f, 4.5);
  EXPECT_EQ(args.values[1].type, minic::Type::I32);
  EXPECT_EQ(args.values[1].i, -3);
}

TEST(VccCliTest, AcceptsScientificAndNegativeF64) {
  minic::Function fn;
  fn.name = "g";
  fn.params = {{"x", minic::Type::F64}};
  const CallArgs args = parse_call_args(fn, "-1.25e3");
  ASSERT_TRUE(args.ok()) << args.error;
  EXPECT_DOUBLE_EQ(args.values[0].f, -1250.0);
}

TEST(VccCliTest, RejectsMalformedF64) {
  const CallArgs args = parse_call_args(two_param_fn(), "abc,3");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("invalid f64 literal 'abc'"), std::string::npos);
  EXPECT_NE(args.error.find("'x'"), std::string::npos);
}

TEST(VccCliTest, RejectsTrailingGarbage) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5x,3");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("invalid f64"), std::string::npos);
}

TEST(VccCliTest, RejectsFractionalI32) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5,3.7");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("invalid i32 literal '3.7'"), std::string::npos);
}

TEST(VccCliTest, RejectsOutOfRangeI32) {
  const CallArgs args = parse_call_args(two_param_fn(), "1.0,99999999999");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("invalid i32"), std::string::npos);
}

TEST(VccCliTest, RejectsMissingArguments) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("expects 2 argument(s), got 1"),
            std::string::npos);
}

TEST(VccCliTest, RejectsNoArgumentsWhenParamsExpected) {
  const CallArgs args = parse_call_args(two_param_fn(), "");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("expects 2 argument(s), got 0"),
            std::string::npos);
}

TEST(VccCliTest, RejectsExtraArguments) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5,3,9");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("expects 2 argument(s), got 3"),
            std::string::npos);
}

TEST(VccCliTest, RejectsEmptyItem) {
  const CallArgs args = parse_call_args(two_param_fn(), "4.5,");
  ASSERT_FALSE(args.ok());
  EXPECT_NE(args.error.find("invalid i32 literal ''"), std::string::npos);
}

TEST(VccCliTest, EmptySpecMatchesNullaryFunction) {
  minic::Function fn;
  fn.name = "h";
  const CallArgs args = parse_call_args(fn, "");
  EXPECT_TRUE(args.ok()) << args.error;
  EXPECT_TRUE(args.values.empty());
}

TEST(VccCliTest, ParseConfigName) {
  EXPECT_EQ(parse_config_name("O0"), driver::Config::O0Pattern);
  EXPECT_EQ(parse_config_name("O1"), driver::Config::O1NoRegalloc);
  EXPECT_EQ(parse_config_name("verified"), driver::Config::Verified);
  EXPECT_EQ(parse_config_name("O2"), driver::Config::O2Full);
  EXPECT_FALSE(parse_config_name("O3").has_value());
  EXPECT_FALSE(parse_config_name("").has_value());
}

TEST(VccCliTest, ParseCountFlag) {
  EXPECT_EQ(parse_count_flag("8"), 8);
  EXPECT_EQ(parse_count_flag("0"), 0);
  EXPECT_FALSE(parse_count_flag("").has_value());
  EXPECT_FALSE(parse_count_flag("abc").has_value());
  EXPECT_FALSE(parse_count_flag("-1").has_value());
  EXPECT_FALSE(parse_count_flag("8x").has_value());
  EXPECT_FALSE(parse_count_flag("10000001").has_value());
}

}  // namespace
}  // namespace vc::tools
