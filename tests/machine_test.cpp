// Machine simulator tests: instruction semantics on hand-assembled images,
// big-endian memory, cache statistics, traps, and the IssueModel timing
// rules shared with the WCET analyzer.
#include <gtest/gtest.h>

#include <cmath>

#include "machine/machine.hpp"
#include "mach/program.hpp"
#include "mach/timing.hpp"
#include "mach/target.hpp"

namespace vc {
namespace {

using machine::Machine;
using mach::MInstr;
using mach::MOp;

/// Assembles a raw instruction sequence (ending in blr) into an image with a
/// single function "f" and no globals.
mach::Image assemble(std::vector<MInstr> code) {
  MInstr blr;
  blr.op = MOp::Blr;
  code.push_back(blr);
  mach::MachineFunction fn;
  fn.name = "f";
  fn.code = std::move(code);
  minic::Program empty;
  const mach::DataLayout layout(empty);
  return mach::link({fn}, layout);
}

MInstr ri(MOp op, int rd, int ra, std::int32_t imm) {
  MInstr m;
  m.op = op;
  m.rd = static_cast<std::uint8_t>(rd);
  m.ra = static_cast<std::uint8_t>(ra);
  m.imm = imm;
  return m;
}

MInstr r3(MOp op, int rd, int ra, int rb) {
  MInstr m;
  m.op = op;
  m.rd = static_cast<std::uint8_t>(rd);
  m.ra = static_cast<std::uint8_t>(ra);
  m.rb = static_cast<std::uint8_t>(rb);
  return m;
}

/// Runs "f" and returns the final value of r3.
std::int32_t run_gpr(const std::vector<MInstr>& code) {
  const mach::Image image = assemble(code);
  Machine m(image);
  return m.call("f", {}, minic::Type::I32).i;
}

TEST(Machine, ImmediateConstruction) {
  // lis/ori pair builds a full 32-bit constant.
  EXPECT_EQ(run_gpr({ri(MOp::Lis, 3, 0, 0x1234), ri(MOp::Ori, 3, 3, 0x5678)}),
            0x12345678);
  EXPECT_EQ(run_gpr({ri(MOp::Li, 3, 0, -5)}), -5);
  EXPECT_EQ(run_gpr({ri(MOp::Li, 3, 0, 10), ri(MOp::Addi, 3, 3, -20)}), -10);
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, 0x00FF), ri(MOp::Xori, 3, 4, 0x0F0F)}),
            0x0FF0);
}

TEST(Machine, IntegerAluAndShifts) {
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, 21), ri(MOp::Li, 5, 0, 2),
                     r3(MOp::Mullw, 3, 4, 5)}),
            42);
  // subf rd, ra, rb = rb - ra.
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, 5), ri(MOp::Li, 5, 0, 30),
                     r3(MOp::Subf, 3, 4, 5)}),
            25);
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, -32), ri(MOp::Li, 5, 0, 3),
                     r3(MOp::Divw, 3, 4, 5)}),
            -10);
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, 1), ri(MOp::Li, 5, 0, 33),
                     r3(MOp::Slw, 3, 4, 5)}),
            0);  // shift >= 32 clears
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, -64), ri(MOp::Li, 5, 0, 4),
                     r3(MOp::Sraw, 3, 4, 5)}),
            -4);
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, 7), r3(MOp::Nor, 3, 4, 4)}), ~7);
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, 7), r3(MOp::Neg, 3, 4, 0)}), -7);
}

TEST(Machine, RlwinmMasks) {
  // slwi 2 == rlwinm sh=2, mb=0, me=29.
  MInstr slwi;
  slwi.op = MOp::Rlwinm;
  slwi.rd = 3;
  slwi.ra = 4;
  slwi.sh = 2;
  slwi.mb = 0;
  slwi.me = 29;
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, 5), slwi}), 20);
  // Single-bit extraction: bit 31 (LSB after rotate).
  MInstr bit;
  bit.op = MOp::Rlwinm;
  bit.rd = 3;
  bit.ra = 4;
  bit.sh = 1;
  bit.mb = 31;
  bit.me = 31;
  EXPECT_EQ(run_gpr({ri(MOp::Lis, 4, 0, static_cast<std::int16_t>(0x8000)),
                     bit}),
            1);  // MSB rotated into LSB
}

TEST(Machine, CompareBranchAndCr) {
  // if (10 < 20) r3 = 1 else r3 = 2, via cmpwi + bc.
  MInstr cmp;
  cmp.op = MOp::Cmpwi;
  cmp.crf = 0;
  cmp.ra = 4;
  cmp.imm = 20;
  MInstr bc;
  bc.op = MOp::Bc;
  bc.crbit = mach::kLt;  // cr0.lt
  bc.expect = true;
  bc.disp = 3;  // skip the else arm (2 instructions ahead)
  MInstr b_end;
  b_end.op = MOp::B;
  b_end.disp = 2;
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, 10), cmp, bc, ri(MOp::Li, 3, 0, 2),
                     b_end, ri(MOp::Li, 3, 0, 1)}),
            1);
  // mfcr materialization: EQ bit of cr0 after equal compare.
  MInstr cmp2;
  cmp2.op = MOp::Cmpwi;
  cmp2.crf = 0;
  cmp2.ra = 4;
  cmp2.imm = 10;
  MInstr mfcr;
  mfcr.op = MOp::Mfcr;
  mfcr.rd = 5;
  MInstr extract;
  extract.op = MOp::Rlwinm;
  extract.rd = 3;
  extract.ra = 5;
  extract.sh = mach::kEq + 1;
  extract.mb = 31;
  extract.me = 31;
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, 10), cmp2, mfcr, extract}), 1);
}

TEST(Machine, FloatPipelineAndConversion) {
  // icvf/fcti round trip with truncation.
  MInstr icvf = r3(MOp::Icvf, 1, 4, 0);
  MInstr fadd = r3(MOp::Fadd, 1, 1, 1);  // f1 = 2 * f1
  MInstr fcti = r3(MOp::Fcti, 3, 1, 0);
  EXPECT_EQ(run_gpr({ri(MOp::Li, 4, 0, 21), icvf, fadd, fcti}), 42);
}

TEST(Machine, MemoryIsBigEndianAndBounded) {
  // stw to the stack then byte-order-sensitive reload.
  std::vector<MInstr> code;
  code.push_back(ri(MOp::Lis, 4, 0, 0x1122));
  code.push_back(ri(MOp::Ori, 4, 4, 0x3344));
  code.push_back(ri(MOp::Stw, 4, 1, -8));  // store below the stack pointer
  code.push_back(ri(MOp::Lwz, 3, 1, -8));
  EXPECT_EQ(run_gpr(code), 0x11223344);

  // Out-of-segment access traps.
  std::vector<MInstr> bad;
  bad.push_back(ri(MOp::Li, 4, 0, 0));
  bad.push_back(ri(MOp::Lwz, 3, 4, 16));  // address 16: unmapped
  const mach::Image image = assemble(bad);
  Machine m(image);
  EXPECT_THROW(m.call("f", {}, minic::Type::I32), machine::MachineError);
}

TEST(Machine, DivideByZeroTraps) {
  const mach::Image image = assemble(
      {ri(MOp::Li, 4, 0, 1), ri(MOp::Li, 5, 0, 0), r3(MOp::Divw, 3, 4, 5)});
  Machine m(image);
  EXPECT_THROW(m.call("f", {}, minic::Type::I32), machine::MachineError);
}

TEST(Machine, CacheStatisticsAreCounted) {
  std::vector<MInstr> code;
  code.push_back(ri(MOp::Li, 4, 0, 7));
  code.push_back(ri(MOp::Stw, 4, 1, -8));
  code.push_back(ri(MOp::Lwz, 3, 1, -8));
  code.push_back(ri(MOp::Lwz, 5, 1, -8));
  const mach::Image image = assemble(code);
  Machine m(image);
  m.call("f", {}, minic::Type::I32);
  EXPECT_EQ(m.stats().dcache_reads, 2u);
  EXPECT_EQ(m.stats().dcache_writes, 1u);
  // First access to the line misses; the rest hit.
  EXPECT_EQ(m.stats().dcache_write_misses, 1u);
  EXPECT_EQ(m.stats().dcache_read_misses, 0u);
  EXPECT_GE(m.stats().ifetch_line_misses, 1u);
  EXPECT_GT(m.stats().cycles, 0u);
  EXPECT_EQ(m.stats().instructions, 5u);  // incl. blr
}

TEST(Cache, LruEviction) {
  mach::CacheConfig cfg;
  cfg.sets = 1;
  cfg.ways = 2;
  cfg.line_bytes = 32;
  machine::Cache cache(cfg);
  EXPECT_FALSE(cache.access(0));    // miss, insert A
  EXPECT_FALSE(cache.access(32));   // miss, insert B
  EXPECT_TRUE(cache.access(0));     // hit A (B becomes LRU)
  EXPECT_FALSE(cache.access(64));   // miss, evicts B
  EXPECT_TRUE(cache.access(0));     // A still present
  EXPECT_FALSE(cache.access(32));   // B was evicted
}

TEST(IssueModel, DualIssueAndHazards) {
  mach::IssueModel pipe(mach::target_by_name("ppc"));
  pipe.reset();
  int reads[16];
  int writes[16];
  int n_reads = 0;
  int n_writes = 0;
  auto issue = [&](const MInstr& m, std::uint32_t mem = 0,
                   std::uint32_t fetch = 0) {
    mach::IssueModel::resources(m, reads, &n_reads, writes, &n_writes);
    return pipe.issue(m, reads, n_reads, writes, n_writes, mem, fetch);
  };

  // Two independent simple IU ops pair in one cycle.
  const auto t0 = issue(ri(MOp::Li, 14, 0, 1));
  const auto t1 = issue(ri(MOp::Li, 15, 0, 2));
  EXPECT_EQ(t0, t1);
  // A third cannot (only two slots per cycle).
  const auto t2 = issue(ri(MOp::Li, 16, 0, 3));
  EXPECT_GT(t2, t1);
  // RAW hazard: consumer of a mullw result waits for its 3-cycle latency.
  const auto t3 = issue(r3(MOp::Mullw, 17, 14, 15));
  const auto t4 = issue(ri(MOp::Addi, 18, 17, 1));
  EXPECT_GE(t4, t3 + 3);
  // The divider blocks its unit until complete.
  const auto t5 = issue(r3(MOp::Divw, 19, 14, 15));
  const auto t6 = issue(r3(MOp::Mullw, 20, 14, 15));  // independent, same IU?
  EXPECT_GE(t6, t5);  // complex IU ops cannot pair
  pipe.drain();
  EXPECT_GE(pipe.current_cycle(), t5 + 19);
}

TEST(IssueModel, FetchStallDelaysIssue) {
  mach::IssueModel pipe(mach::target_by_name("ppc"));
  pipe.reset();
  int reads[16];
  int writes[16];
  int n_reads = 0;
  int n_writes = 0;
  MInstr li = ri(MOp::Li, 14, 0, 1);
  mach::IssueModel::resources(li, reads, &n_reads, writes, &n_writes);
  const auto t = pipe.issue(li, reads, n_reads, writes, n_writes, 0, 30);
  EXPECT_GE(t, 30u);
}

}  // namespace
}  // namespace vc
