// Mini-C front-end and interpreter tests: lexing, parsing, type checking
// (MISRA-style rejections), exact operator semantics (the contract shared
// with the machine), and printer/parser round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "minic/interp.hpp"
#include "minic/lexer.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "minic/typecheck.hpp"

namespace vc {
namespace {

using minic::BinOp;
using minic::UnOp;
using minic::Value;

minic::Program parse_ok(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

TEST(Lexer, TokenKinds) {
  const auto tokens = minic::lex(
      "func i32 f(f64 x) { return (x <= 1.5e3) ? 1 : 0; } // comment");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.back().kind, minic::TokKind::End);
  // Keywords vs identifiers.
  EXPECT_EQ(tokens[0].kind, minic::TokKind::Keyword);
  EXPECT_EQ(tokens[0].text, "func");
  EXPECT_EQ(tokens[2].kind, minic::TokKind::Ident);
  EXPECT_EQ(tokens[2].text, "f");
}

TEST(Lexer, NumbersAndStrings) {
  const auto tokens = minic::lex(R"(42 3.25 1e-3 "a\"b\n")");
  EXPECT_EQ(tokens[0].kind, minic::TokKind::IntLit);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, minic::TokKind::FloatLit);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 3.25);
  EXPECT_EQ(tokens[2].kind, minic::TokKind::FloatLit);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1e-3);
  EXPECT_EQ(tokens[3].kind, minic::TokKind::StringLit);
  EXPECT_EQ(tokens[3].text, "a\"b\n");
}

TEST(Lexer, Errors) {
  EXPECT_THROW(minic::lex("\"unterminated"), CompileError);
  EXPECT_THROW(minic::lex("/* unterminated"), CompileError);
  EXPECT_THROW(minic::lex("@"), CompileError);
  EXPECT_THROW(minic::lex("99999999999"), CompileError);
}

TEST(Parser, RejectsMalformedPrograms) {
  EXPECT_THROW(minic::parse_program("func f64 f() { return 1.0 }"),
               CompileError);  // missing ';'
  EXPECT_THROW(parse_ok("func f64 f() { x = 1.0; }"),
               CompileError);  // assignment to unknown name
  EXPECT_THROW(minic::parse_program("global f64 g = ;"), CompileError);
  EXPECT_THROW(minic::parse_program(
                   "func void f() { for (i = 0; i < 4; i = i + 2) {} }"),
               CompileError);  // non-canonical step
  EXPECT_THROW(minic::parse_program(
                   "func void f() { local i32 i; local i32 i; }"),
               CompileError);  // duplicate local
}

TEST(TypeCheck, Rejections) {
  // f64/i32 mixing.
  EXPECT_THROW(parse_ok("func f64 f(f64 x, i32 k) { return x + k; }"),
               CompileError);
  // loop counter modified in body (MISRA 13.6-style rule).
  EXPECT_THROW(parse_ok(R"(
    func void f() {
      local i32 i;
      for (i = 0; i < 4; i = i + 1) { i = 0; }
    })"),
               CompileError);
  // indexing a scalar global.
  EXPECT_THROW(parse_ok(R"(
    global f64 g = 0.0;
    func f64 f() { return g[0]; })"),
               CompileError);
  // wrong return type.
  EXPECT_THROW(parse_ok("func i32 f(f64 x) { return x; }"), CompileError);
  // duplicate globals / functions.
  EXPECT_THROW(parse_ok("global f64 a; global i32 a;"), CompileError);
  EXPECT_THROW(parse_ok("func void f() { } func void f() { }"), CompileError);
}

TEST(Interp, IntegerSemanticsMatchTheMachineContract) {
  using minic::eval_ibinop;
  const std::int32_t int_min = std::numeric_limits<std::int32_t>::min();
  const std::int32_t int_max = std::numeric_limits<std::int32_t>::max();
  // Wrap-around.
  EXPECT_EQ(eval_ibinop(BinOp::IAdd, int_max, 1), int_min);
  EXPECT_EQ(eval_ibinop(BinOp::ISub, int_min, 1), int_max);
  EXPECT_EQ(eval_ibinop(BinOp::IMul, 65536, 65536), 0);
  // divw corner: INT_MIN / -1 wraps; division by zero traps.
  EXPECT_EQ(eval_ibinop(BinOp::IDiv, int_min, -1), int_min);
  EXPECT_EQ(eval_ibinop(BinOp::IRem, int_min, -1), 0);
  EXPECT_THROW(eval_ibinop(BinOp::IDiv, 1, 0), minic::EvalError);
  EXPECT_THROW(eval_ibinop(BinOp::IRem, 1, 0), minic::EvalError);
  // Truncation toward zero.
  EXPECT_EQ(eval_ibinop(BinOp::IDiv, -7, 2), -3);
  EXPECT_EQ(eval_ibinop(BinOp::IRem, -7, 2), -1);
  // PowerPC shift semantics: 6-bit amount, >=32 produces 0 / sign-fill.
  EXPECT_EQ(eval_ibinop(BinOp::IShl, 1, 31), int_min);
  EXPECT_EQ(eval_ibinop(BinOp::IShl, 1, 32), 0);
  EXPECT_EQ(eval_ibinop(BinOp::IShl, 1, 64), 1);  // 64 & 0x3F == 0
  EXPECT_EQ(eval_ibinop(BinOp::IShr, -8, 2), -2);
  EXPECT_EQ(eval_ibinop(BinOp::IShr, -8, 40), -1);
  EXPECT_EQ(eval_ibinop(BinOp::IShr, 8, 40), 0);
}

TEST(Interp, FloatToIntSaturates) {
  auto f2i = [](double v) {
    return minic::eval_unop(UnOp::F2I, Value::of_f64(v)).i;
  };
  EXPECT_EQ(f2i(1.9), 1);
  EXPECT_EQ(f2i(-1.9), -1);
  EXPECT_EQ(f2i(3e9), std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(f2i(-3e9), std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(f2i(std::numeric_limits<double>::quiet_NaN()),
            std::numeric_limits<std::int32_t>::min());
  EXPECT_EQ(f2i(2147483647.0), std::numeric_limits<std::int32_t>::max());
}

TEST(Interp, FminFmaxCompareSelectSemantics) {
  using minic::eval_fbinop;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // fmin(a,b) = a < b ? a : b — NaN comparisons are false, so b wins.
  EXPECT_TRUE(std::isnan(eval_fbinop(BinOp::FMin, 1.0, nan)));
  EXPECT_EQ(eval_fbinop(BinOp::FMin, nan, 1.0), 1.0);
  EXPECT_EQ(eval_fbinop(BinOp::FMax, -0.0, 0.0), 0.0);  // not <, so b
}

TEST(Interp, StatementExecution) {
  const minic::Program program = parse_ok(R"(
    global i32 calls = 0;
    func i32 collatz_steps(i32 n) {
      local i32 steps;
      steps = 0;
      while (n != 1) {
        __annot("loop <= 200");
        if ((n % 2) == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
      }
      calls = calls + 1;
      return steps;
    }
  )");
  minic::Interpreter interp(program);
  EXPECT_EQ(interp.call("collatz_steps", {Value::of_i32(6)}).i, 8);
  EXPECT_EQ(interp.call("collatz_steps", {Value::of_i32(27)}).i, 111);
  EXPECT_EQ(interp.read_global("calls").i, 2);
  // Annotation events recorded once per iteration.
  EXPECT_EQ(interp.annotations().size(), 111u);
}

TEST(Interp, FuelGuardsDivergence) {
  const minic::Program program = parse_ok(R"(
    func void spin() {
      local i32 x;
      x = 0;
      while (x == 0) { x = 0; }
    }
  )");
  minic::Interpreter interp(program);
  interp.set_fuel(10'000);
  EXPECT_THROW(interp.call("spin", {}), minic::EvalError);
}

TEST(Printer, RoundTripsHandWrittenPrograms) {
  const char* sources[] = {
      R"(global f64 a[3] = {1.0, -2.5, 0.0};

func f64 f(f64 x) {
  local f64 t;
  t = (x * 2.0);
  return fmin(t, a[1]);
}
)",
      R"(func i32 g(i32 a, i32 b) {
  local i32 r;
  r = ((a & b) | (a ^ 15));
  if ((a < b)) {
    r = (r << 2);
  } else {
    r = (r >> 1);
  }
  return r;
}
)",
  };
  for (const char* src : sources) {
    const minic::Program p1 = parse_ok(src);
    const std::string printed = minic::print_program(p1);
    const minic::Program p2 = parse_ok(printed);
    EXPECT_EQ(minic::print_program(p2), printed);
  }
}

TEST(Printer, FloatLiteralsRoundTripBitExactly) {
  const double values[] = {0.1, 1.0 / 3.0, 1e-300, -1.5e300, 0.0, -0.0,
                           3.141592653589793};
  for (double v : values) {
    minic::Program p;
    p.functions.emplace_back();
    auto& fn = p.functions.back();
    fn.name = "f";
    fn.has_return = true;
    fn.return_type = minic::Type::F64;
    fn.body.push_back(minic::return_stmt(minic::float_lit(v)));
    const minic::Program p2 = minic::parse_program(minic::print_program(p));
    minic::Interpreter interp(p2);
    EXPECT_EQ(interp.call("f", {}), Value::of_f64(v));
  }
}

}  // namespace
}  // namespace vc
