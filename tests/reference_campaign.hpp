// The reference campaign used by the backend no-regression tests: a fixed
// 40-node generated suite plus the pitch-axis law, compiled under all four
// configurations with full translation validation, executed 50 cycles under
// the full monitor, and WCET-analyzed by both engines (with the nocache
// ablation). The semantic core of every record — code bytes, execution
// stats, both bounds, monitor counters — is serialized one JSON document
// per line, and the result is compared byte-for-byte against the committed
// fixture tests/data/reference_40.jsonl (captured before the machine layer
// went target-parametric). Any codegen, timing-model, scheduling, peephole,
// or analysis change that shifts a single byte of a record shows up here.
#pragma once

#include <string>

#include "../bench/bench_common.hpp"

namespace vc::bench {

inline std::string reference_campaign_records(const std::string& target) {
  std::vector<NodeBundle> suite = make_suite(40);
  suite.push_back(pitch_law());

  driver::FleetOptions options;
  options.jobs = 1;
  options.exec_cycles = 50;
  options.wcet = true;
  options.wcet_nocache = true;
  options.wcet_engine = wcet::WcetEngine::Both;
  options.monitor = machine::MonitorMode::Full;
  options.target = target;
  attach_validation(&options, driver::ValidateLevel::Full);

  const driver::FleetReport report =
      driver::run_fleet(to_fleet_units(suite), options);
  std::string out;
  for (const driver::FleetRecord& r : report.records) {
    out += driver::record_core_json(r).dump();
    out += "\n";
  }
  return out;
}

}  // namespace vc::bench
