// Register allocator tests: coloring validity (interfering vregs never share
// a color), spilling under artificially small register files, semantic
// preservation of spill rewriting, and move-biased coalescing.
#include <gtest/gtest.h>

#include <set>

#include "minic/interp.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "regalloc/regalloc.hpp"
#include "rtl/analysis.hpp"
#include "rtl/exec.hpp"
#include "rtl/lower.hpp"
#include "support/rng.hpp"

namespace vc {
namespace {

using minic::Value;

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

/// Recomputes interference on the final function and checks that no two
/// interfering vregs of the same class share a color.
void expect_valid_coloring(const rtl::Function& fn,
                           const regalloc::Allocation& alloc) {
  const rtl::Liveness lv = rtl::compute_liveness(fn);
  for (rtl::BlockId b = 0; b < fn.blocks.size(); ++b) {
    DenseBitset live = lv.live_out[b];
    const auto& instrs = fn.blocks[b].instrs;
    for (std::size_t i = instrs.size(); i-- > 0;) {
      const rtl::Instr& ins = instrs[i];
      if (auto d = ins.def()) {
        live.for_each([&](std::size_t lbit) {
          const auto l = static_cast<rtl::VReg>(lbit);
          if (l == *d) return;
          if (fn.vregs[l] != fn.vregs[*d]) return;
          if (ins.op == rtl::Opcode::Mov && l == ins.src1) return;
          ASSERT_TRUE(alloc.locs[*d].in_reg);
          ASSERT_TRUE(alloc.locs[l].in_reg);
          ASSERT_NE(alloc.locs[*d].color, alloc.locs[l].color)
              << "vregs " << *d << " and " << l << " interfere";
        });
        live.reset(*d);
      }
      for (rtl::VReg u : ins.uses()) live.set(u);
    }
  }
}

const char* kPressureSource = R"(
  func f64 pressure(f64 a, f64 b, f64 c, f64 d) {
    local f64 t1; local f64 t2; local f64 t3; local f64 t4;
    local f64 t5; local f64 t6; local f64 t7; local f64 t8;
    t1 = a + b;  t2 = a - b;  t3 = c + d;  t4 = c - d;
    t5 = t1 * t3;  t6 = t2 * t4;  t7 = t1 * t4;  t8 = t2 * t3;
    return ((t1 + t2) * (t3 + t4) + (t5 + t6) * (t7 + t8)) /
           (t5 - t6 + t7 - t8 + 1000.0);
  }
)";

TEST(Regalloc, ValidColoringWithAmpleRegisters) {
  const auto program = parse(kPressureSource);
  rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                         rtl::LowerMode::Value);
  rtl::remove_unreachable_blocks(fn);
  const regalloc::Allocation alloc = regalloc::allocate_registers(fn, 18, 18);
  EXPECT_EQ(alloc.spill_count, 0);
  expect_valid_coloring(fn, alloc);
}

TEST(Regalloc, SpillsUnderPressureAndStaysCorrect) {
  const auto program = parse(kPressureSource);
  for (int k : {3, 4, 5}) {
    rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                           rtl::LowerMode::Value);
    rtl::remove_unreachable_blocks(fn);
    const rtl::Function original = fn;
    const regalloc::Allocation alloc = regalloc::allocate_registers(fn, k, k);
    EXPECT_GT(alloc.spill_count, 0) << "k=" << k;
    expect_valid_coloring(fn, alloc);
    // Spill rewriting preserves semantics.
    rtl::Executor exec_a(program);
    rtl::Executor exec_b(program);
    Rng rng(k);
    for (int t = 0; t < 10; ++t) {
      std::vector<Value> args;
      for (int i = 0; i < 4; ++i)
        args.push_back(Value::of_f64(rng.next_double(-9, 9)));
      ASSERT_EQ(exec_a.call(original, args), exec_b.call(fn, args));
    }
    // And every color fits the budget.
    for (const auto& loc : alloc.locs) {
      if (loc.in_reg) {
        EXPECT_LT(loc.color, k);
      }
    }
  }
}

TEST(Regalloc, LoopCarriedValuesSurviveAllocation) {
  const auto program = parse(R"(
    func f64 horner(f64 x) {
      local f64 acc;
      local i32 i;
      acc = 1.0;
      for (i = 0; i < 8; i = i + 1) {
        acc = acc * x + 0.5;
      }
      return acc;
    }
  )");
  for (int k : {2, 3, 8}) {
    rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                           rtl::LowerMode::Value);
    rtl::remove_unreachable_blocks(fn);
    const rtl::Function original = fn;
    const regalloc::Allocation alloc = regalloc::allocate_registers(fn, k, k);
    expect_valid_coloring(fn, alloc);
    rtl::Executor exec_a(program);
    rtl::Executor exec_b(program);
    const std::vector<Value> args{Value::of_f64(1.5)};
    ASSERT_EQ(exec_a.call(original, args), exec_b.call(fn, args));
  }
}

TEST(Regalloc, MoveBiasedColoringCoalescesCopies) {
  // A chain of moves should collapse onto one color when possible.
  const auto program = parse(R"(
    func f64 passthrough(f64 x) {
      local f64 a; local f64 b; local f64 c;
      a = x;
      b = a;
      c = b;
      return c;
    }
  )");
  rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                         rtl::LowerMode::Value);
  rtl::remove_unreachable_blocks(fn);
  const regalloc::Allocation alloc = regalloc::allocate_registers(fn, 18, 18);
  // Collect colors of all F64 vregs involved in moves; biased coloring
  // should give most of them the same color.
  std::set<int> colors;
  for (const auto& bb : fn.blocks)
    for (const auto& ins : bb.instrs)
      if (ins.op == rtl::Opcode::Mov && fn.vregs[ins.dst] == rtl::RegClass::F64)
        colors.insert(alloc.locs[ins.dst].color);
  EXPECT_LE(colors.size(), 2u);
}

}  // namespace
}  // namespace vc
