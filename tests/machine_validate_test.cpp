// Machine-level translation-validation tests: the three new checkers
// (register allocation, machine equivalence, schedule) must accept genuine
// compiles at every configuration — including generated dataflow nodes, the
// campaign workload — and reject seeded miscompilations of each transform.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "driver/compiler.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "pass/pass.hpp"
#include "mach/codegen.hpp"
#include "mach/isa.hpp"
#include "mach/timing.hpp"
#include "mach/target.hpp"
#include "regalloc/regalloc.hpp"
#include "validate/validate.hpp"

namespace vc {
namespace {

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

// One function with FP arithmetic, control flow, and global stores: enough
// pressure to exercise coloring, fusion targets (x*k+y), and memory order.
const char* kLawSource = R"(
  global f64 state = 0.25;
  global f64 aux = 0.0;
  func f64 law(f64 x, f64 y, i32 m) {
    local f64 a; local f64 b; local f64 c;
    a = x * 0.5 + y;
    b = a * a - y * 0.25;
    c = x * 0.5 + b;
    if (m > 0) { a = a + b * 2.0; } else { a = a - c; }
    state = state * 0.9 + a * 0.1;
    aux = b + state;
    return a + b * state + c;
  }
)";

/// Captures the regalloc step's obligation inputs and the emitted machine
/// code of a single-function compile through the pass framework's hook.
struct Captured {
  rtl::Function ra_before;
  rtl::Function ra_after;
  regalloc::Allocation alloc;
  int k_int = 0;
  int k_float = 0;
  mach::AsmFunction machine;
  bool have_ra = false;
  bool have_machine = false;
};

Captured capture(const minic::Program& program, driver::Config config) {
  Captured cap;
  driver::CompileOptions copts;
  copts.hook = [&cap](const pass::StepTrace& t) {
    if (t.pass == "regalloc" && t.rtl_before != nullptr) {
      cap.ra_before = *t.rtl_before;
      cap.ra_after = t.state->rtl;
      cap.alloc = t.state->alloc;
      cap.k_int = t.state->k_int;
      cap.k_float = t.state->k_float;
      cap.have_ra = true;
    }
    if (t.pass == "emit") {
      cap.machine = t.state->machine;
      cap.have_machine = true;
    }
    return 0;
  };
  driver::compile_program(program, config, copts);
  return cap;
}

bool is_load_op(mach::MOp op) {
  return op == mach::MOp::Lwz || op == mach::MOp::Lwzx ||
         op == mach::MOp::Lfd || op == mach::MOp::Lfdx;
}

/// The scheduler's dependence rule, rebuilt here a third time (scheduler,
/// checker, test) so the test does not trust the code under test.
bool depend(const mach::MInstr& a, const mach::MInstr& b) {
  int ra[mach::IssueModel::kMaxResourcesPerInstr];
  int wa[mach::IssueModel::kMaxResourcesPerInstr];
  int rb[mach::IssueModel::kMaxResourcesPerInstr];
  int wb[mach::IssueModel::kMaxResourcesPerInstr];
  int nra = 0, nwa = 0, nrb = 0, nwb = 0;
  mach::IssueModel::resources(a, ra, &nra, wa, &nwa);
  mach::IssueModel::resources(b, rb, &nrb, wb, &nwb);
  const auto meets = [](const int* xs, int nx, const int* ys, int ny) {
    for (int i = 0; i < nx; ++i)
      for (int j = 0; j < ny; ++j)
        if (xs[i] == ys[j]) return true;
    return false;
  };
  if (meets(wa, nwa, rb, nrb)) return true;  // RAW
  if (meets(ra, nra, wb, nwb)) return true;  // WAR
  if (meets(wa, nwa, wb, nwb)) return true;  // WAW
  return mach::is_memory_op(a.op) && mach::is_memory_op(b.op) &&
         !(is_load_op(a.op) && is_load_op(b.op));
}

TEST(MachineValidation, FullLevelAcceptsGenuineCompiles) {
  // Hand-written kernels plus generated dataflow nodes (the campaign
  // workload) must validate cleanly at Full under every configuration —
  // zero rejections is the acceptance bar of the 2500-node campaign.
  std::vector<minic::Program> programs;
  programs.push_back(parse(kLawSource));
  programs.push_back(parse(R"(
    func i32 mix(i32 n, i32 m) {
      local i32 i; local i32 acc;
      acc = n * 3 + m;
      for (i = 0; i < 9; i = i + 1) { acc = acc + ((n >> (i & 3)) & 1); }
      return acc + n * 3;
    }
  )"));
  for (auto& node : dataflow::generate_suite(2026, 3)) {
    minic::Program p;
    p.name = node.name();
    dataflow::generate_node(node, &p);
    minic::type_check(p);
    programs.push_back(std::move(p));
  }
  for (const minic::Program& program : programs)
    for (driver::Config config : driver::kAllConfigs)
      EXPECT_NO_THROW(validate::validated_compile(
          program, config, /*n_tests=*/6, /*seed=*/7,
          driver::ValidateLevel::Full))
          << program.name << " under " << driver::to_string(config);
}

TEST(MachineValidation, FullLevelCountsMachineChecks) {
  // At Full the machine checkers actually fire: the telemetry must show
  // checks on regalloc, and on the machine passes when they applied.
  const minic::Program program = parse(kLawSource);
  pass::PipelineStats stats;
  driver::CompileOptions base;
  base.stats = &stats;
  validate::validated_compile(program, driver::Config::O2Full, /*n_tests=*/6,
                              /*seed=*/7, driver::ValidateLevel::Full,
                              std::move(base));
  const pass::PassStat* ra = stats.find("regalloc");
  ASSERT_NE(ra, nullptr);
  EXPECT_GE(ra->checks, 2u);  // allocation checker + differential check
}

TEST(MachineValidation, RegallocCheckerRejectsBrokenAllocations) {
  const Captured cap = capture(parse(kLawSource), driver::Config::O2Full);
  ASSERT_TRUE(cap.have_ra);
  const validate::CheckResult genuine = validate::check_register_allocation(
      cap.ra_before, cap.ra_after, cap.alloc, cap.k_int, cap.k_float);
  EXPECT_TRUE(genuine.ok) << genuine.message;

  // Corrupted bookkeeping: a wrong spill count must be rejected.
  {
    regalloc::Allocation bad = cap.alloc;
    bad.spill_count += 1;
    EXPECT_FALSE(validate::check_register_allocation(cap.ra_before,
                                                     cap.ra_after, bad,
                                                     cap.k_int, cap.k_float)
                     .ok);
  }

  // Corrupted spill rewriting: dropping an instruction from the rewritten
  // function breaks the reload/store discipline.
  {
    rtl::Function bad = cap.ra_after;
    for (auto& bb : bad.blocks) {
      if (bb.instrs.size() >= 2) {
        bb.instrs.erase(bb.instrs.begin());
        break;
      }
    }
    EXPECT_FALSE(validate::check_register_allocation(cap.ra_before, bad,
                                                     cap.alloc, cap.k_int,
                                                     cap.k_float)
                     .ok);
  }

  // Wrong coloring: forcing two same-class registers onto one color must be
  // rejected for at least one pair (simultaneously live somewhere).
  {
    int rejected = 0;
    const auto& locs = cap.alloc.locs;
    for (std::size_t v1 = 0; v1 < locs.size(); ++v1) {
      for (std::size_t v2 = 0; v2 < locs.size(); ++v2) {
        if (v1 == v2 || !locs[v1].in_reg || !locs[v2].in_reg) continue;
        if (cap.ra_after.vregs[v1] != cap.ra_after.vregs[v2]) continue;
        if (locs[v1].color == locs[v2].color) continue;
        regalloc::Allocation bad = cap.alloc;
        bad.locs[v1].color = locs[v2].color;
        if (!validate::check_register_allocation(cap.ra_before, cap.ra_after,
                                                 bad, cap.k_int, cap.k_float)
                 .ok)
          ++rejected;
      }
    }
    EXPECT_GT(rejected, 0) << "no color collision was ever rejected";
  }
}

TEST(MachineValidation, EquivalenceCheckerRejectsCorruptedRewrites) {
  const Captured cap = capture(parse(kLawSource), driver::Config::O2Full);
  ASSERT_TRUE(cap.have_machine);
  const mach::AsmFunction& m = cap.machine;
  EXPECT_TRUE(validate::check_machine_equivalence(m, mach::target_by_name("ppc"), m).ok);

  // A "peephole" that shifts a store's target location must be rejected:
  // the memory event lists diverge. For a relocated store the displacement
  // field is link-time-patched (mutating it pre-link is a semantic no-op the
  // checker rightly accepts), so shift the relocation addend there instead.
  std::size_t store_at = m.ops.size();
  for (std::size_t i = 0; i < m.ops.size(); ++i) {
    if (m.ops[i].ins.op == mach::MOp::Stw ||
        m.ops[i].ins.op == mach::MOp::Stfd) {
      store_at = i;
      break;
    }
  }
  ASSERT_LT(store_at, m.ops.size()) << "kernel has global stores";
  {
    mach::AsmFunction bad = m;
    if (bad.ops[store_at].reloc_sym.empty())
      bad.ops[store_at].ins.imm += 8;
    else
      bad.ops[store_at].reloc_addend += 8;
    const validate::CheckResult r = validate::check_machine_equivalence(m, mach::target_by_name("ppc"), bad);
    EXPECT_FALSE(r.ok);
  }

  // A rewrite that deletes a (live) store loses a memory event.
  {
    mach::AsmFunction bad = m;
    bad.ops.erase(bad.ops.begin() + static_cast<std::ptrdiff_t>(store_at));
    for (auto& [id, pos] : bad.labels)
      if (pos > store_at) --pos;
    for (auto& a : bad.annots)
      if (a.addr > store_at) --a.addr;
    EXPECT_FALSE(validate::check_machine_equivalence(m, mach::target_by_name("ppc"), bad).ok);
  }
}

TEST(MachineValidation, EquivalenceCheckerAcceptsMarkerMergeFromDeletion) {
  // Removing a self-move can merge two marker addresses into one; the
  // merged run sorts by id, which may invert the original distinct-address
  // order (a generated campaign node hit exactly this shape once Lookup1D
  // started emitting adjacent annotations). The checker must treat the
  // merged run as the same marker set, while still rejecting an actual
  // identity change at the merged address.
  mach::AsmFunction fn;
  fn.name = "merge";
  const auto mr = [](int rd, int ra) {
    mach::AsmOp op;
    op.ins.op = mach::MOp::Mr;
    op.ins.rd = static_cast<std::uint8_t>(rd);
    op.ins.ra = static_cast<std::uint8_t>(ra);
    return op;
  };
  fn.ops.push_back(mr(3, 4));
  fn.ops.push_back(mr(5, 5));  // self-move between the two annotations
  fn.ops.push_back(mr(6, 7));
  mach::AsmOp ret;
  ret.ins.op = mach::MOp::Blr;
  fn.ops.push_back(ret);
  fn.annots.push_back({1, "zz", {}});
  fn.annots.push_back({2, "aa", {}});  // id order inverts the address order

  mach::AsmFunction after = fn;
  ASSERT_EQ(mach::remove_self_moves(after), 1);
  ASSERT_EQ(after.annots[0].addr, 1u);
  ASSERT_EQ(after.annots[1].addr, 1u);  // merged
  const validate::CheckResult ok =
      validate::check_machine_equivalence(fn, mach::target_by_name("ppc"), after);
  EXPECT_TRUE(ok.ok) << ok.message;

  // An annotation whose identity really changed is still caught.
  mach::AsmFunction bad = after;
  bad.annots[1].format = "qq";
  EXPECT_FALSE(validate::check_machine_equivalence(fn, mach::target_by_name("ppc"), bad).ok);
}

TEST(MachineValidation, ScheduleCheckerRejectsIllegalReorder) {
  const Captured cap = capture(parse(kLawSource), driver::Config::O2Full);
  ASSERT_TRUE(cap.have_machine);
  const mach::AsmFunction& m = cap.machine;
  EXPECT_TRUE(validate::check_schedule(m, m).ok);

  // Frame resizing is not a schedule.
  {
    mach::AsmFunction bad = m;
    bad.frame_bytes += 8;
    EXPECT_FALSE(validate::check_schedule(m, bad).ok);
  }

  // Swap an adjacent dependent pair inside a region: a permutation that
  // violates a dependence edge must be rejected.
  const auto boundary_at = [&m](std::size_t pos) {
    for (const auto& [id, p] : m.labels)
      if (p == pos) return true;
    for (const auto& a : m.annots)
      if (a.addr == pos) return true;
    return false;
  };
  std::size_t swap_at = m.ops.size();
  for (std::size_t i = 0; i + 1 < m.ops.size(); ++i) {
    const mach::MInstr& a = m.ops[i].ins;
    const mach::MInstr& b = m.ops[i + 1].ins;
    if (mach::is_branch(a.op) || mach::is_branch(b.op)) continue;
    if (boundary_at(i + 1)) continue;
    if (a == b) continue;  // swapping identical ops is a no-op
    if (depend(a, b)) {
      swap_at = i;
      break;
    }
  }
  ASSERT_LT(swap_at, m.ops.size()) << "kernel has an adjacent dependent pair";
  mach::AsmFunction bad = m;
  std::swap(bad.ops[swap_at], bad.ops[swap_at + 1]);
  const validate::CheckResult r = validate::check_schedule(m, bad);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace vc
