// Optimizer unit tests: constant propagation (folding, branch rewriting,
// trap preservation), CSE/copy propagation, DCE (including annotation
// liveness), and pipeline semantic preservation on random inputs.
#include <gtest/gtest.h>

#include "minic/interp.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "opt/opt.hpp"
#include "pass/pass.hpp"
#include "rtl/analysis.hpp"
#include "rtl/exec.hpp"
#include "rtl/lower.hpp"
#include "support/rng.hpp"

namespace vc {
namespace {

using minic::Value;
using rtl::Opcode;

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

rtl::Function lower(const minic::Program& p, rtl::LowerMode mode =
                                                 rtl::LowerMode::Value) {
  rtl::Function fn = rtl::lower_function(p, p.functions[0], mode);
  rtl::remove_unreachable_blocks(fn);
  return fn;
}

/// Runs an RTL-only pipeline over `fn` through the pass framework (the
/// replacement for the old opt::run_standard_pipeline): the named passes as
/// one bounded fixpoint round group. Returns the names of the passes that
/// changed something, in application order.
std::vector<std::string> run_rtl_pipeline(
    rtl::Function& fn, const std::vector<std::string>& names) {
  pass::FunctionState state;
  state.rtl = std::move(fn);
  std::vector<std::string> applied;
  pass::ManagerOptions mopts;
  mopts.snapshots = false;
  mopts.hook = [&applied](const pass::StepTrace& t) {
    applied.push_back(t.pass);
    return 0;
  };
  const pass::PassManager manager(pass::Registry::builtin(), names,
                                  std::move(mopts));
  manager.run(state);
  fn = std::move(state.rtl);
  return applied;
}

int count_ops(const rtl::Function& fn, Opcode op) {
  int n = 0;
  for (const auto& bb : fn.blocks)
    for (const auto& ins : bb.instrs)
      if (ins.op == op) ++n;
  return n;
}

TEST(ConstProp, FoldsArithmeticAndBranches) {
  const auto program = parse(R"(
    func i32 f() {
      local i32 a;
      a = (3 + 4) * 2;
      if (a > 10) { return 100; }
      return 200;
    }
  )");
  rtl::Function fn = lower(program);
  EXPECT_TRUE(opt::constant_propagation(fn));
  opt::dead_code_elimination(fn);
  // Everything folds: no Bin left, no conditional branch left.
  EXPECT_EQ(count_ops(fn, Opcode::Bin), 0);
  EXPECT_EQ(count_ops(fn, Opcode::BranchCmp), 0);
  rtl::Executor exec(program);
  EXPECT_EQ(exec.call(fn, {}), Value::of_i32(100));
}

TEST(ConstProp, FoldsFloatOperationsBitExactly) {
  const auto program = parse(R"(
    func f64 f() {
      return (0.1 + 0.2) * 3.0;
    }
  )");
  rtl::Function fn = lower(program);
  opt::constant_propagation(fn);
  opt::dead_code_elimination(fn);
  EXPECT_EQ(count_ops(fn, Opcode::Bin), 0);
  rtl::Executor exec(program);
  EXPECT_EQ(exec.call(fn, {}), Value::of_f64((0.1 + 0.2) * 3.0));
}

TEST(ConstProp, NeverFoldsDivisionByConstantZero) {
  const auto program = parse(R"(
    func i32 f() {
      local i32 z;
      z = 0;
      return 7 / z;
    }
  )");
  rtl::Function fn = lower(program);
  opt::constant_propagation(fn);
  // The trapping division must survive.
  EXPECT_GE(count_ops(fn, Opcode::Bin), 1);
  rtl::Executor exec(program);
  EXPECT_THROW(exec.call(fn, {}), minic::EvalError);
}

TEST(ConstProp, JoinLosesPrecisionSoundly) {
  // `a` differs on the two paths: must not fold uses after the join.
  const auto program = parse(R"(
    func i32 f(i32 c) {
      local i32 a;
      if (c > 0) { a = 1; } else { a = 2; }
      return a * 10;
    }
  )");
  rtl::Function fn = lower(program);
  opt::constant_propagation(fn);
  rtl::Executor exec(program);
  EXPECT_EQ(exec.call(fn, {Value::of_i32(1)}), Value::of_i32(10));
  EXPECT_EQ(exec.call(fn, {Value::of_i32(-1)}), Value::of_i32(20));
}

TEST(Cse, EliminatesRedundantExpressions) {
  const auto program = parse(R"(
    func f64 f(f64 x, f64 y) {
      local f64 a; local f64 b;
      a = (x * y) + 1.0;
      b = (x * y) + 2.0;   // x*y is redundant
      return a + b + (y * x);  // commuted: still redundant
    }
  )");
  rtl::Function fn = lower(program);
  const int muls_before = [&] {
    int n = 0;
    for (const auto& bb : fn.blocks)
      for (const auto& ins : bb.instrs)
        if (ins.op == Opcode::Bin && ins.bin_op == minic::BinOp::FMul) ++n;
    return n;
  }();
  ASSERT_EQ(muls_before, 3);
  EXPECT_TRUE(opt::common_subexpression_elimination(fn));
  opt::dead_code_elimination(fn);
  int muls_after = 0;
  for (const auto& bb : fn.blocks)
    for (const auto& ins : bb.instrs)
      if (ins.op == Opcode::Bin && ins.bin_op == minic::BinOp::FMul)
        ++muls_after;
  EXPECT_EQ(muls_after, 1);
  rtl::Executor exec(program);
  const Value r = exec.call(fn, {Value::of_f64(3.0), Value::of_f64(5.0)});
  EXPECT_EQ(r, Value::of_f64((3.0 * 5.0 + 1.0) + (3.0 * 5.0 + 2.0) + 15.0));
}

TEST(Cse, DoesNotCrossRedefinitions) {
  // After `x` is reassigned, x+y is a different value.
  const auto program = parse(R"(
    func i32 f(i32 x, i32 y) {
      local i32 a; local i32 b;
      a = x + y;
      x = x + 1;
      b = x + y;
      return a * 1000 + b;
    }
  )");
  rtl::Function fn = lower(program);
  opt::common_subexpression_elimination(fn);
  rtl::Executor exec(program);
  EXPECT_EQ(exec.call(fn, {Value::of_i32(3), Value::of_i32(4)}),
            Value::of_i32(7 * 1000 + 8));
}

TEST(Cse, EliminatesAcrossDominatedBlocks) {
  // x*y is computed in the entry block and again in both branch arms and
  // after the join; the dominator-scoped table removes all three redundant
  // copies (block-local CSE could remove none of them).
  const auto program = parse(R"(
    func f64 f(f64 x, f64 y, i32 c) {
      local f64 a; local f64 b;
      a = x * y;
      if (c > 0) { b = x * y + 1.0; } else { b = x * y - 1.0; }
      return b + x * y + a;
    }
  )");
  rtl::Function fn = lower(program);
  EXPECT_TRUE(opt::common_subexpression_elimination(fn));
  opt::dead_code_elimination(fn);
  int muls = 0;
  for (const auto& bb : fn.blocks)
    for (const auto& ins : bb.instrs)
      if (ins.op == Opcode::Bin && ins.bin_op == minic::BinOp::FMul) ++muls;
  EXPECT_EQ(muls, 1);
  rtl::Executor exec(program);
  const Value r = exec.call(fn, {Value::of_f64(3.0), Value::of_f64(5.0),
                                 Value::of_i32(1)});
  EXPECT_EQ(r, Value::of_f64((15.0 + 1.0) + 15.0 + 15.0));
}

TEST(Forwarding, ForwardsGlobalStoreToLoads) {
  const auto program = parse(R"(
    global f64 g = 0.0;
    func f64 f(f64 x) {
      g = x * 2.0;
      return g + g;   // both loads take the stored value
    }
  )");
  rtl::Function fn = lower(program);
  ASSERT_GE(count_ops(fn, Opcode::LoadGlobal), 2);
  EXPECT_TRUE(opt::memory_forwarding(fn));
  EXPECT_EQ(count_ops(fn, Opcode::LoadGlobal), 0);
  EXPECT_EQ(count_ops(fn, Opcode::StoreGlobal), 1);  // store stays (DSE's job)
  rtl::Executor exec(program);
  EXPECT_EQ(exec.call(fn, {Value::of_f64(3.0)}), Value::of_f64(12.0));
  EXPECT_EQ(exec.read_global("g", 0), Value::of_f64(6.0));
}

TEST(Forwarding, ForwardsStackStoreToLoad) {
  // Hand-built: value lowering does not emit stack traffic pre-regalloc, so
  // exercise the slot side of the pass directly.
  rtl::Function fn;
  fn.name = "fwd";
  fn.params.push_back({"x", rtl::RegClass::F64});
  fn.has_return = true;
  fn.ret_class = rtl::RegClass::F64;
  const rtl::VReg v0 = fn.new_vreg(rtl::RegClass::F64);
  const rtl::VReg v1 = fn.new_vreg(rtl::RegClass::F64);
  const rtl::Slot s0 = fn.new_slot(rtl::RegClass::F64);
  fn.blocks.resize(1);
  auto& ins = fn.blocks[0].instrs;
  rtl::Instr i;
  i.op = Opcode::GetParam;
  i.dst = v0;
  ins.push_back(i);
  i = {};
  i.op = Opcode::StoreStack;
  i.slot = s0;
  i.src1 = v0;
  ins.push_back(i);
  i = {};
  i.op = Opcode::LoadStack;
  i.dst = v1;
  i.slot = s0;
  ins.push_back(i);
  i = {};
  i.op = Opcode::Ret;
  i.src1 = v1;
  ins.push_back(i);
  fn.validate();

  EXPECT_TRUE(opt::memory_forwarding(fn));
  fn.validate();
  EXPECT_EQ(count_ops(fn, Opcode::LoadStack), 0);
  EXPECT_EQ(count_ops(fn, Opcode::Mov), 1);
  const auto program = parse("func i32 z() { return 0; }");
  rtl::Executor exec(program);
  EXPECT_EQ(exec.call(fn, {Value::of_f64(2.5)}), Value::of_f64(2.5));
}

TEST(Forwarding, IndexedStoreClobbersOnlyItsSymbol) {
  // A StoreGlobalIdx may hit any element of its symbol, so it kills the
  // forwarded fact for g[0] — but never facts about stack slots.
  rtl::Function fn;
  fn.name = "clobber";
  fn.params.push_back({"k", rtl::RegClass::I32});
  fn.params.push_back({"x", rtl::RegClass::F64});
  fn.has_return = true;
  fn.ret_class = rtl::RegClass::F64;
  const rtl::VReg vk = fn.new_vreg(rtl::RegClass::I32);
  const rtl::VReg vx = fn.new_vreg(rtl::RegClass::F64);
  const rtl::VReg vg = fn.new_vreg(rtl::RegClass::F64);
  const rtl::VReg vs = fn.new_vreg(rtl::RegClass::F64);
  const rtl::Slot s0 = fn.new_slot(rtl::RegClass::F64);
  fn.blocks.resize(1);
  auto& ins = fn.blocks[0].instrs;
  rtl::Instr i;
  i.op = Opcode::GetParam;
  i.dst = vk;
  ins.push_back(i);
  i = {};
  i.op = Opcode::GetParam;
  i.dst = vx;
  i.param_index = 1;
  ins.push_back(i);
  i = {};
  i.op = Opcode::StoreGlobal;
  i.sym = "g";
  i.src1 = vx;
  ins.push_back(i);
  i = {};
  i.op = Opcode::StoreStack;
  i.slot = s0;
  i.src1 = vx;
  ins.push_back(i);
  i = {};
  i.op = Opcode::StoreGlobalIdx;
  i.sym = "g";
  i.src1 = vx;
  i.src2 = vk;
  ins.push_back(i);
  i = {};
  i.op = Opcode::LoadGlobal;
  i.sym = "g";
  i.dst = vg;
  ins.push_back(i);
  i = {};
  i.op = Opcode::LoadStack;
  i.slot = s0;
  i.dst = vs;
  ins.push_back(i);
  i = {};
  i.op = Opcode::Ret;
  i.src1 = vg;
  ins.push_back(i);
  fn.validate();

  EXPECT_TRUE(opt::memory_forwarding(fn));
  fn.validate();
  EXPECT_EQ(count_ops(fn, Opcode::LoadGlobal), 1);  // clobbered: kept
  EXPECT_EQ(count_ops(fn, Opcode::LoadStack), 0);   // slot fact survived
}

TEST(DeadStore, SweepsDeadStoresKeepsAnnotatedSlots) {
  rtl::Function fn;
  fn.name = "dse";
  fn.params.push_back({"x", rtl::RegClass::F64});
  fn.has_return = false;
  const rtl::VReg vx = fn.new_vreg(rtl::RegClass::F64);
  const rtl::Slot s0 = fn.new_slot(rtl::RegClass::F64);
  const rtl::Slot s1 = fn.new_slot(rtl::RegClass::F64);
  fn.blocks.resize(1);
  auto& ins = fn.blocks[0].instrs;
  rtl::Instr i;
  i.op = Opcode::GetParam;
  i.dst = vx;
  ins.push_back(i);
  i = {};
  i.op = Opcode::StoreStack;  // overwritten below: dead
  i.slot = s0;
  i.src1 = vx;
  ins.push_back(i);
  i = {};
  i.op = Opcode::StoreStack;  // read by the annotation: live
  i.slot = s1;
  i.src1 = vx;
  ins.push_back(i);
  i = {};
  i.op = Opcode::StoreGlobal;  // overwritten below: dead
  i.sym = "g";
  i.src1 = vx;
  ins.push_back(i);
  i = {};
  i.op = Opcode::StoreGlobal;  // globals live at return: kept
  i.sym = "g";
  i.src1 = vx;
  ins.push_back(i);
  i = {};
  i.op = Opcode::StoreStack;  // slot never read again: dead
  i.slot = s0;
  i.src1 = vx;
  ins.push_back(i);
  i = {};
  i.op = Opcode::Annot;
  i.annot_format = "0 <= %1";
  i.annot_args.push_back(rtl::AnnotOperand::of_slot(s1));
  ins.push_back(i);
  i = {};
  i.op = Opcode::Ret;
  ins.push_back(i);
  fn.validate();

  EXPECT_TRUE(opt::dead_store_elimination(fn));
  fn.validate();
  EXPECT_EQ(count_ops(fn, Opcode::StoreStack), 1);   // only the annotated slot
  EXPECT_EQ(count_ops(fn, Opcode::StoreGlobal), 1);  // only the last write
}

TEST(Dce, RemovesDeadCodeButKeepsAnnotationOperands) {
  const auto program = parse(R"(
    func i32 f(i32 x) {
      local i32 dead;
      local i32 tracked;
      dead = x * 111;       // never used
      tracked = x * 7;      // only used by the annotation
      __annot("0 <= %1", tracked);
      return x;
    }
  )");
  rtl::Function fn = lower(program);
  const std::size_t before = fn.instruction_count();
  EXPECT_TRUE(opt::dead_code_elimination(fn));
  EXPECT_LT(fn.instruction_count(), before);
  // The annotation operand's computation must survive.
  rtl::Executor exec(program);
  exec.call(fn, {Value::of_i32(6)});
  ASSERT_EQ(exec.annotations().size(), 1u);
  EXPECT_EQ(exec.annotations()[0].values[0], Value::of_i32(42));
}

TEST(Pipeline, PreservesSemanticsOnRandomPrograms) {
  // A grab bag of kernels; the full pipeline must preserve results and
  // global effects bit-exactly on random inputs.
  const char* sources[] = {
      R"(global f64 s = 0.25;
         func f64 k1(f64 x, f64 y) {
           local f64 a;
           a = fmin(fmax(x / (fabs(y) + 1.0), -8.0), 8.0);
           s = s * 0.5 + a;
           return s;
         })",
      R"(func i32 k2(i32 n) {
           local i32 i; local i32 acc;
           acc = 0;
           for (i = 0; i < 13; i = i + 1) {
             acc = acc + ((n >> (i & 7)) & 1) * (i + 1);
           }
           return acc;
         })",
      R"(global i32 mode = 0;
         func f64 k3(f64 x, i32 m) {
           local f64 r;
           r = 0.0;
           mode = m;
           if (m == 0) { r = x; }
           else if (m == 1) { r = -x; }
           else { r = x * x; }
           return (m > 1 ? r + 1.0 : r);
         })",
  };
  Rng rng(31337);
  for (const char* src : sources) {
    const auto program = parse(src);
    for (auto mode : {rtl::LowerMode::PatternStack, rtl::LowerMode::Value}) {
      rtl::Function fn = lower(program, mode);
      const rtl::Function original = fn;
      // Value lowering gets the memory passes too (the Verified RTL set);
      // pattern lowering keeps its per-symbol load/store discipline.
      run_rtl_pipeline(
          fn, mode == rtl::LowerMode::Value
                  ? std::vector<std::string>{"constprop", "cse", "forward",
                                             "dce", "deadstore", "tunnel"}
                  : std::vector<std::string>{"constprop", "cse", "dce",
                                             "tunnel"});
      rtl::Executor exec_a(program);
      rtl::Executor exec_b(program);
      for (int t = 0; t < 25; ++t) {
        std::vector<Value> args;
        for (const auto& p : fn.params)
          args.push_back(p.cls == rtl::RegClass::F64
                             ? Value::of_f64(rng.next_double(-50, 50))
                             : Value::of_i32(static_cast<std::int32_t>(
                                   rng.next_range(-5, 5))));
        ASSERT_EQ(exec_a.call(original, args), exec_b.call(fn, args));
        for (const auto& g : program.globals)
          for (std::size_t i = 0; i < g.count; ++i)
            ASSERT_EQ(exec_a.read_global(g.name, i),
                      exec_b.read_global(g.name, i));
      }
    }
  }
}

TEST(Tunneling, CollapsesForwardingChains) {
  // Empty if-arms lower to pure forwarding blocks ([jump join]).
  const auto program = parse(R"(
    global f64 g = 0.0;
    func f64 f(f64 x, f64 y) {
      local f64 r;
      r = x;
      if (x > 0.0) { } else { r = y; }
      if (y > 0.0) { g = g + 1.0; } else { }
      return r;
    }
  )");
  rtl::Function fn = lower(program);
  const std::size_t blocks_before = fn.blocks.size();
  const bool changed = opt::branch_tunneling(fn);
  EXPECT_TRUE(changed);
  EXPECT_LT(fn.blocks.size(), blocks_before);
  // No surviving branch may target a pure forwarder.
  for (const auto& bb : fn.blocks) {
    for (rtl::BlockId s : bb.successors()) {
      const auto& target = fn.blocks[s].instrs;
      const bool forwarder =
          target.size() == 1 && target[0].op == Opcode::Jump;
      EXPECT_FALSE(forwarder);
    }
  }
  // Semantics preserved.
  rtl::Function original = lower(program);
  rtl::Executor exec_a(program);
  rtl::Executor exec_b(program);
  Rng rng(17);
  for (int t = 0; t < 20; ++t) {
    const std::vector<Value> args{Value::of_f64(rng.next_double(-3, 3)),
                                  Value::of_f64(rng.next_double(-3, 3))};
    ASSERT_EQ(exec_a.call(original, args), exec_b.call(fn, args));
  }
}

TEST(Tunneling, SurvivesEmptyInfiniteLoops) {
  // A forwarder cycle (hand-built; the front end cannot produce one) must
  // not send tunneling into an endless chase.
  rtl::Function fn;
  fn.name = "spin";
  fn.blocks.resize(2);
  rtl::Instr j0;
  j0.op = Opcode::Jump;
  j0.target = 1;
  rtl::Instr j1;
  j1.op = Opcode::Jump;
  j1.target = 0;
  fn.blocks[0].instrs.push_back(j0);
  fn.blocks[1].instrs.push_back(j1);
  fn.validate();
  EXPECT_NO_THROW(opt::branch_tunneling(fn));
  fn.validate();
}

TEST(Pipeline, OptimizedCodeIsNeverLarger) {
  const auto program = parse(R"(
    func f64 chain(f64 a, f64 b, f64 c) {
      local f64 t1; local f64 t2; local f64 t3;
      t1 = a * 2.0 + b;
      t2 = a * 2.0 + c;   // CSE target
      t3 = (1.5 + 2.5) * t1;  // constprop target
      return t1 + t2 + t3;
    }
  )");
  rtl::Function fn = lower(program);
  const std::size_t before = fn.instruction_count();
  const std::vector<std::string> applied = run_rtl_pipeline(
      fn, {"constprop", "cse", "forward", "dce", "deadstore", "tunnel"});
  EXPECT_LE(fn.instruction_count(), before);
  EXPECT_FALSE(applied.empty());
}

}  // namespace
}  // namespace vc
