// Translation-validation tests: genuine pipelines must validate; seeded
// miscompilations (operand swaps, wrong constants, dropped stores, wrong
// registers) must be rejected by the appropriate checker.
#include <gtest/gtest.h>

#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "opt/opt.hpp"
#include "rtl/analysis.hpp"
#include "rtl/lower.hpp"
#include "validate/validate.hpp"

namespace vc {
namespace {

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

const std::string kSample = R"(
  global f64 state = 1.5;
  global f64 hist[4] = {0.5, 1.0, 1.5, 2.0};
  func f64 law(f64 x, f64 y, i32 k) {
    local f64 t1; local f64 t2; local f64 acc;
    local i32 i;
    t1 = x * y + state;
    t2 = x * y - state;
    acc = 0.0;
    for (i = 0; i < 4; i = i + 1) {
      acc = acc + hist[i] * t1;
    }
    if (k > 0) { acc = acc + t2; } else { acc = acc - t2; }
    state = acc * 0.25;
    return acc;
  }
)";

TEST(Validate, GenuinePipelinesValidate) {
  const auto program = parse(kSample);
  for (driver::Config config : driver::kAllConfigs)
    EXPECT_NO_THROW(validate::validated_compile(program, config, 8, 11))
        << driver::to_string(config);
}

TEST(Validate, GeneratedNodesValidate) {
  const auto nodes = dataflow::generate_suite(555, 4);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    minic::Program program;
    dataflow::generate_node(nodes[i], &program);
    minic::type_check(program);
    EXPECT_NO_THROW(validate::validated_compile(
        program, driver::kAllConfigs[i % 4], 6, 77 + i));
  }
}

TEST(Validate, StructureCheckerAcceptsCse) {
  const auto program = parse(kSample);
  rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                         rtl::LowerMode::Value);
  rtl::remove_unreachable_blocks(fn);
  rtl::Function before = fn;
  opt::common_subexpression_elimination(fn);
  const auto result = validate::check_structure_preserving(before, fn);
  EXPECT_TRUE(result.ok) << result.message;
}

TEST(Validate, StructureCheckerRejectsWrongRewrites) {
  const auto program = parse(kSample);
  rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                         rtl::LowerMode::Value);
  rtl::remove_unreachable_blocks(fn);
  const rtl::Function before = fn;

  // Mutation 1: swap the operands of the first non-commutative Bin.
  {
    rtl::Function bad = before;
    bool mutated = false;
    for (auto& bb : bad.blocks) {
      for (auto& ins : bb.instrs) {
        if (ins.op == rtl::Opcode::Bin &&
            ins.bin_op == minic::BinOp::FSub && !mutated) {
          std::swap(ins.src1, ins.src2);
          mutated = true;
        }
      }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(validate::check_structure_preserving(before, bad).ok);
  }
  // Mutation 2: change a constant.
  {
    rtl::Function bad = before;
    bool mutated = false;
    for (auto& bb : bad.blocks) {
      for (auto& ins : bb.instrs) {
        if (ins.op == rtl::Opcode::LdF && !mutated) {
          ins.f64_imm += 1.0;
          mutated = true;
        }
      }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(validate::check_structure_preserving(before, bad).ok);
  }
  // Mutation 3: retarget a store to another global.
  {
    rtl::Function bad = before;
    bool mutated = false;
    for (auto& bb : bad.blocks) {
      for (auto& ins : bb.instrs) {
        if (ins.op == rtl::Opcode::StoreGlobal && ins.sym == "state" &&
            !mutated) {
          ins.sym = "hist";
          ins.elem = 0;
          mutated = true;
        }
      }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(validate::check_structure_preserving(before, bad).ok);
  }
}

TEST(Validate, StructureCheckerAcceptsMemoryForwarding) {
  const auto program = parse(kSample);
  rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                         rtl::LowerMode::Value);
  rtl::remove_unreachable_blocks(fn);
  const rtl::Function before = fn;
  // kSample reads `state` twice in the entry block: the second load is
  // forwarded from the first (load-load forwarding).
  ASSERT_TRUE(opt::memory_forwarding(fn));
  const auto result = validate::check_structure_preserving(before, fn);
  EXPECT_TRUE(result.ok) << result.message;
}

// before: x2 = x+x ; g[0] = x ; r = load g[0] ; ret r
// The only value a rewritten load may copy is x.
rtl::Function forwarding_subject() {
  rtl::Function fn;
  fn.name = "subject";
  fn.params.push_back({"x", rtl::RegClass::F64});
  fn.has_return = true;
  fn.ret_class = rtl::RegClass::F64;
  const rtl::VReg vx = fn.new_vreg(rtl::RegClass::F64);
  const rtl::VReg v2 = fn.new_vreg(rtl::RegClass::F64);
  const rtl::VReg vr = fn.new_vreg(rtl::RegClass::F64);
  fn.blocks.resize(1);
  auto& ins = fn.blocks[0].instrs;
  rtl::Instr i;
  i.op = rtl::Opcode::GetParam;
  i.dst = vx;
  ins.push_back(i);
  i = {};
  i.op = rtl::Opcode::Bin;
  i.bin_op = minic::BinOp::FAdd;
  i.dst = v2;
  i.src1 = vx;
  i.src2 = vx;
  ins.push_back(i);
  i = {};
  i.op = rtl::Opcode::StoreGlobal;
  i.sym = "state";
  i.src1 = vx;
  ins.push_back(i);
  i = {};
  i.op = rtl::Opcode::LoadGlobal;
  i.sym = "state";
  i.dst = vr;
  ins.push_back(i);
  i = {};
  i.op = rtl::Opcode::Ret;
  i.src1 = vr;
  ins.push_back(i);
  fn.validate();
  return fn;
}

TEST(Validate, StructureCheckerRejectsWrongForwarding) {
  const rtl::Function before = forwarding_subject();

  // Correct forwarding: the load becomes a copy of the stored register.
  {
    rtl::Function good = before;
    rtl::Instr& ld = good.blocks[0].instrs[3];
    ld = rtl::Instr{};
    ld.op = rtl::Opcode::Mov;
    ld.dst = 2;   // vr
    ld.src1 = 0;  // vx, the stored value
    EXPECT_TRUE(validate::check_structure_preserving(before, good).ok);
  }
  // Wrong source register: x+x is not the value in memory.
  {
    rtl::Function bad = before;
    rtl::Instr& ld = bad.blocks[0].instrs[3];
    ld = rtl::Instr{};
    ld.op = rtl::Opcode::Mov;
    ld.dst = 2;
    ld.src1 = 1;  // v2 == x+x
    EXPECT_FALSE(validate::check_structure_preserving(before, bad).ok);
  }
  // Forwarding a load with no dominating store of the location.
  {
    rtl::Function before2 = before;
    before2.blocks[0].instrs.erase(before2.blocks[0].instrs.begin() + 2);
    rtl::Function bad = before2;
    rtl::Instr& ld = bad.blocks[0].instrs[2];
    ld = rtl::Instr{};
    ld.op = rtl::Opcode::Mov;
    ld.dst = 2;
    ld.src1 = 0;
    EXPECT_FALSE(validate::check_structure_preserving(before2, bad).ok);
  }
}

TEST(Validate, DeadStoreCheckerRejectsLiveStoreRemoval) {
  rtl::Function before;
  before.name = "ds";
  before.params.push_back({"x", rtl::RegClass::F64});
  const rtl::VReg vx = before.new_vreg(rtl::RegClass::F64);
  const rtl::Slot s0 = before.new_slot(rtl::RegClass::F64);
  before.blocks.resize(1);
  auto& ins = before.blocks[0].instrs;
  rtl::Instr i;
  i.op = rtl::Opcode::GetParam;
  i.dst = vx;
  ins.push_back(i);
  i = {};
  i.op = rtl::Opcode::StoreStack;  // dead: never read before return
  i.slot = s0;
  i.src1 = vx;
  ins.push_back(i);
  i = {};
  i.op = rtl::Opcode::StoreGlobal;  // live: globals outlive the function
  i.sym = "state";
  i.src1 = vx;
  ins.push_back(i);
  i = {};
  i.op = rtl::Opcode::Ret;
  ins.push_back(i);
  before.validate();

  // Removing the dead slot store is accepted...
  rtl::Function good = before;
  good.blocks[0].instrs.erase(good.blocks[0].instrs.begin() + 1);
  const auto ok = validate::check_dead_store_elimination(before, good);
  EXPECT_TRUE(ok.ok) << ok.message;
  // ...removing the live global store is not.
  rtl::Function bad = before;
  bad.blocks[0].instrs.erase(bad.blocks[0].instrs.begin() + 2);
  EXPECT_FALSE(validate::check_dead_store_elimination(before, bad).ok);
  // ...and neither is removing a non-store.
  rtl::Function bad2 = before;
  bad2.blocks[0].instrs.erase(bad2.blocks[0].instrs.begin());
  EXPECT_FALSE(validate::check_dead_store_elimination(before, bad2).ok);
}

TEST(Validate, DifferentialCheckerCatchesMiscompiles) {
  const auto program = parse(kSample);
  rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                         rtl::LowerMode::Value);
  rtl::remove_unreachable_blocks(fn);
  const rtl::Function before = fn;

  // Identity transformation validates.
  EXPECT_TRUE(validate::differential_check(program, before, before, 8, 3).ok);

  // Mutation: FAdd -> FSub somewhere.
  {
    rtl::Function bad = before;
    bool mutated = false;
    for (auto& bb : bad.blocks) {
      for (auto& ins : bb.instrs) {
        if (ins.op == rtl::Opcode::Bin &&
            ins.bin_op == minic::BinOp::FAdd && !mutated) {
          ins.bin_op = minic::BinOp::FSub;
          mutated = true;
        }
      }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(validate::differential_check(program, before, bad, 16, 3).ok);
  }
  // Mutation: drop the store to `state` (turn it into a jump-preserving
  // no-op by replacing with a Mov to a fresh vreg).
  {
    rtl::Function bad = before;
    bool mutated = false;
    for (auto& bb : bad.blocks) {
      for (auto& ins : bb.instrs) {
        if (ins.op == rtl::Opcode::StoreGlobal && !mutated) {
          const rtl::VReg scratch = bad.new_vreg(bad.vregs[ins.src1]);
          rtl::Instr mv;
          mv.op = rtl::Opcode::Mov;
          mv.dst = scratch;
          mv.src1 = ins.src1;
          ins = mv;
          mutated = true;
        }
      }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(validate::differential_check(program, before, bad, 16, 3).ok);
  }
  // Mutation: constant tweak must be caught too.
  {
    rtl::Function bad = before;
    bool mutated = false;
    for (auto& bb : bad.blocks) {
      for (auto& ins : bb.instrs) {
        if (ins.op == rtl::Opcode::LdI && ins.int_imm == 4 && !mutated) {
          ins.int_imm = 3;  // shrink the loop bound
          mutated = true;
        }
      }
    }
    ASSERT_TRUE(mutated);
    EXPECT_FALSE(validate::differential_check(program, before, bad, 16, 3).ok);
  }
}

TEST(Validate, EndToEndCatchesEmissionBug) {
  const auto program = parse(kSample);
  driver::Compiled compiled =
      driver::compile_program(program, driver::Config::Verified);
  EXPECT_TRUE(
      validate::cross_check_machine(program, compiled, "law", 8, 5).ok);

  // Corrupt one instruction word in the image (simulating an assembler or
  // linker defect): flip an fadd into an fsub if present.
  bool corrupted = false;
  for (auto& word : compiled.image.words) {
    mach::MInstr ins = mach::decode(word);
    if (ins.op == mach::MOp::Fadd) {
      ins.op = mach::MOp::Fsub;
      word = mach::encode(ins);
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  // A single call sequence can mask the defect when a NaN/inf input poisons
  // the state early (NaN +/- c is the same NaN); several seeds make the
  // check robust, like a real qualification campaign would.
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 8 && !caught; ++seed)
    caught = !validate::cross_check_machine(program, compiled, "law", 8, seed).ok;
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace vc
