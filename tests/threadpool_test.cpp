// ThreadPool shutdown semantics and the parallel_for exception contract.
// Complements the scheduling tests in fleet_test.cpp: this file pins down
// the two edges the fleet and batch paths lean on — (1) a pool destroyed
// with jobs still queued must drain them, never abandon them (the fleet
// relies on pool destruction as a barrier when a caller skips wait_idle);
// (2) an exception escaping a parallel_for body must not prevent the other
// indices from running, and the first exception is what the caller sees.
#include <atomic>
#include <chrono>
#include <cstddef>
#include <gtest/gtest.h>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/threadpool.hpp"

namespace vc {
namespace {

TEST(ThreadPoolShutdownTest, DestructorDrainsQueuedJobs) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    // Two slow jobs occupy both workers so the rest are definitely still
    // queued when the destructor runs.
    for (int i = 0; i < 2; ++i)
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        done.fetch_add(1);
      });
    for (int i = 0; i < 100; ++i)
      pool.submit([&done] { done.fetch_add(1); });
    // No wait_idle(): destruction itself must act as the barrier.
  }
  EXPECT_EQ(done.load(), 102);
}

TEST(ThreadPoolShutdownTest, JobsSubmittedByJobsStillRun) {
  // A job that enqueues follow-up work before the destructor sets stop_
  // must have that work drained too (workers exit only on an empty queue).
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    pool.submit([&] {
      pool.submit([&done] { done.fetch_add(1); });
      done.fetch_add(1);
    });
    pool.wait_idle();
  }
  EXPECT_EQ(done.load(), 2);
}

TEST(ThreadPoolShutdownTest, ImmediateDestructionIsClean) {
  ThreadPool pool(4);  // construct + destruct with nothing submitted
}

TEST(ParallelForExceptionTest, AllOtherIndicesStillRunParallel) {
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(parallel_for(hits.size(), 4,
                            [&hits](std::size_t i) {
                              hits[i].fetch_add(1);
                              if (i % 7 == 3)
                                throw std::runtime_error("index failed");
                            }),
               std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), 1) << "index " << i << " was skipped";
}

TEST(ParallelForExceptionTest, AllOtherIndicesStillRunSerial) {
  // The jobs<=1 path must honor the same contract (it has no pool, so this
  // is a distinct code path from the test above).
  std::vector<int> hits(32, 0);
  EXPECT_THROW(parallel_for(hits.size(), 1,
                            [&hits](std::size_t i) {
                              hits[i] += 1;
                              if (i == 0) throw std::runtime_error("first");
                            }),
               std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i], 1) << "index " << i << " was skipped";
}

TEST(ParallelForExceptionTest, SerialFirstExceptionWins) {
  // Serial order is deterministic, so "first" is index order.
  try {
    parallel_for(8, 1, [](std::size_t i) {
      throw std::runtime_error("boom at " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom at 0");
  }
}

TEST(ParallelForExceptionTest, ExactlyOneExceptionSurfacesParallel) {
  // Every index throws; the caller must see exactly one exception (some
  // runtime_error), not a terminate from a second in-flight throw.
  std::atomic<int> ran{0};
  try {
    parallel_for(64, 8, [&ran](std::size_t i) {
      ran.fetch_add(1);
      throw std::runtime_error("boom at " + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("boom at "), std::string::npos);
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ParallelForExceptionTest, NonStdExceptionPropagates) {
  EXPECT_THROW(parallel_for(4, 2,
                            [](std::size_t i) {
                              if (i == 2) throw 42;  // NOLINT
                            }),
               int);
}

TEST(ParallelForExceptionTest, ZeroCountIsANoOp) {
  parallel_for(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
  parallel_for(0, 1, [](std::size_t) { FAIL() << "must not be called"; });
}

}  // namespace
}  // namespace vc
