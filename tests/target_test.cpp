// The target registry and descriptor-validation rules: every registered
// descriptor passes `validate_target` (it already ran at registration —
// these tests re-run it directly), and a malformed descriptor is rejected
// with an InternalError naming the offending field, so a broken port fails
// loudly at startup instead of miscompiling or issuing past the pipeline
// model's buffer bounds.
#include <gtest/gtest.h>

#include <string>

#include "mach/target.hpp"
#include "mach/timing.hpp"
#include "support/diagnostics.hpp"

namespace vc::mach {
namespace {

TEST(TargetRegistry, KnownTargetsRoundTrip) {
  const std::vector<std::string> names = target_names();
  ASSERT_GE(names.size(), 2u);
  EXPECT_EQ(names[0], default_target_name());
  for (const std::string& name : names) {
    const TargetDesc& desc = target_by_name(name);
    EXPECT_EQ(desc.name, name);
    EXPECT_NO_THROW(validate_target(desc));
  }
  // Both paper targets are registered, PPC first (the default, so images
  // that predate the target tag keep their old meaning).
  EXPECT_EQ(default_target_name(), "ppc");
  EXPECT_NE(std::find(names.begin(), names.end(), "rv32"), names.end());
}

TEST(TargetRegistry, UnknownNameIsACompileErrorListingKnownNames) {
  try {
    target_by_name("m68k");
    FAIL() << "unknown target accepted";
  } catch (const CompileError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("m68k"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ppc"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rv32"), std::string::npos) << msg;
  }
}

/// Expects validate_target(desc) to throw InternalError whose message names
/// `field`.
void expect_rejected(const TargetDesc& desc, const std::string& field) {
  try {
    validate_target(desc);
    FAIL() << "descriptor with broken '" << field << "' accepted";
  } catch (const InternalError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("'" + field + "'"), std::string::npos)
        << "diagnostic does not name the field: " << msg;
  }
}

TEST(TargetValidation, BrokenDescriptorsAreNamedAndRejected) {
  const TargetDesc& good = target_by_name(default_target_name());

  {
    TargetDesc d = good;
    d.name.clear();
    expect_rejected(d, "name");
  }
  {
    TargetDesc d = good;
    d.lower = nullptr;
    expect_rejected(d, "lower");
  }
  {
    TargetDesc d = good;
    d.issue_width = 0;
    expect_rejected(d, "issue_width");
  }
  {
    TargetDesc d = good;
    d.issue_width = 9;
    expect_rejected(d, "issue_width");
  }
  {
    // The declared resource cap must fit the compile-time buffer bound...
    TargetDesc d = good;
    d.max_resources_per_instr = IssueModel::kMaxResourcesPerInstr + 1;
    expect_rejected(d, "max_resources_per_instr");
  }
  {
    // ...and every legal op's resource lists must fit the declared cap.
    TargetDesc d = good;
    d.max_resources_per_instr = 1;
    expect_rejected(d, "max_resources_per_instr");
  }
  {
    TargetDesc d = good;
    d.stack_ptr = 32;
    expect_rejected(d, "stack_ptr");
  }
  {
    // A register role leaking into the allocatable set would let the
    // allocator clobber the stack pointer.
    TargetDesc d = good;
    d.alloc_gprs.push_back(d.stack_ptr);
    expect_rejected(d, "alloc_gprs");
  }
  {
    TargetDesc d = good;
    d.alloc_fprs.push_back(d.alloc_fprs.front());
    expect_rejected(d, "alloc_fprs");
  }
  {
    TargetDesc d = good;
    d.scratch_gpr1 = d.scratch_gpr0;
    expect_rejected(d, "scratch_gpr1");
  }
  {
    TargetDesc d = good;
    d.imm_min = 0;
    expect_rejected(d, "imm_min");
  }
  {
    TargetDesc d = good;
    d.machine.icache.sets = 3;
    expect_rejected(d, "machine.icache");
  }
  {
    TargetDesc d = good;
    d.machine.dcache.line_bytes = 4;
    expect_rejected(d, "machine.dcache");
  }
  {
    // CR-dependent features on a CR-less target.
    TargetDesc d = good;
    d.has_cr = false;
    d.peephole.fold_cmp_imm = true;
    expect_rejected(d, "peephole.fold_cmp_imm");
  }
  {
    TargetDesc d = good;
    d.ops[static_cast<std::size_t>(MOp::Add)].latency = 0;
    expect_rejected(d, "ops[add].latency");
  }
}

}  // namespace
}  // namespace vc::mach
