// WCET analyzer tests: CFG reconstruction sanity, loop-bound derivation,
// and the central soundness property — the static bound dominates every
// observed execution, for every compiler configuration.
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "support/rng.hpp"
#include "wcet/cfg.hpp"
#include "wcet/wcet.hpp"

namespace vc {
namespace {

using minic::Value;

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

void expect_sound(const minic::Program& program, const std::string& fn,
                  const std::vector<std::vector<Value>>& input_sets) {
  for (driver::Config config : driver::kAllConfigs) {
    const driver::Compiled compiled = driver::compile_program(program, config);
    const wcet::WcetResult bound = wcet::analyze_wcet(compiled.image, fn);
    machine::Machine m(compiled.image);
    const minic::Function* f = program.find_function(fn);
    ASSERT_NE(f, nullptr);
    std::uint64_t observed_max = 0;
    for (const auto& args : input_sets) {
      m.clear_caches();  // unknown initial cache state per run
      m.call(fn, args, f->has_return ? f->return_type : minic::Type::I32);
      observed_max = std::max(observed_max, m.stats().cycles);
      ASSERT_GE(bound.wcet_cycles, m.stats().cycles)
          << "UNSOUND bound for config " << driver::to_string(config);
    }
    // The bound should not be absurdly loose either (10x is a generous cap
    // for these small kernels).
    EXPECT_LE(bound.wcet_cycles, observed_max * 10 + 2000)
        << "bound suspiciously loose for " << driver::to_string(config);
  }
}

TEST(Wcet, StraightLine) {
  const auto program = parse(R"(
    func f64 law(f64 a, f64 b) {
      local f64 t;
      t = a * b + a - b;
      return t / (b + 2.5);
    }
  )");
  expect_sound(program, "law",
               {{Value::of_f64(1.0), Value::of_f64(2.0)},
                {Value::of_f64(-3.5), Value::of_f64(0.25)}});
}

TEST(Wcet, BranchyMax) {
  const auto program = parse(R"(
    func f64 sel(f64 x, i32 mode) {
      local f64 r;
      r = 0.0;
      if (mode == 0) { r = x * 2.0; }
      else if (mode == 1) { r = x * x * x; }
      else { r = fabs(x) + 17.5; }
      return r;
    }
  )");
  std::vector<std::vector<Value>> inputs;
  for (int mode = 0; mode < 4; ++mode)
    inputs.push_back({Value::of_f64(1.25), Value::of_i32(mode)});
  expect_sound(program, "sel", inputs);
}

TEST(Wcet, CountedLoopDerivedBound) {
  const auto program = parse(R"(
    global f64 buf[16] = {1,1,1,1, 2,2,2,2, 3,3,3,3, 4,4,4,4};
    func f64 sum16() {
      local f64 acc;
      local i32 i;
      acc = 0.0;
      for (i = 0; i < 16; i = i + 1) {
        acc = acc + buf[i];
      }
      return acc;
    }
  )");
  expect_sound(program, "sum16", {{}});

  // In the optimizing configs the counter lives in a register and the bound
  // must be derivable automatically, with no annotation in the source.
  const driver::Compiled compiled =
      driver::compile_program(program, driver::Config::Verified);
  const wcet::WcetResult r = wcet::analyze_wcet(compiled.image, "sum16");
  ASSERT_EQ(r.loops.size(), 1u);
  EXPECT_TRUE(r.loops[0].derived);
  EXPECT_EQ(r.loops[0].bound, 16);
}

TEST(Wcet, WhileLoopNeedsAnnotation) {
  const std::string body = R"(
    func f64 ramp(f64 x) {
      local f64 r;
      r = 0.0;
      while (r < x) {
        {ANNOT}
        r = r + 1.0;
      }
      return r;
    }
  )";
  // Without an annotation the analysis must refuse (no loop bound).
  {
    std::string src = body;
    src.replace(src.find("{ANNOT}"), 7, "");
    const auto program = parse(src);
    const auto compiled =
        driver::compile_program(program, driver::Config::Verified);
    EXPECT_THROW(wcet::analyze_wcet(compiled.image, "ramp"), wcet::WcetError);
  }
  // With the annotation, analysis succeeds and is sound for inputs within
  // the annotated bound.
  {
    std::string src = body;
    src.replace(src.find("{ANNOT}"), 7, "__annot(\"loop <= 50\");");
    const auto program = parse(src);
    expect_sound(program, "ramp",
                 {{Value::of_f64(0.0)}, {Value::of_f64(12.5)},
                  {Value::of_f64(50.0)}});
  }
}

TEST(Wcet, NestedLoops) {
  const auto program = parse(R"(
    global f64 mat[24] = {0,1,2,3,4,5, 6,7,8,9,10,11,
                          12,13,14,15,16,17, 18,19,20,21,22,23};
    func f64 frob() {
      local f64 acc;
      local i32 i;
      local i32 j;
      acc = 0.0;
      for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 6; j = j + 1) {
          acc = acc + mat[i * 6 + j];
        }
      }
      return acc;
    }
  )");
  expect_sound(program, "frob", {{}});
}

TEST(Wcet, ConfigOrderingOnSymbolChain) {
  // A straight-line "symbol chain" like the ACG emits: the WCET improvements
  // must reproduce the paper's ordering:
  //   O2-full <= verified < O1-noregalloc <= O0-pattern.
  const auto program = parse(R"(
    global f64 s0 = 0.1;
    global f64 s1 = 0.2;
    func f64 law(f64 in1, f64 in2, f64 in3) {
      local f64 t1; local f64 t2; local f64 t3; local f64 t4;
      local f64 t5; local f64 t6; local f64 t7; local f64 t8;
      t1 = in1 + in2;
      t2 = t1 * 0.75;
      t3 = t2 + in3;
      t4 = t3 * t1;
      t5 = t4 - in1;
      t6 = t5 * 0.5 + s0;
      t7 = t6 * t6;
      t8 = fmin(fmax(t7, -100.0), 100.0);
      s0 = t6;
      s1 = t8;
      return t8 + t2 * 0.125;
    }
  )");
  std::map<driver::Config, std::uint64_t> wcet;
  for (driver::Config config : driver::kAllConfigs) {
    const auto compiled = driver::compile_program(program, config);
    wcet[config] = wcet::analyze_wcet(compiled.image, "law").wcet_cycles;
  }
  EXPECT_LE(wcet[driver::Config::O2Full], wcet[driver::Config::Verified]);
  EXPECT_LT(wcet[driver::Config::Verified],
            wcet[driver::Config::O1NoRegalloc]);
  EXPECT_LE(wcet[driver::Config::O1NoRegalloc],
            wcet[driver::Config::O0Pattern]);
}

// ----------------------------------------------------------- cross-engine

/// Runs engine=Both across all configs: both bounds must dominate every
/// observed execution, the IPET certificate must verify, and IPET must
/// never be looser than structural.
void expect_cross_engine_sound(const minic::Program& program,
                               const std::string& fn,
                               const std::vector<std::vector<Value>>& inputs) {
  for (driver::Config config : driver::kAllConfigs) {
    const driver::Compiled compiled = driver::compile_program(program, config);
    wcet::WcetOptions options;
    options.engine = wcet::WcetEngine::Both;
    const wcet::WcetResult r =
        wcet::analyze_wcet(compiled.image, fn, options);
    ASSERT_TRUE(r.structural_cycles.has_value());
    ASSERT_TRUE(r.ipet.has_value());
    EXPECT_TRUE(r.ipet->certificate_verified);
    EXPECT_EQ(r.wcet_cycles, r.ipet->wcet_cycles);
    EXPECT_LE(r.ipet->wcet_cycles, *r.structural_cycles)
        << "IPET looser than structural for " << driver::to_string(config);
    machine::Machine m(compiled.image);
    const minic::Function* f = program.find_function(fn);
    ASSERT_NE(f, nullptr);
    for (const auto& args : inputs) {
      m.clear_caches();
      m.call(fn, args, f->has_return ? f->return_type : minic::Type::I32);
      EXPECT_GE(r.ipet->wcet_cycles, m.stats().cycles)
          << "UNSOUND IPET bound for " << driver::to_string(config);
      EXPECT_GE(*r.structural_cycles, m.stats().cycles)
          << "UNSOUND structural bound for " << driver::to_string(config);
    }
  }
}

TEST(WcetIpet, CrossEngineStraightLine) {
  const auto program = parse(R"(
    func f64 law(f64 a, f64 b) {
      local f64 t;
      t = a * b + a - b;
      return t / (b + 2.5);
    }
  )");
  expect_cross_engine_sound(program, "law",
                            {{Value::of_f64(1.0), Value::of_f64(2.0)},
                             {Value::of_f64(-3.5), Value::of_f64(0.25)}});
}

TEST(WcetIpet, CrossEngineBranchesAndNestedLoops) {
  const auto program = parse(R"(
    global f64 mat[24] = {0,1,2,3,4,5, 6,7,8,9,10,11,
                          12,13,14,15,16,17, 18,19,20,21,22,23};
    func f64 frob(i32 mode) {
      local f64 acc;
      local i32 i;
      local i32 j;
      acc = 0.0;
      if (mode == 0) { acc = 100.0; }
      for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < 6; j = j + 1) {
          acc = acc + mat[i * 6 + j];
        }
      }
      return acc;
    }
  )");
  expect_cross_engine_sound(
      program, "frob", {{Value::of_i32(0)}, {Value::of_i32(1)}});
}

TEST(WcetIpet, InfeasibleEdgeMakesIpetStrictlyTighter) {
  // The range annotation proves the error arm can never execute. The
  // structural engine still pays for it (longest path has no notion of
  // infeasibility); IPET pins the guarded edge's frequency to zero and the
  // bound drops strictly.
  const auto program = parse(R"(
    func f64 guarded(i32 k, f64 x) {
      local f64 r;
      __annot("0 <= %1 <= 9", k);
      r = x * 0.5;
      if (k < 0) {
        r = r * x + 3.25;
        r = r * r - x;
        r = r * r + r * x;
        r = r * r * r;
      }
      return r + 1.0;
    }
  )");
  for (driver::Config config :
       {driver::Config::Verified, driver::Config::O2Full}) {
    const auto compiled = driver::compile_program(program, config);
    wcet::WcetOptions options;
    options.engine = wcet::WcetEngine::Both;
    const wcet::WcetResult r =
        wcet::analyze_wcet(compiled.image, "guarded", options);
    ASSERT_TRUE(r.ipet.has_value());
    EXPECT_GE(r.ipet->capped_edges, 1) << driver::to_string(config);
    EXPECT_LT(r.ipet->wcet_cycles, *r.structural_cycles)
        << "IPET failed to exploit the infeasible edge under "
        << driver::to_string(config);
    // Still sound for every in-range input.
    machine::Machine m(compiled.image);
    for (int k : {0, 5, 9}) {
      m.clear_caches();
      m.call("guarded", {Value::of_i32(k), Value::of_f64(2.0)},
             minic::Type::F64);
      EXPECT_GE(r.ipet->wcet_cycles, m.stats().cycles);
    }
  }
}

TEST(WcetIpet, IpetOnlyEngineOmitsStructural) {
  const auto program = parse(R"(
    func f64 twice(f64 x) { return x + x; }
  )");
  const auto compiled =
      driver::compile_program(program, driver::Config::Verified);
  wcet::WcetOptions options;
  options.engine = wcet::WcetEngine::Ipet;
  const wcet::WcetResult r =
      wcet::analyze_wcet(compiled.image, "twice", options);
  EXPECT_FALSE(r.structural_cycles.has_value());
  ASSERT_TRUE(r.ipet.has_value());
  EXPECT_EQ(r.wcet_cycles, r.ipet->wcet_cycles);
  EXPECT_GT(r.wcet_cycles, 0u);
}

TEST(WcetIpet, EngineNamesRoundTrip) {
  using wcet::WcetEngine;
  for (WcetEngine e : {WcetEngine::Structural, WcetEngine::Ipet,
                       WcetEngine::Both}) {
    const auto parsed = wcet::parse_wcet_engine(wcet::to_string(e));
    ASSERT_TRUE(parsed.has_value()) << wcet::to_string(e);
    EXPECT_EQ(*parsed, e);
  }
  EXPECT_FALSE(wcet::parse_wcet_engine("exact").has_value());
  EXPECT_FALSE(wcet::parse_wcet_engine("").has_value());
  EXPECT_FALSE(wcet::parse_wcet_engine("Structural").has_value());
}

TEST(Wcet, CfgReconstruction) {
  const auto program = parse(R"(
    func i32 gcd(i32 a, i32 b) {
      local i32 t;
      __annot("0 <= %1", a);
      while (b != 0) {
        __annot("loop <= 64");
        t = b;
        b = a % b;
        a = t;
      }
      return a;
    }
  )");
  const auto compiled =
      driver::compile_program(program, driver::Config::Verified);
  const wcet::Cfg cfg = wcet::build_cfg(compiled.image, "gcd");
  EXPECT_GE(cfg.blocks.size(), 3u);
  EXPECT_EQ(cfg.loops.size(), 1u);
  // Every block ends with a branch and successors are consistent.
  for (const auto& bb : cfg.blocks) {
    ASSERT_FALSE(bb.instrs.empty());
    EXPECT_TRUE(mach::is_branch(bb.instrs.back().op));
    for (int s : bb.succs) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, static_cast<int>(cfg.blocks.size()));
    }
  }
}

}  // namespace
}  // namespace vc
