// SSA mid-end tests: construction/destruction, the loop optimizations, the
// three SSA validators (including the mutation tests that prove each checker
// fires), the pipeline bracket rules, and full validated compiles with the
// SSA mid-end enabled on both targets.
#include <gtest/gtest.h>

#include <algorithm>

#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "driver/compiler.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "rtl/analysis.hpp"
#include "rtl/lower.hpp"
#include "rtl/rtl.hpp"
#include "ssa/internal.hpp"
#include "ssa/ssa.hpp"
#include "validate/validate.hpp"

namespace vc {
namespace {

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

rtl::Function lower(const minic::Program& p, std::size_t fn = 0) {
  rtl::Function f =
      rtl::lower_function(p, p.functions[fn], rtl::LowerMode::Value);
  rtl::remove_unreachable_blocks(f);
  return f;
}

/// A loop-heavy control law: a counted annotated loop with an invariant
/// product (LICM bait), redundant subexpressions (GVN bait), and global
/// state so the differential oracle sees memory effects.
const std::string kLoopy = R"(
  global f64 acc = 0.25;
  global f64 tbl[8] = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
  func f64 filt(f64 x, f64 y, i32 k) {
    local i32 i; local f64 s; local f64 t1; local f64 t2;
    t1 = x * y + acc;
    t2 = x * y - acc;
    s = 0.0;
    i = 0;
    while (i < 8) {
      __annot("loop <= 8");
      s = s + tbl[i] * (x * 2.0);
      acc = acc + s * 0.125;
      i = i + 1;
    }
    if (k > 0) { s = s + t1; } else { s = s - t2; }
    return s;
  }
)";

/// An unannotated loop plus integer redundancy: rotation and unrolling must
/// leave it alone, GVN must still fire.
const std::string kIntLoop = R"(
  global i32 sum = 0;
  func i32 tri(i32 n) {
    local i32 i; local i32 a; local i32 b;
    a = n * n + 1;
    b = n * n + 1;
    i = 0;
    while (i < 6) {
      sum = sum + i * a + b;
      i = i + 1;
    }
    return sum;
  }
)";

int count_ops(const rtl::Function& fn, rtl::Opcode op) {
  int n = 0;
  for (const auto& b : fn.blocks)
    for (const auto& ins : b.instrs)
      if (ins.op == op) ++n;
  return n;
}

int count_annots(const rtl::Function& fn, const std::string& format) {
  int n = 0;
  for (const auto& b : fn.blocks)
    for (const auto& ins : b.instrs)
      if (ins.op == rtl::Opcode::Annot && ins.annot_format == format) ++n;
  return n;
}

// ---------------------------------------------------------------------------
// Construction / destruction
// ---------------------------------------------------------------------------

TEST(SsaBuild, ProducesWellFormedEquivalentSsa) {
  const auto program = parse(kLoopy);
  rtl::Function fn = lower(program);
  const rtl::Function original = fn;

  EXPECT_TRUE(ssa::build_ssa(fn));
  EXPECT_TRUE(ssa::has_phis(fn));
  EXPECT_NO_THROW(fn.validate());

  const auto wf = validate::check_ssa_wellformed(fn);
  EXPECT_TRUE(wf.ok) << wf.message;
  const auto diff = validate::differential_check(program, original, fn, 8, 3);
  EXPECT_TRUE(diff.ok) << diff.message;
}

TEST(SsaBuild, DeterministicDump) {
  const auto program = parse(kLoopy);
  rtl::Function a = lower(program);
  rtl::Function b = lower(program);
  ssa::build_ssa(a);
  ssa::build_ssa(b);
  EXPECT_EQ(rtl::print_function(a), rtl::print_function(b));
}

TEST(SsaOut, EliminatesAllPhis) {
  const auto program = parse(kLoopy);
  rtl::Function fn = lower(program);
  const rtl::Function original = fn;

  ssa::build_ssa(fn);
  EXPECT_TRUE(ssa::destroy_ssa(fn));
  EXPECT_FALSE(ssa::has_phis(fn));
  EXPECT_NO_THROW(fn.validate());

  const auto diff = validate::differential_check(program, original, fn, 8, 5);
  EXPECT_TRUE(diff.ok) << diff.message;
}

TEST(SsaDump, GoldenPhiText) {
  // A hand-built diamond: the dump of a phi spells every incoming edge,
  // sorted by predecessor, and is stable.
  rtl::Function fn;
  fn.name = "pick";
  fn.params.push_back({"c", rtl::RegClass::I32});
  const rtl::VReg c = fn.new_vreg(rtl::RegClass::I32);
  const rtl::VReg a = fn.new_vreg(rtl::RegClass::I32);
  const rtl::VReg b = fn.new_vreg(rtl::RegClass::I32);
  const rtl::VReg m = fn.new_vreg(rtl::RegClass::I32);
  fn.has_return = true;
  fn.ret_class = rtl::RegClass::I32;
  fn.blocks.resize(4);
  auto ins = [](rtl::Opcode op) { rtl::Instr i; i.op = op; return i; };

  rtl::Instr par = ins(rtl::Opcode::GetParam);
  par.dst = c;
  par.param_index = 0;
  rtl::Instr br = ins(rtl::Opcode::Branch);
  br.src1 = c;
  br.target = 1;
  br.target2 = 2;
  fn.blocks[0].instrs = {par, br};

  rtl::Instr ld1 = ins(rtl::Opcode::LdI);
  ld1.dst = a;
  ld1.int_imm = 7;
  rtl::Instr j1 = ins(rtl::Opcode::Jump);
  j1.target = 3;
  fn.blocks[1].instrs = {ld1, j1};

  rtl::Instr ld2 = ins(rtl::Opcode::LdI);
  ld2.dst = b;
  ld2.int_imm = 9;
  fn.blocks[2].instrs = {ld2, j1};

  rtl::Instr phi = ins(rtl::Opcode::Phi);
  phi.dst = m;
  phi.phi_args = {{1, a}, {2, b}};
  rtl::Instr ret = ins(rtl::Opcode::Ret);
  ret.src1 = m;
  fn.blocks[3].instrs = {phi, ret};
  fn.validate();

  const std::string dump = rtl::print_function(fn);
  EXPECT_NE(dump.find("i3 = phi [bb1: i1, bb2: i2]"), std::string::npos)
      << dump;
  EXPECT_EQ(dump, rtl::print_function(fn));  // stable
  const auto wf = validate::check_ssa_wellformed(fn);
  EXPECT_TRUE(wf.ok) << wf.message;
}

// ---------------------------------------------------------------------------
// GVN
// ---------------------------------------------------------------------------

TEST(SsaGvn, CollapsesRedundancyAndPassesCheckers) {
  const auto program = parse(kIntLoop);
  rtl::Function fn = lower(program);
  const rtl::Function original = fn;
  ssa::build_ssa(fn);
  const rtl::Function before = fn;

  EXPECT_TRUE(ssa::global_value_numbering(fn));
  // The duplicated n*n+1 collapses into copies.
  EXPECT_LT(count_ops(fn, rtl::Opcode::Bin), count_ops(before, rtl::Opcode::Bin));

  const auto wf = validate::check_ssa_wellformed(fn);
  EXPECT_TRUE(wf.ok) << wf.message;
  const auto eq = validate::check_ssa_equivalence(before, fn);
  EXPECT_TRUE(eq.ok) << eq.message;
  const auto diff = validate::differential_check(program, original, fn, 8, 7);
  EXPECT_TRUE(diff.ok) << diff.message;
}

TEST(SsaGvn, EquivalenceCheckerRejectsWrongCopy) {
  const auto program = parse(kIntLoop);
  rtl::Function fn = lower(program);
  ssa::build_ssa(fn);
  const rtl::Function before = fn;

  // Plant a miscompile: rewrite the first Bin into a copy of an arbitrary
  // same-class vreg that does NOT compute the same value.
  bool planted = false;
  for (auto& blk : fn.blocks) {
    for (auto& i : blk.instrs) {
      if (i.op != rtl::Opcode::Bin) continue;
      rtl::Instr mov;
      mov.op = rtl::Opcode::Mov;
      mov.dst = i.dst;
      mov.src1 = i.src1;  // "dst = src1": drops the operation
      i = mov;
      planted = true;
      break;
    }
    if (planted) break;
  }
  ASSERT_TRUE(planted);
  const auto eq = validate::check_ssa_equivalence(before, fn);
  EXPECT_FALSE(eq.ok);
  EXPECT_NE(eq.message.find("diverged"), std::string::npos) << eq.message;
}

// ---------------------------------------------------------------------------
// LICM
// ---------------------------------------------------------------------------

TEST(SsaLicm, HoistsInvariantsAndPassesCheckers) {
  const auto program = parse(kLoopy);
  rtl::Function fn = lower(program);
  const rtl::Function original = fn;
  ssa::build_ssa(fn);
  const rtl::Function before = fn;

  EXPECT_TRUE(ssa::loop_invariant_code_motion(fn));

  const auto wf = validate::check_ssa_wellformed(fn);
  EXPECT_TRUE(wf.ok) << wf.message;
  const auto eq = validate::check_ssa_equivalence(before, fn);
  EXPECT_TRUE(eq.ok) << eq.message;
  const auto diff = validate::differential_check(program, original, fn, 8, 9);
  EXPECT_TRUE(diff.ok) << diff.message;

  // The invariant x*2.0 left the loop: the loop body holds fewer Bins.
  const auto preds = rtl::predecessors(fn);
  const auto idom = rtl::immediate_dominators(fn);
  const auto forest = ssa::find_loops(fn, idom, preds);
  ASSERT_FALSE(forest.loops.empty());
  int in_loop_before = 0, in_loop_after = 0;
  for (rtl::BlockId b : forest.loops[0].blocks) {
    for (const auto& i : before.blocks[b].instrs)
      if (i.op == rtl::Opcode::Bin) ++in_loop_before;
    for (const auto& i : fn.blocks[b].instrs)
      if (i.op == rtl::Opcode::Bin) ++in_loop_after;
  }
  EXPECT_LT(in_loop_after, in_loop_before);
}

// ---------------------------------------------------------------------------
// Rotation
// ---------------------------------------------------------------------------

TEST(SsaRotate, RotatesAnnotatedLoopOnly) {
  const auto program = parse(kLoopy);
  rtl::Function fn = lower(program);
  const rtl::Function original = fn;
  ssa::build_ssa(fn);

  EXPECT_TRUE(ssa::loop_rotation(fn));
  const auto wf = validate::check_ssa_wellformed(fn);
  EXPECT_TRUE(wf.ok) << wf.message;
  const auto diff = validate::differential_check(program, original, fn, 8, 11);
  EXPECT_TRUE(diff.ok) << diff.message;

  // The unannotated loop keeps its shape.
  const auto p2 = parse(kIntLoop);
  rtl::Function plain = lower(p2);
  ssa::build_ssa(plain);
  EXPECT_FALSE(ssa::loop_rotation(plain));
}

// ---------------------------------------------------------------------------
// Unrolling + certificate
// ---------------------------------------------------------------------------

TEST(SsaUnroll, UnrollsAndCertifies) {
  const auto program = parse(kLoopy);
  rtl::Function fn = lower(program);
  const rtl::Function original = fn;
  ssa::build_ssa(fn);
  const rtl::Function before = fn;

  ssa::UnrollCertificate cert;
  ASSERT_TRUE(ssa::loop_unrolling(fn, &cert));
  ASSERT_EQ(cert.loops.size(), 1u);
  const auto& row = cert.loops[0];
  EXPECT_EQ(row.original_bound, 8);
  EXPECT_GE(row.factor, 2);
  EXPECT_EQ(row.original_bound % row.factor, 0);
  EXPECT_EQ(row.residual_bound, row.original_bound / row.factor);

  const auto wf = validate::check_ssa_wellformed(fn);
  EXPECT_TRUE(wf.ok) << wf.message;
  const auto cc = validate::check_unroll_certificate(before, fn, cert);
  EXPECT_TRUE(cc.ok) << cc.message;

  // The annotation trace keeps its event count (k copies of the residual
  // bound run n/k times each); only the format text changed.
  const auto strict =
      validate::differential_check(program, original, fn, 6, 13);
  EXPECT_FALSE(strict.ok);
  const auto norm =
      validate::differential_check(program, original, fn, 6, 13, true);
  EXPECT_TRUE(norm.ok) << norm.message;

  EXPECT_EQ(count_annots(fn, row.new_format), row.factor);
  EXPECT_EQ(count_annots(fn, row.old_format), 0);
}

TEST(SsaUnroll, LeavesUnannotatedLoopsAlone) {
  const auto program = parse(kIntLoop);
  rtl::Function fn = lower(program);
  ssa::build_ssa(fn);
  ssa::UnrollCertificate cert;
  EXPECT_FALSE(ssa::loop_unrolling(fn, &cert));
  EXPECT_TRUE(cert.loops.empty());
}

// ---------------------------------------------------------------------------
// Mutation tests: every new checker must fire on a planted defect
// ---------------------------------------------------------------------------

TEST(SsaMutation, WellformedRejectsNonDominatingUse) {
  const auto program = parse(kLoopy);
  rtl::Function fn = lower(program);
  ssa::build_ssa(fn);
  ASSERT_TRUE(validate::check_ssa_wellformed(fn).ok);

  // Find a def in a non-entry block and force an entry-block instruction to
  // use it: the definition cannot dominate that use.
  rtl::VReg late = rtl::kNoVReg;
  rtl::RegClass late_cls = rtl::RegClass::I32;
  for (rtl::BlockId b = 1; b < fn.blocks.size() && late == rtl::kNoVReg; ++b)
    for (const auto& i : fn.blocks[b].instrs)
      if (auto d = i.def()) {
        late = *d;
        late_cls = fn.vregs[*d];
        break;
      }
  ASSERT_NE(late, rtl::kNoVReg);
  bool planted = false;
  for (auto& i : fn.blocks[0].instrs) {
    if (planted) break;
    ssa::detail::rewrite_uses(i, [&](rtl::VReg u) {
      if (!planted && fn.vregs[u] == late_cls) {
        planted = true;
        return late;
      }
      return u;
    });
  }
  ASSERT_TRUE(planted);
  const auto wf = validate::check_ssa_wellformed(fn);
  EXPECT_FALSE(wf.ok);
  EXPECT_NE(wf.message.find("dominated"), std::string::npos) << wf.message;
}

TEST(SsaMutation, WellformedRejectsWrongPhiArity) {
  const auto program = parse(kLoopy);
  rtl::Function fn = lower(program);
  ssa::build_ssa(fn);

  bool planted = false;
  for (auto& blk : fn.blocks) {
    for (auto& i : blk.instrs) {
      if (i.op == rtl::Opcode::Phi && i.phi_args.size() >= 2) {
        i.phi_args.pop_back();  // drop one incoming edge
        planted = true;
        break;
      }
    }
    if (planted) break;
  }
  ASSERT_TRUE(planted);
  const auto wf = validate::check_ssa_wellformed(fn);
  EXPECT_FALSE(wf.ok);
  EXPECT_NE(wf.message.find("phi"), std::string::npos) << wf.message;
}

TEST(SsaMutation, CertificateRejectsOffByOneResidual) {
  const auto program = parse(kLoopy);
  rtl::Function fn = lower(program);
  ssa::build_ssa(fn);
  const rtl::Function before = fn;
  ssa::UnrollCertificate cert;
  ASSERT_TRUE(ssa::loop_unrolling(fn, &cert));
  ASSERT_FALSE(cert.loops.empty());

  ssa::UnrollCertificate bad = cert;
  bad.loops[0].residual_bound += 1;  // claims a looser bound than derived
  const auto cc = validate::check_unroll_certificate(before, fn, bad);
  EXPECT_FALSE(cc.ok);
  EXPECT_NE(cc.message.find("residual"), std::string::npos) << cc.message;

  // Forged anchors must be rejected too.
  ssa::UnrollCertificate forged = cert;
  forged.loops[0].after_anchors.back() = {0, 0};
  EXPECT_FALSE(validate::check_unroll_certificate(before, fn, forged).ok);
}

// ---------------------------------------------------------------------------
// Pipeline integration
// ---------------------------------------------------------------------------

TEST(SsaPipeline, BracketRules) {
  driver::CompileOptions o;
  o.passes = {"ssa-gvn"};
  EXPECT_THROW(driver::resolve_pipeline(driver::Config::Verified, o),
               CompileError);
  o.passes = {"ssa-build", "cse", "ssa-out"};
  EXPECT_THROW(driver::resolve_pipeline(driver::Config::Verified, o),
               CompileError);
  o.passes = {"ssa-build", "ssa-gvn"};
  EXPECT_THROW(driver::resolve_pipeline(driver::Config::Verified, o),
               CompileError);
  o.passes = {"ssa-build", "ssa-gvn", "ssa-licm", "ssa-out", "cse"};
  EXPECT_NO_THROW(driver::resolve_pipeline(driver::Config::Verified, o));
}

TEST(SsaPipeline, UnknownPassListsRegisteredSteps) {
  driver::CompileOptions o;
  o.passes = {"ssa-gnv"};  // typo
  try {
    driver::resolve_pipeline(driver::Config::Verified, o);
    FAIL() << "expected CompileError";
  } catch (const CompileError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("registered steps"), std::string::npos) << msg;
    EXPECT_NE(msg.find("ssa-gvn"), std::string::npos) << msg;
  }
}

TEST(SsaPipeline, DefaultPipelineUnchangedWithoutSsa) {
  const driver::CompileOptions off;
  for (driver::Config c : driver::kAllConfigs)
    EXPECT_EQ(driver::resolve_pipeline(c, off), driver::pipeline_names(c));
}

TEST(SsaPipeline, SsaInsertsBracketBeforeRegalloc) {
  driver::CompileOptions o;
  o.ssa = true;
  const auto names = driver::resolve_pipeline(driver::Config::O2Full, o);
  const auto find = [&](const std::string& n) {
    return std::find(names.begin(), names.end(), n);
  };
  ASSERT_NE(find("ssa-build"), names.end());
  ASSERT_NE(find("ssa-out"), names.end());
  EXPECT_LT(find("ssa-build"), find("ssa-out"));
  EXPECT_LT(find("ssa-out"), find("regalloc"));
  // Pattern configurations ignore the flag.
  EXPECT_EQ(driver::resolve_pipeline(driver::Config::O0Pattern, o),
            driver::pipeline_names(driver::Config::O0Pattern));
}

TEST(SsaPipeline, ValidatedCompileBothConfigsBothTargets) {
  for (const std::string& src : {kLoopy, kIntLoop}) {
    const auto program = parse(src);
    for (const char* target : {"ppc", "rv32"}) {
      for (driver::Config config :
           {driver::Config::Verified, driver::Config::O2Full}) {
        driver::CompileOptions base;
        base.ssa = true;
        base.target = target;
        EXPECT_NO_THROW(validate::validated_compile(
            program, config, 6, 21, driver::ValidateLevel::Full, base))
            << driver::to_string(config) << " on " << target;
      }
    }
  }
}

TEST(SsaPipeline, GeneratedNodesValidateWithSsa) {
  const auto nodes = dataflow::generate_suite(901, 4);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    minic::Program program;
    dataflow::generate_node(nodes[i], &program);
    minic::type_check(program);
    driver::CompileOptions base;
    base.ssa = true;
    base.target = (i % 2 == 0) ? "ppc" : "rv32";
    EXPECT_NO_THROW(validate::validated_compile(
        program, (i % 2 == 0) ? driver::Config::Verified
                              : driver::Config::O2Full,
        5, 31 + i, driver::ValidateLevel::Full, base))
        << "node " << i;
  }
}

}  // namespace
}  // namespace vc
