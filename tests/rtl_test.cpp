// RTL IR and analysis tests: lowering structure (both modes), CFG utilities,
// liveness, dominators, unreachable-block cleanup, validation, and the RTL
// executor against the interpreter.
#include <gtest/gtest.h>

#include "minic/interp.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "rtl/analysis.hpp"
#include "rtl/exec.hpp"
#include "rtl/lower.hpp"
#include "support/rng.hpp"

namespace vc {
namespace {

using minic::Value;
using rtl::Opcode;

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

int count_ops(const rtl::Function& fn, Opcode op) {
  int n = 0;
  for (const auto& bb : fn.blocks)
    for (const auto& ins : bb.instrs)
      if (ins.op == op) ++n;
  return n;
}

TEST(RtlLower, PatternModePutsVariablesInSlots) {
  const auto program = parse(R"(
    func f64 f(f64 a, f64 b) {
      local f64 t;
      t = a + b;
      return t * a;
    }
  )");
  const rtl::Function pattern = rtl::lower_function(
      program, program.functions[0], rtl::LowerMode::PatternStack);
  const rtl::Function value = rtl::lower_function(
      program, program.functions[0], rtl::LowerMode::Value);
  // Pattern mode: one slot per variable (a, b, t), plus loads/stores.
  EXPECT_EQ(pattern.slots.size(), 3u);
  EXPECT_GT(count_ops(pattern, Opcode::LoadStack), 0);
  EXPECT_GT(count_ops(pattern, Opcode::StoreStack), 0);
  // Value mode: no slots at all before register allocation.
  EXPECT_EQ(value.slots.size(), 0u);
  EXPECT_EQ(count_ops(value, Opcode::LoadStack), 0);
}

TEST(RtlLower, ForLoopGetsAutomaticBoundAnnotation) {
  const auto program = parse(R"(
    func i32 f() {
      local i32 i; local i32 s;
      s = 0;
      for (i = 0; i < 10; i = i + 1) { s = s + i; }
      return s;
    }
  )");
  for (auto mode : {rtl::LowerMode::PatternStack, rtl::LowerMode::Value}) {
    const rtl::Function fn =
        rtl::lower_function(program, program.functions[0], mode);
    bool found = false;
    for (const auto& bb : fn.blocks)
      for (const auto& ins : bb.instrs)
        if (ins.op == Opcode::Annot && ins.annot_format == "loop <= 10")
          found = true;
    EXPECT_TRUE(found);
  }
}

TEST(RtlLower, ValidationCatchesBrokenFunctions) {
  rtl::Function fn;
  fn.name = "broken";
  EXPECT_THROW(fn.validate(), InternalError);  // no blocks
  fn.blocks.emplace_back();
  EXPECT_THROW(fn.validate(), InternalError);  // empty block
  rtl::Instr ret;
  ret.op = Opcode::Ret;
  fn.blocks[0].instrs.push_back(ret);
  EXPECT_NO_THROW(fn.validate());
  rtl::Instr jmp;
  jmp.op = Opcode::Jump;
  jmp.target = 7;  // out of range
  fn.blocks[0].instrs.insert(fn.blocks[0].instrs.begin(), jmp);
  EXPECT_THROW(fn.validate(), InternalError);  // terminator not last
}

TEST(RtlAnalysis, ReversePostorderAndPredecessors) {
  const auto program = parse(R"(
    func i32 f(i32 n) {
      local i32 s;
      s = 0;
      while (n > 0) {
        s = s + n;
        n = n - 1;
      }
      return s;
    }
  )");
  rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                         rtl::LowerMode::Value);
  rtl::remove_unreachable_blocks(fn);
  const auto rpo = rtl::reverse_postorder(fn);
  EXPECT_EQ(rpo.size(), fn.blocks.size());
  EXPECT_EQ(rpo.front(), 0u);
  const auto preds = rtl::predecessors(fn);
  // The loop head has two predecessors (entry and back edge).
  int two_pred_blocks = 0;
  for (const auto& p : preds)
    if (p.size() == 2) ++two_pred_blocks;
  EXPECT_GE(two_pred_blocks, 1);
  // Dominators: entry dominates everything.
  const auto idom = rtl::immediate_dominators(fn);
  for (rtl::BlockId b = 0; b < fn.blocks.size(); ++b)
    EXPECT_TRUE(rtl::dominates(idom, 0, b));
}

TEST(RtlAnalysis, LivenessOnDiamond) {
  const auto program = parse(R"(
    func f64 f(f64 x, i32 c) {
      local f64 r;
      if (c > 0) { r = x * 2.0; } else { r = x * 3.0; }
      return r + x;
    }
  )");
  rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                         rtl::LowerMode::Value);
  rtl::remove_unreachable_blocks(fn);
  const rtl::Liveness lv = rtl::compute_liveness(fn);
  // x's vreg must be live across the diamond (used in the join block).
  // Find the GetParam of param 0.
  rtl::VReg x_reg = rtl::kNoVReg;
  for (const auto& ins : fn.blocks[0].instrs)
    if (ins.op == Opcode::GetParam && ins.param_index == 0) x_reg = ins.dst;
  ASSERT_NE(x_reg, rtl::kNoVReg);
  int live_blocks = 0;
  for (const auto& in : lv.live_in)
    if (in.test(x_reg)) ++live_blocks;
  EXPECT_GE(live_blocks, 2);
}

TEST(RtlAnalysis, RemoveUnreachableAfterEarlyReturn) {
  const auto program = parse(R"(
    func i32 f(i32 c) {
      if (c > 0) { return 1; }
      return 2;
    }
  )");
  rtl::Function fn = rtl::lower_function(program, program.functions[0],
                                         rtl::LowerMode::Value);
  const std::size_t before = fn.blocks.size();
  rtl::remove_unreachable_blocks(fn);
  EXPECT_LT(fn.blocks.size(), before);
  fn.validate();
  // Semantics preserved.
  rtl::Executor exec(program);
  EXPECT_EQ(exec.call(fn, {Value::of_i32(5)}), Value::of_i32(1));
  EXPECT_EQ(exec.call(fn, {Value::of_i32(-5)}), Value::of_i32(2));
}

TEST(RtlExec, AgreesWithInterpreterOnBothModes) {
  const auto program = parse(R"(
    global f64 acc = 0.0;
    global f64 ring[4] = {1.0, 2.0, 3.0, 4.0};
    func f64 step(f64 x, i32 k) {
      local f64 t;
      local i32 i;
      t = 0.0;
      for (i = 0; i < 4; i = i + 1) {
        t = t + ring[i];
      }
      ring[(k & 3)] = x;
      acc = acc + t;
      if (x > 0.0) { t = t * 2.0; }
      return t - (f64)(k);
    }
  )");
  Rng rng(99);
  for (auto mode : {rtl::LowerMode::PatternStack, rtl::LowerMode::Value}) {
    rtl::Function fn =
        rtl::lower_function(program, program.functions[0], mode);
    rtl::remove_unreachable_blocks(fn);
    minic::Interpreter interp(program);
    rtl::Executor exec(program);
    for (int t = 0; t < 20; ++t) {
      const Value x = Value::of_f64(rng.next_double(-10, 10));
      const Value k = Value::of_i32(static_cast<std::int32_t>(
          rng.next_range(-100, 100)));
      ASSERT_EQ(interp.call("step", {x, k}), exec.call(fn, {x, k}));
      ASSERT_EQ(interp.read_global("acc"), exec.read_global("acc"));
      for (int i = 0; i < 4; ++i)
        ASSERT_EQ(interp.read_global("ring", i), exec.read_global("ring", i));
    }
  }
}

TEST(RtlExec, AnnotationOperandsReadSlotsAndRegs) {
  const auto program = parse(R"(
    func i32 f(i32 a) {
      local i32 b;
      b = a * 2;
      __annot("0 <= %1 <= %2", a, b);
      return b;
    }
  )");
  for (auto mode : {rtl::LowerMode::PatternStack, rtl::LowerMode::Value}) {
    rtl::Function fn =
        rtl::lower_function(program, program.functions[0], mode);
    rtl::remove_unreachable_blocks(fn);
    rtl::Executor exec(program);
    exec.call(fn, {Value::of_i32(21)});
    ASSERT_EQ(exec.annotations().size(), 1u);
    EXPECT_EQ(exec.annotations()[0].values[0], Value::of_i32(21));
    EXPECT_EQ(exec.annotations()[0].values[1], Value::of_i32(42));
  }
}

}  // namespace
}  // namespace vc
