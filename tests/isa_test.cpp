// ISA tests: encode/decode round-trips over the whole instruction space
// (randomized per-format sweeps), field-width enforcement, invalid-word
// rejection, and classification helpers.
#include <gtest/gtest.h>

#include "mach/isa.hpp"
#include "support/rng.hpp"

namespace vc {
namespace {

using mach::MInstr;
using mach::MOp;

MInstr random_instr(Rng& rng) {
  MInstr m;
  m.op = static_cast<MOp>(rng.next_below(static_cast<int>(MOp::Nop) + 1));
  m.rd = static_cast<std::uint8_t>(rng.next_below(32));
  m.ra = static_cast<std::uint8_t>(rng.next_below(32));
  m.rb = static_cast<std::uint8_t>(rng.next_below(32));
  m.rc = static_cast<std::uint8_t>(rng.next_below(32));
  m.sh = static_cast<std::uint8_t>(rng.next_below(32));
  m.mb = static_cast<std::uint8_t>(rng.next_below(32));
  m.me = static_cast<std::uint8_t>(rng.next_below(32));
  m.crf = static_cast<std::uint8_t>(rng.next_below(8));
  m.crbd = static_cast<std::uint8_t>(rng.next_below(32));
  m.crba = static_cast<std::uint8_t>(rng.next_below(32));
  m.crbb = static_cast<std::uint8_t>(rng.next_below(32));
  m.crbit = static_cast<std::uint8_t>(rng.next_below(32));
  m.expect = rng.next_bool();
  // Immediates respecting signedness per opcode.
  if (m.op == MOp::Ori || m.op == MOp::Xori)
    m.imm = static_cast<std::int32_t>(rng.next_below(65536));
  else
    m.imm = static_cast<std::int32_t>(rng.next_range(-32768, 32767));
  if (m.op == MOp::B)
    m.disp = static_cast<std::int32_t>(rng.next_range(-(1 << 25), (1 << 25) - 1));
  else
    m.disp = static_cast<std::int32_t>(rng.next_range(-32768, 32767));
  return m;
}

/// Normalizes fields the encoding does not carry for this opcode, so that
/// round-trip comparison is meaningful.
MInstr normalized(const MInstr& in) {
  const std::uint32_t word = mach::encode(in);
  return mach::decode(word);
}

class IsaRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IsaRoundTrip, EncodeDecodeIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const MInstr m = random_instr(rng);
    const MInstr once = normalized(m);
    // decode(encode(x)) must be a fixed point.
    const MInstr twice = normalized(once);
    EXPECT_TRUE(once == twice) << mach::mnemonic(m.op);
    EXPECT_EQ(mach::encode(once), mach::encode(twice));
    // The carried fields must survive (spot-check the important ones).
    EXPECT_EQ(once.op, m.op);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsaRoundTrip, ::testing::Values(11u, 22u, 33u));

TEST(Isa, SpecificEncodingsSurviveExactly) {
  MInstr li;
  li.op = MOp::Li;
  li.rd = 14;
  li.imm = -1234;
  EXPECT_EQ(mach::decode(mach::encode(li)).imm, -1234);

  MInstr rl;
  rl.op = MOp::Rlwinm;
  rl.rd = 15;
  rl.ra = 16;
  rl.sh = 3;
  rl.mb = 31;
  rl.me = 31;
  const MInstr rl2 = mach::decode(mach::encode(rl));
  EXPECT_EQ(rl2.sh, 3);
  EXPECT_EQ(rl2.mb, 31);
  EXPECT_EQ(rl2.me, 31);

  MInstr bc;
  bc.op = MOp::Bc;
  bc.crbit = 6;
  bc.expect = true;
  bc.disp = -12;
  const MInstr bc2 = mach::decode(mach::encode(bc));
  EXPECT_EQ(bc2.crbit, 6);
  EXPECT_TRUE(bc2.expect);
  EXPECT_EQ(bc2.disp, -12);

  MInstr b;
  b.op = MOp::B;
  b.disp = -(1 << 20);
  EXPECT_EQ(mach::decode(mach::encode(b)).disp, -(1 << 20));
}

TEST(Isa, FieldOverflowIsRejected) {
  MInstr li;
  li.op = MOp::Li;
  li.rd = 1;
  li.imm = 40000;  // does not fit simm16
  EXPECT_THROW(mach::encode(li), InternalError);

  MInstr ori;
  ori.op = MOp::Ori;
  ori.imm = -1;  // uimm16 must be non-negative
  EXPECT_THROW(mach::encode(ori), InternalError);

  MInstr b;
  b.op = MOp::B;
  b.disp = 1 << 26;
  EXPECT_THROW(mach::encode(b), InternalError);
}

TEST(Isa, InvalidOpcodeRejectedOnDecode) {
  EXPECT_THROW(mach::decode(0xFFFFFFFFu), CompileError);
}

TEST(Isa, Classification) {
  EXPECT_TRUE(mach::is_memory_op(MOp::Lwz));
  EXPECT_TRUE(mach::is_memory_op(MOp::Stfdx));
  EXPECT_FALSE(mach::is_memory_op(MOp::Add));
  EXPECT_TRUE(mach::is_branch(MOp::B));
  EXPECT_TRUE(mach::is_branch(MOp::Bc));
  EXPECT_TRUE(mach::is_branch(MOp::Blr));
  EXPECT_FALSE(mach::is_branch(MOp::Cmpw));
}

TEST(Isa, FormattingSmoke) {
  MInstr lfd;
  lfd.op = MOp::Lfd;
  lfd.rd = 13;
  lfd.ra = 1;
  lfd.imm = 24;
  EXPECT_EQ(mach::format_instr(lfd, 0x1000), "lfd f13, 24(r1)");
  MInstr fadd;
  fadd.op = MOp::Fadd;
  fadd.rd = 5;
  fadd.ra = 4;
  fadd.rb = 3;
  EXPECT_EQ(mach::format_instr(fadd, 0x1000), "fadd f5, f4, f3");
  MInstr b;
  b.op = MOp::B;
  b.disp = 4;
  EXPECT_EQ(mach::format_instr(b, 0x1000), "b 0x00001010");
}

}  // namespace
}  // namespace vc
