// Pass-framework tests: configuration-name round-tripping, pipeline
// resolution (--passes / --disable-pass), per-pass telemetry, dump-after,
// the machine fixpoint bound, and thread-count invariance of the hook
// sequence (the fleet's determinism contract extended to per-pass events).
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>
#include <string>
#include <vector>

#include "driver/compiler.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "pass/pass.hpp"
#include "support/diagnostics.hpp"
#include "support/threadpool.hpp"

namespace vc {
namespace {

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

const char* kCseSource = R"(
  func f64 chain(f64 a, f64 b, f64 c) {
    local f64 t1; local f64 t2;
    t1 = a * 2.0 + b;
    t2 = a * 2.0 + c;
    return t1 + t2 + (1.5 + 2.5) * t1;
  }
)";

TEST(ConfigNames, RoundTripOverAllConfigs) {
  // kConfigNames is the single source of truth: both spellings of every
  // configuration must parse back to it, and to_string must render the full
  // spelling listed in the table.
  for (const driver::ConfigName& entry : driver::kConfigNames) {
    EXPECT_EQ(driver::to_string(entry.config), entry.full);
    const auto from_cli = driver::parse_config(entry.cli);
    ASSERT_TRUE(from_cli.has_value()) << entry.cli;
    EXPECT_EQ(*from_cli, entry.config);
    const auto from_full = driver::parse_config(entry.full);
    ASSERT_TRUE(from_full.has_value()) << entry.full;
    EXPECT_EQ(*from_full, entry.config);
    // The round trip the reports rely on.
    EXPECT_EQ(*driver::parse_config(driver::to_string(entry.config)),
              entry.config);
  }
  // Every configuration appears in the table exactly once.
  std::size_t covered = 0;
  for (driver::Config c : driver::kAllConfigs)
    for (const driver::ConfigName& entry : driver::kConfigNames)
      if (entry.config == c) ++covered;
  EXPECT_EQ(covered, std::size(driver::kAllConfigs));
  EXPECT_FALSE(driver::parse_config("O3").has_value());
  EXPECT_FALSE(driver::parse_config("").has_value());
}

TEST(ConfigNames, ValidateLevelToString) {
  EXPECT_EQ(driver::to_string(driver::ValidateLevel::Off), "off");
  EXPECT_EQ(driver::to_string(driver::ValidateLevel::Rtl), "rtl");
  EXPECT_EQ(driver::to_string(driver::ValidateLevel::Full), "full");
}

TEST(PassPipeline, NoHardWiredSequencePerConfig) {
  // Every configuration's pipeline resolves against the builtin registry and
  // contains the structural skeleton in order.
  const pass::Registry registry = pass::Registry::builtin();
  for (driver::Config c : driver::kAllConfigs) {
    const std::vector<std::string> names = driver::pipeline_names(c);
    std::size_t lower_at = names.size(), regalloc_at = 0, emit_at = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
      ASSERT_NE(registry.find(names[i]), nullptr) << names[i];
      if (names[i] == "lower") lower_at = i;
      if (names[i] == "regalloc") regalloc_at = i;
      if (names[i] == "emit") emit_at = i;
    }
    EXPECT_EQ(lower_at, 0u);
    EXPECT_LT(regalloc_at, emit_at);
  }
  // O2-full strictly extends verified with the machine optimizers.
  const auto o2 = driver::pipeline_names(driver::Config::O2Full);
  EXPECT_NE(std::find(o2.begin(), o2.end(), "peephole"), o2.end());
  EXPECT_NE(std::find(o2.begin(), o2.end(), "schedule"), o2.end());
  const auto verified = driver::pipeline_names(driver::Config::Verified);
  EXPECT_EQ(std::find(verified.begin(), verified.end(), "peephole"),
            verified.end());
}

TEST(PassPipeline, DisableAndSelectResolve) {
  driver::CompileOptions disable;
  disable.disable_passes = {"cse"};
  const auto without_cse =
      driver::resolve_pipeline(driver::Config::Verified, disable);
  EXPECT_EQ(std::find(without_cse.begin(), without_cse.end(), "cse"),
            without_cse.end());
  EXPECT_NE(std::find(without_cse.begin(), without_cse.end(), "constprop"),
            without_cse.end());

  driver::CompileOptions select;
  select.passes = {"cse"};
  const auto only_cse =
      driver::resolve_pipeline(driver::Config::Verified, select);
  EXPECT_NE(std::find(only_cse.begin(), only_cse.end(), "cse"),
            only_cse.end());
  EXPECT_EQ(std::find(only_cse.begin(), only_cse.end(), "constprop"),
            only_cse.end());
  // The skeleton survives selection.
  EXPECT_NE(std::find(only_cse.begin(), only_cse.end(), "regalloc"),
            only_cse.end());

  driver::CompileOptions bad_disable;
  bad_disable.disable_passes = {"regalloc"};  // structural: not ablatable
  EXPECT_THROW(driver::resolve_pipeline(driver::Config::Verified, bad_disable),
               CompileError);
  driver::CompileOptions unknown;
  unknown.disable_passes = {"no-such-pass"};
  EXPECT_THROW(driver::resolve_pipeline(driver::Config::Verified, unknown),
               CompileError);
  driver::CompileOptions select_structural;
  select_structural.passes = {"emit"};
  EXPECT_THROW(
      driver::resolve_pipeline(driver::Config::Verified, select_structural),
      CompileError);
}

TEST(PassPipeline, DisabledPassNeverFires) {
  const minic::Program program = parse(kCseSource);
  driver::CompileOptions copts;
  copts.disable_passes = {"cse"};
  std::vector<std::string> fired;
  copts.hook = [&fired](const pass::StepTrace& t) {
    fired.push_back(t.pass);
    return 0;
  };
  driver::compile_program(program, driver::Config::Verified, copts);
  EXPECT_EQ(std::find(fired.begin(), fired.end(), "cse"), fired.end());
  EXPECT_NE(std::find(fired.begin(), fired.end(), "regalloc"), fired.end());
}

TEST(PassTelemetry, StatsCountRunsAndDeltas) {
  const minic::Program program = parse(kCseSource);
  pass::PipelineStats stats;
  driver::CompileOptions copts;
  copts.stats = &stats;
  driver::compile_program(program, driver::Config::O2Full, copts);
  ASSERT_FALSE(stats.passes.empty());
  // Structural steps ran exactly once per function.
  const pass::PassStat* lower = stats.find("lower");
  ASSERT_NE(lower, nullptr);
  EXPECT_EQ(lower->runs, 1u);
  EXPECT_GT(lower->ir_delta, 0);  // lowering creates the instructions
  const pass::PassStat* cse = stats.find("cse");
  ASSERT_NE(cse, nullptr);
  EXPECT_GE(cse->runs, 1u);
  EXPECT_GE(cse->rewrites, 1);  // the kernel has a textbook CSE target
  EXPECT_GE(stats.total_seconds(), 0.0);

  // Aggregation is per-name addition, as the fleet runner uses it.
  pass::PipelineStats sum;
  sum += stats;
  sum += stats;
  EXPECT_EQ(sum.find("lower")->runs, 2u);
}

TEST(PassTelemetry, DumpAfterFiresOnApply) {
  const minic::Program program = parse(kCseSource);
  driver::CompileOptions copts;
  copts.dump_after = "cse";
  int dumps = 0;
  copts.dump = [&dumps](const std::string& pass,
                        const pass::FunctionState& state) {
    EXPECT_EQ(pass, "cse");
    EXPECT_FALSE(state.rtl.blocks.empty());
    ++dumps;
  };
  driver::compile_program(program, driver::Config::Verified, copts);
  EXPECT_GE(dumps, 1);
}

TEST(PassManager, MachineFixpointCapIsAnInternalError) {
  // An oscillating machine rewrite (always reports one more rewrite) must be
  // caught by the bounded fixpoint, naming the function — a diverging rewrite
  // system is a compiler bug, not an input to loop on forever.
  const minic::Program program = parse("func i32 f() { return 1; }");
  pass::Registry registry = pass::Registry::builtin();
  pass::StepDef osc;
  osc.name = "osc";
  osc.level = pass::Level::Machine;
  osc.fixpoint = true;
  osc.run = [](pass::FunctionState&) { return 1; };
  registry.add(std::move(osc));

  pass::FunctionState state;
  state.program = &program;
  state.source = &program.functions[0];
  state.emitted = true;

  pass::ManagerOptions mopts;
  mopts.machine_fixpoint_cap = 8;
  const pass::PassManager manager(registry, {"osc"}, std::move(mopts));
  try {
    manager.run(state);
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("osc"), std::string::npos) << what;
    EXPECT_NE(what.find("f"), std::string::npos) << what;
    EXPECT_NE(what.find("8"), std::string::npos) << what;
  }
}

TEST(PassManager, ConvergentFixpointStaysUnderTheCap) {
  // A rewrite that runs dry after three iterations converges normally and
  // reports the summed rewrite count.
  const minic::Program program = parse("func i32 f() { return 1; }");
  pass::Registry registry = pass::Registry::builtin();
  int budget = 3;
  pass::StepDef shrink;
  shrink.name = "shrink";
  shrink.level = pass::Level::Machine;
  shrink.fixpoint = true;
  shrink.run = [&budget](pass::FunctionState&) {
    return budget > 0 ? (--budget, 1) : 0;
  };
  registry.add(std::move(shrink));

  pass::FunctionState state;
  state.program = &program;
  state.source = &program.functions[0];
  state.emitted = true;

  pass::PipelineStats stats;
  pass::ManagerOptions mopts;
  mopts.machine_fixpoint_cap = 8;
  mopts.stats = &stats;
  const pass::PassManager manager(registry, {"shrink"}, std::move(mopts));
  EXPECT_NO_THROW(manager.run(state));
  EXPECT_EQ(budget, 0);
  ASSERT_NE(stats.find("shrink"), nullptr);
  EXPECT_EQ(stats.find("shrink")->rewrites, 3);
}

TEST(PassManager, UnknownPipelineNameThrows) {
  EXPECT_THROW(pass::PassManager(pass::Registry::builtin(), {"nope"}),
               CompileError);
}

TEST(PassHooks, SequenceIsThreadCountInvariant) {
  // The per-program hook sequence (pass firing order) must be identical
  // whether compiles run serially or on eight workers: hooks observe only
  // their own job's state, never scheduling order.
  std::vector<minic::Program> programs;
  for (int i = 0; i < 12; ++i) {
    std::string src = "global f64 s" + std::to_string(i) +
                      " = 0.5;\n"
                      "func f64 job" +
                      std::to_string(i) + "(f64 x, f64 y) {\n  local f64 a;\n";
    for (int k = 0; k <= i % 4; ++k)
      src += "  a = x * " + std::to_string(k + 2) + ".0 + y;\n  s" +
             std::to_string(i) + " = s" + std::to_string(i) + " + a;\n";
    src += "  return a + x * 2.0 + (x * 2.0);\n}\n";
    programs.push_back(parse(src));
  }

  const auto sequences_at = [&](std::size_t jobs) {
    std::vector<std::vector<std::string>> seqs(programs.size());
    parallel_for(programs.size(), jobs, [&](std::size_t i) {
      driver::CompileOptions copts;
      copts.hook = [&seqs, i](const pass::StepTrace& t) {
        seqs[i].push_back(t.pass);
        return 0;
      };
      driver::compile_program(programs[i], driver::Config::O2Full, copts);
    });
    return seqs;
  };

  const auto serial = sequences_at(1);
  const auto parallel8 = sequences_at(8);
  ASSERT_EQ(serial.size(), parallel8.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_FALSE(serial[i].empty()) << i;
    EXPECT_EQ(serial[i], parallel8[i]) << "hook sequence diverged for job "
                                       << i;
  }
}

}  // namespace
}  // namespace vc
