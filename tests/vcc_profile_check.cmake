# Binary-level checks for the vcc --profile flag, driven by ctest:
#   cmake -DVCC=<path to vcc> -DSRC=<path to a .mc program> -P this-file
#
# 1. `--profile=x` must exit 2: --profile is a bare boolean, and the strict
#    CLI policy diagnoses a valued spelling instead of silently ignoring it.
# 2. A profiled run must exit 0 and actually print the phase table — the
#    flag silently doing nothing would be the worst failure mode.

execute_process(
  COMMAND ${VCC} --profile=x ${SRC}
  RESULT_VARIABLE bad_exit
  OUTPUT_VARIABLE bad_out
  ERROR_VARIABLE bad_err)
if(NOT bad_exit EQUAL 2)
  message(FATAL_ERROR
      "vcc --profile=x: expected exit 2 (strict CLI), got ${bad_exit}")
endif()

execute_process(
  COMMAND ${VCC} --profile --config=verified --wcet=lowpass
          --run=lowpass:1.5 ${SRC}
  RESULT_VARIABLE good_exit
  OUTPUT_VARIABLE good_out
  ERROR_VARIABLE good_err)
if(NOT good_exit EQUAL 0)
  message(FATAL_ERROR
      "vcc --profile run failed (exit ${good_exit}): ${good_err}")
endif()
foreach(needle "== profile ==" "compile" "wcet" "exec" "(total)")
  string(FIND "${good_out}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR
        "vcc --profile output is missing '${needle}':\n${good_out}")
  endif()
endforeach()

# Repeating the bare flag is a tolerated (agreeing) repeat, not a conflict.
execute_process(
  COMMAND ${VCC} --profile --profile --config=verified ${SRC}
  RESULT_VARIABLE repeat_exit
  OUTPUT_VARIABLE repeat_out
  ERROR_VARIABLE repeat_err)
if(NOT repeat_exit EQUAL 0)
  message(FATAL_ERROR
      "repeated --profile should be tolerated, got exit ${repeat_exit}: "
      "${repeat_err}")
endif()
