// Miscellaneous invariants: build determinism, string helpers, WCET report
// formatting, driver artifact bookkeeping, and image well-formedness.
#include <gtest/gtest.h>

#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "driver/compiler.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "support/bitset.hpp"
#include "support/strings.hpp"
#include "wcet/report.hpp"
#include "wcet/wcet.hpp"

namespace vc {
namespace {

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

TEST(Strings, Helpers) {
  EXPECT_EQ(hex32(0x1234), "0x00001234");
  EXPECT_EQ(hex32(0xFFFFFFFF), "0xffffffff");
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_TRUE(starts_with("--config=O2", "--config="));
  EXPECT_FALSE(starts_with("-c", "--"));
  // format_double round-trips exactly.
  for (double v : {0.1, 1.0 / 3.0, -0.0, 1e-300, 12345.678}) {
    EXPECT_EQ(std::stod(format_double(v)), v);
  }
}

TEST(Bitset, DenseBitsetOperations) {
  DenseBitset a(130);
  EXPECT_TRUE(a.none());
  a.set(0);
  a.set(63);
  a.set(64);
  a.set(129);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_TRUE(a.test(63) && a.test(64));
  EXPECT_FALSE(a.test(1));
  a.reset(63);
  EXPECT_EQ(a.count(), 3u);

  DenseBitset b(130);
  b.set(0);
  b.set(100);
  EXPECT_TRUE(a.union_with(b));       // adds bit 100
  EXPECT_FALSE(a.union_with(b));      // already a superset: no change
  EXPECT_EQ(a.count(), 4u);
  DenseBitset c = a;
  EXPECT_TRUE(c.intersect_with(b));   // drops 64 and 129
  EXPECT_EQ(c.count(), 2u);
  a.subtract(b);
  EXPECT_FALSE(a.test(0));
  EXPECT_TRUE(a.test(64));

  std::vector<std::size_t> seen;
  c.for_each([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 100}));
  c.clear();
  EXPECT_TRUE(c.none());
  EXPECT_TRUE(c == DenseBitset(130));
}

TEST(Determinism, CompilingTwiceYieldsIdenticalImages) {
  const auto nodes = dataflow::generate_suite(4242, 3);
  for (const auto& node : nodes) {
    minic::Program program;
    dataflow::generate_node(node, &program);
    minic::type_check(program);
    for (driver::Config config : driver::kAllConfigs) {
      const auto a = driver::compile_program(program, config);
      const auto b = driver::compile_program(program, config);
      ASSERT_EQ(a.image.words, b.image.words)
          << node.name() << " under " << driver::to_string(config);
      ASSERT_EQ(a.image.data_init, b.image.data_init);
      ASSERT_EQ(a.image.annotations.size(), b.image.annotations.size());
    }
  }
}

TEST(Determinism, WcetIsDeterministic) {
  const auto program = parse(R"(
    global f64 s = 0.0;
    func f64 f(f64 x) {
      local i32 i;
      for (i = 0; i < 7; i = i + 1) { s = s + x; }
      return s;
    }
  )");
  const auto compiled = driver::compile_program(program, driver::Config::O2Full);
  const auto r1 = wcet::analyze_wcet(compiled.image, "f");
  const auto r2 = wcet::analyze_wcet(compiled.image, "f");
  EXPECT_EQ(r1.wcet_cycles, r2.wcet_cycles);
  EXPECT_EQ(r1.block_costs, r2.block_costs);
}

TEST(Report, ContainsTheEssentials) {
  const auto program = parse(R"(
    func i32 f() {
      local i32 i; local i32 s;
      s = 0;
      for (i = 0; i < 4; i = i + 1) { s = s + i; }
      return s;
    }
  )");
  const auto compiled =
      driver::compile_program(program, driver::Config::Verified);
  const auto result = wcet::analyze_wcet(compiled.image, "f");
  const std::string report = wcet::format_report(compiled.image, "f", result);
  EXPECT_NE(report.find("WCET report for 'f'"), std::string::npos);
  EXPECT_NE(report.find("bound: " + std::to_string(result.wcet_cycles)),
            std::string::npos);
  EXPECT_NE(report.find("bound 4"), std::string::npos);  // the loop bound
  EXPECT_NE(report.find("blocks"), std::string::npos);
}

TEST(Driver, ArtifactsRecordThePipeline) {
  const auto program = parse(R"(
    func f64 f(f64 x) {
      local f64 a; local f64 b;
      a = x * 2.0;
      b = x * 2.0;   // CSE food
      return a + b + (1.0 + 2.0);
    }
  )");
  const auto verified =
      driver::compile_program(program, driver::Config::Verified);
  const auto& art = verified.artifacts.at("f");
  EXPECT_FALSE(art.passes_applied.empty());
  EXPECT_LE(art.rtl_optimized.instruction_count(),
            art.rtl_lowered.instruction_count());
  EXPECT_EQ(art.spill_count, 0);

  const auto o0 = driver::compile_program(program, driver::Config::O0Pattern);
  EXPECT_TRUE(o0.artifacts.at("f").passes_applied.empty());
}

TEST(Image, CodeAndDataAreWellFormed) {
  const auto nodes = dataflow::generate_suite(99, 2);
  for (const auto& node : nodes) {
    minic::Program program;
    dataflow::generate_node(node, &program);
    minic::type_check(program);
    const auto compiled =
        driver::compile_program(program, driver::Config::O2Full);
    const mach::Image& image = compiled.image;
    // Every word decodes; every branch lands inside the function it is in.
    for (std::size_t i = 0; i < image.words.size(); ++i) {
      const std::uint32_t addr =
          mach::Image::kCodeBase + static_cast<std::uint32_t>(i) * 4;
      ASSERT_NO_THROW({
        const mach::MInstr ins = mach::decode(image.words[i]);
        if (ins.op == mach::MOp::B || ins.op == mach::MOp::Bc) {
          const std::uint32_t target =
              addr + static_cast<std::uint32_t>(ins.disp) * 4;
          ASSERT_GE(target, mach::Image::kCodeBase);
          ASSERT_LT(target, mach::Image::kCodeBase + image.code_size_bytes());
        }
      });
    }
    // Annotation addresses point into the code segment.
    for (const auto& a : image.annotations) {
      EXPECT_GE(a.addr, mach::Image::kCodeBase);
      EXPECT_LT(a.addr, mach::Image::kCodeBase + image.code_size_bytes());
    }
    // The data segment fits the 16-bit displacement window.
    EXPECT_LE(image.data_init.size(), 32767u);
  }
}

}  // namespace
}  // namespace vc
