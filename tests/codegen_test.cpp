// Backend tests: emission structure, addressing modes (small-data vs
// absolute), peephole rewrites (semantic preservation + actual firing), the
// list scheduler (dependence preservation), linking, and disassembly.
#include <gtest/gtest.h>

#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "minic/interp.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace vc {
namespace {

using minic::Value;
using mach::MOp;

minic::Program parse(const std::string& src) {
  minic::Program p = minic::parse_program(src);
  minic::type_check(p);
  return p;
}

int count_pop(const mach::Image& image, MOp op) {
  int n = 0;
  for (std::uint32_t w : image.words)
    if (mach::decode(w).op == op) ++n;
  return n;
}

TEST(Codegen, SmallDataVsAbsoluteAddressing) {
  const auto program = parse(R"(
    global f64 g = 1.5;
    func f64 f(f64 x) { g = g + x; return g; }
  )");
  const auto sda = driver::compile_program(program, driver::Config::O2Full);
  const auto abs = driver::compile_program(program, driver::Config::Verified);
  // The verified configuration pays lis (@ha) instructions; SDA does not.
  EXPECT_EQ(count_pop(sda.image, MOp::Lis), 0);
  EXPECT_GT(count_pop(abs.image, MOp::Lis), 0);
  EXPECT_LT(sda.image.code_size_bytes(), abs.image.code_size_bytes());
  // Both compute the same result.
  machine::Machine m1(sda.image);
  machine::Machine m2(abs.image);
  const Value r1 = m1.call("f", {Value::of_f64(2.25)}, minic::Type::F64);
  const Value r2 = m2.call("f", {Value::of_f64(2.25)}, minic::Type::F64);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, Value::of_f64(3.75));
}

TEST(Codegen, PeepholeFusesMultiplyAdd) {
  const auto program = parse(R"(
    func f64 mac(f64 a, f64 b, f64 c) {
      return a * b + c;
    }
  )");
  const auto o2 = driver::compile_program(program, driver::Config::O2Full);
  const auto verified =
      driver::compile_program(program, driver::Config::Verified);
  EXPECT_GE(count_pop(o2.image, MOp::Fmadd), 1);
  EXPECT_EQ(count_pop(verified.image, MOp::Fmadd), 0);
  // Fusion preserves the (unfused, double-rounded) result.
  machine::Machine m1(o2.image);
  machine::Machine m2(verified.image);
  Rng rng(4);
  for (int t = 0; t < 20; ++t) {
    const std::vector<Value> args{Value::of_f64(rng.next_double(-1e3, 1e3)),
                                  Value::of_f64(rng.next_double(-1e3, 1e3)),
                                  Value::of_f64(rng.next_double(-1e3, 1e3))};
    ASSERT_EQ(m1.call("mac", args, minic::Type::F64),
              m2.call("mac", args, minic::Type::F64));
  }
}

TEST(Codegen, PeepholeFoldsImmediates) {
  const auto program = parse(R"(
    func i32 f(i32 x) {
      local i32 i; local i32 s;
      s = 0;
      for (i = 0; i < 9; i = i + 1) { s = s + x; }
      return s;
    }
  )");
  const auto o2 = driver::compile_program(program, driver::Config::O2Full);
  // The loop increment should fold into addi under O2.
  EXPECT_GE(count_pop(o2.image, MOp::Addi), 1);
  machine::Machine m(o2.image);
  EXPECT_EQ(m.call("f", {Value::of_i32(3)}, minic::Type::I32),
            Value::of_i32(27));
}

TEST(Codegen, SchedulerPreservesSemantics) {
  // Two interleavable chains; O2's scheduler reorders within blocks.
  const auto program = parse(R"(
    global f64 out1 = 0.0;
    global f64 out2 = 0.0;
    func void twochains(f64 a, f64 b) {
      local f64 x; local f64 y;
      x = a * a;
      x = x * a;
      x = x * a;
      y = b + b;
      y = y + b;
      y = y + b;
      out1 = x;
      out2 = y;
    }
  )");
  const auto o2 = driver::compile_program(program, driver::Config::O2Full);
  machine::Machine m(o2.image);
  minic::Interpreter interp(program);
  Rng rng(8);
  for (int t = 0; t < 10; ++t) {
    const std::vector<Value> args{Value::of_f64(rng.next_double(-4, 4)),
                                  Value::of_f64(rng.next_double(-4, 4))};
    interp.call("twochains", args);
    m.call("twochains", args, minic::Type::I32);
    ASSERT_EQ(interp.read_global("out1"),
              m.read_global("out1", 0, minic::Type::F64));
    ASSERT_EQ(interp.read_global("out2"),
              m.read_global("out2", 0, minic::Type::F64));
  }
}

TEST(Codegen, ConstantPoolIsDeduplicated) {
  const auto program = parse(R"(
    func f64 f(f64 x) {
      return (x * 2.5) + (x / 2.5) - 2.5;
    }
  )");
  const auto compiled =
      driver::compile_program(program, driver::Config::Verified);
  // 2.5 appears three times in the source but once in the pool; the data
  // segment holds exactly one 8-byte constant (no globals declared).
  EXPECT_EQ(compiled.image.data_init.size(), 8u);
}

TEST(Linker, FunctionLayoutAndSymbols) {
  const auto program = parse(R"(
    global f64 a = 1.0;
    global i32 b[3] = {1, 2, 3};
    func f64 one() { return a; }
    func i32 two() { return b[1]; }
  )");
  const auto compiled =
      driver::compile_program(program, driver::Config::O2Full);
  const mach::Image& image = compiled.image;
  EXPECT_EQ(image.fn_entry.at("one"), mach::Image::kCodeBase);
  EXPECT_EQ(image.fn_entry.at("two"), image.fn_end.at("one"));
  EXPECT_EQ(image.global_addr.at("a"), mach::Image::kDataBase);
  EXPECT_EQ(image.global_addr.at("b"), mach::Image::kDataBase + 8);
  // Initializers are big-endian in the data image.
  EXPECT_EQ(image.data_init[8 + 3], 1);   // b[0] low byte
  EXPECT_EQ(image.data_init[12 + 3], 2);  // b[1]
  machine::Machine m(image);
  EXPECT_EQ(m.call("two", {}, minic::Type::I32), Value::of_i32(2));
}

TEST(Disassembly, ListsFunctionsAndAnnotations) {
  const auto program = parse(R"(
    func i32 f(i32 x) {
      __annot("0 <= %1 <= 7", x);
      return x + 1;
    }
  )");
  const auto compiled =
      driver::compile_program(program, driver::Config::Verified);
  const std::string listing = compiled.image.disassemble();
  EXPECT_NE(listing.find("f:"), std::string::npos);
  EXPECT_NE(listing.find("# annotation: 0 <= %1 <= 7"), std::string::npos);
  EXPECT_NE(listing.find("blr"), std::string::npos);
}

TEST(Codegen, EveryBlockEndsInABranch) {
  // The timing-composability invariant: no fall-through into a leader.
  const auto nodes_program = parse(R"(
    func f64 f(f64 x, i32 m) {
      local f64 r;
      local i32 i;
      r = 0.0;
      for (i = 0; i < 5; i = i + 1) {
        if (m > i) { r = r + x; } else { r = r - x; }
      }
      return r;
    }
  )");
  for (driver::Config config : driver::kAllConfigs) {
    const auto compiled = driver::compile_program(nodes_program, config);
    // Decode and verify: an instruction followed by a branch target must be
    // a branch itself. Collect branch targets first.
    std::vector<mach::MInstr> instrs;
    for (std::uint32_t w : compiled.image.words)
      instrs.push_back(mach::decode(w));
    std::set<std::size_t> leaders;
    for (std::size_t i = 0; i < instrs.size(); ++i) {
      if (instrs[i].op == MOp::B || instrs[i].op == MOp::Bc)
        leaders.insert(i + static_cast<std::size_t>(instrs[i].disp));
    }
    for (std::size_t leader : leaders) {
      if (leader == 0) continue;
      const MOp prev = instrs[leader - 1].op;
      EXPECT_TRUE(prev == MOp::B || prev == MOp::Bc || prev == MOp::Blr)
          << "fall-through into leader at index " << leader << " under "
          << driver::to_string(config);
    }
  }
}

}  // namespace
}  // namespace vc
