// Unit tests for the artifact subsystem: the FNV-1a/128 hasher, the JSON
// reader/writer, image serialization, and the content-addressed store
// itself — publication, integrity-checked lookup, corruption fallback,
// persistence across store instances, and LRU budget eviction. Fleet-level
// caching behavior lives in fleet_cache_test.cpp.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "artifact/image_io.hpp"
#include "artifact/store.hpp"
#include "driver/compiler.hpp"
#include "minic/parser.hpp"
#include "minic/typecheck.hpp"
#include "support/hash.hpp"
#include "support/json.hpp"

namespace vc {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- Hash128

TEST(HashTest, EmptyInputIsTheOffsetBasis) {
  // FNV-1a with zero bytes folds nothing: the digest is the 128-bit offset
  // basis (fnv.org reference parameters).
  EXPECT_EQ(fnv128("").hex(), "6c62272e07bb014262b821756295c58d");
}

TEST(HashTest, HexIs32LowercaseChars) {
  const std::string hex = fnv128("hello").hex();
  ASSERT_EQ(hex.size(), 32u);
  for (const char c : hex)
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
}

TEST(HashTest, StreamingMatchesOneShot) {
  Fnv128 h;
  h.update("hel");
  h.update("");
  h.update("lo world");
  EXPECT_EQ(h.digest(), fnv128("hello world"));
}

TEST(HashTest, DistinctInputsDistinctDigests) {
  EXPECT_NE(fnv128("a"), fnv128("b"));
  EXPECT_NE(fnv128("a"), fnv128(""));
  EXPECT_NE(fnv128("ab"), fnv128("ba"));
}

TEST(HashTest, SizedFramingPreventsConcatenationCollisions) {
  Fnv128 a;
  a.update_sized("ab");
  a.update_sized("c");
  Fnv128 b;
  b.update_sized("a");
  b.update_sized("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HashTest, MakeKeyDependsOnEveryField) {
  using artifact::ArtifactStore;
  const Hash128 base =
      ArtifactStore::make_key("src", "f", "O2", "ppc", true, "v1");
  EXPECT_EQ(base, ArtifactStore::make_key("src", "f", "O2", "ppc", true, "v1"));
  EXPECT_NE(base,
            ArtifactStore::make_key("src2", "f", "O2", "ppc", true, "v1"));
  EXPECT_NE(base, ArtifactStore::make_key("src", "g", "O2", "ppc", true, "v1"));
  EXPECT_NE(base, ArtifactStore::make_key("src", "f", "O0", "ppc", true, "v1"));
  EXPECT_NE(base,
            ArtifactStore::make_key("src", "f", "O2", "rv32", true, "v1"));
  EXPECT_NE(base,
            ArtifactStore::make_key("src", "f", "O2", "ppc", false, "v1"));
  EXPECT_NE(base, ArtifactStore::make_key("src", "f", "O2", "ppc", true, "v2"));
}

// ------------------------------------------------------------------- JSON

TEST(JsonTest, U64AndI64RoundTripExactly) {
  json::Value doc;
  doc["max_u64"] = json::Value(UINT64_MAX);
  doc["min_i64"] = json::Value(INT64_MIN);
  doc["cycles"] = json::Value(static_cast<std::uint64_t>(1) << 63);
  const json::Parsed back = json::parse(doc.dump());
  ASSERT_TRUE(back.ok()) << back.error;
  EXPECT_EQ(back.value.at("max_u64").as_u64(), UINT64_MAX);
  EXPECT_EQ(back.value.at("min_i64").as_i64(), INT64_MIN);
  EXPECT_EQ(back.value.at("cycles").as_u64(), static_cast<std::uint64_t>(1)
                                                  << 63);
}

TEST(JsonTest, NestedDocumentRoundTrips) {
  json::Value doc;
  doc["name"] = json::Value("node_042");
  doc["ok"] = json::Value(true);
  doc["ratio"] = json::Value(1.625);  // exactly representable
  doc["list"] = json::Value(json::Array{json::Value(1), json::Value("two"),
                                        json::Value(nullptr)});
  const json::Parsed back = json::parse(doc.dump(2));
  ASSERT_TRUE(back.ok()) << back.error;
  EXPECT_EQ(back.value.at("name").as_string(), "node_042");
  EXPECT_TRUE(back.value.at("ok").as_bool());
  EXPECT_DOUBLE_EQ(back.value.at("ratio").as_double(), 1.625);
  ASSERT_EQ(back.value.at("list").as_array().size(), 3u);
  EXPECT_EQ(back.value.at("list").as_array()[0].as_i64(), 1);
  EXPECT_EQ(back.value.at("list").as_array()[1].as_string(), "two");
  EXPECT_TRUE(back.value.at("list").as_array()[2].is_null());
}

TEST(JsonTest, StringEscapesRoundTrip) {
  const std::string nasty = "quote\" backslash\\ newline\n tab\t bell\x07";
  json::Value doc;
  doc["s"] = json::Value(nasty);
  const json::Parsed back = json::parse(doc.dump());
  ASSERT_TRUE(back.ok()) << back.error;
  EXPECT_EQ(back.value.at("s").as_string(), nasty);
}

TEST(JsonTest, StrictParserRejectsGarbage) {
  EXPECT_FALSE(json::parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(json::parse("{\"a\": ").ok());
  EXPECT_FALSE(json::parse("[1, 2,]").ok());
  EXPECT_FALSE(json::parse("\x00\xFF\x12 not json").ok());
  EXPECT_FALSE(json::parse("").ok());
}

TEST(JsonTest, AccessorsFallBackInsteadOfThrowing) {
  const json::Parsed doc = json::parse("{\"n\": 7}");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(doc.value.at("missing").is_null());
  EXPECT_EQ(doc.value.at("missing").as_u64(42), 42u);
  EXPECT_EQ(doc.value.at("n").at("deeper").as_string("dflt"), "dflt");
  EXPECT_TRUE(doc.value.at("n").as_array().empty());
  EXPECT_TRUE(doc.value.at("n").as_object().empty());
}

// --------------------------------------------------------------- image_io

/// A program with globals, two functions, a bounded loop, and annotations —
/// every Image table is populated.
const char kSource[] = R"(
global f64 gains[4] = {1.0, 0.5, 0.25, 0.125};
global i32 count = 0;

func f64 scale(f64 x, i32 n) {
  local f64 a;
  local i32 i;
  __annot("0 <= %1 <= 3", n);
  a = x;
  i = 0;
  while (i < n) {
    __annot("loop <= 3");
    a = a * gains[i];
    i = i + 1;
  }
  count = count + 1;
  return a;
}

func f64 clamp2(f64 x) {
  local f64 y;
  y = x > 2.0 ? 2.0 : x;
  y = y < -2.0 ? -2.0 : y;
  count = count + 1;
  return y;
}
)";

mach::Image compile_image(driver::Config config = driver::Config::O2Full) {
  minic::Program program = minic::parse_program(kSource, "artifact_test");
  minic::type_check(program);
  return driver::compile_program(program, config).image;
}

TEST(ImageIoTest, SerializedImageRoundTripsExactly) {
  const mach::Image image = compile_image();
  ASSERT_FALSE(image.words.empty());
  ASSERT_FALSE(image.annotations.empty());

  const std::vector<std::uint8_t> bytes = artifact::serialize_image(image);
  const artifact::ImageParse parsed = artifact::deserialize_image(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.error;

  EXPECT_EQ(parsed.image.words, image.words);
  EXPECT_EQ(parsed.image.data_init, image.data_init);
  EXPECT_EQ(parsed.image.fn_entry, image.fn_entry);
  EXPECT_EQ(parsed.image.fn_end, image.fn_end);
  EXPECT_EQ(parsed.image.global_addr, image.global_addr);
  ASSERT_EQ(parsed.image.annotations.size(), image.annotations.size());
  // Canonical form: re-serializing the parsed image reproduces the bytes,
  // which covers annotation payloads without enumerating AnnotEntry fields.
  EXPECT_EQ(artifact::serialize_image(parsed.image), bytes);
  // The cached image must behave identically downstream: same disassembly.
  EXPECT_EQ(parsed.image.disassemble(), image.disassemble());
}

TEST(ImageIoTest, TruncatedBytesAreACleanError) {
  const std::vector<std::uint8_t> bytes =
      artifact::serialize_image(compile_image());
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{8}, bytes.size() / 2,
        bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<long>(keep));
    const artifact::ImageParse parsed = artifact::deserialize_image(cut);
    EXPECT_FALSE(parsed.ok()) << "truncation to " << keep << " bytes parsed";
    EXPECT_FALSE(parsed.error.empty());
  }
}

TEST(ImageIoTest, WrongMagicAndVersionAreCleanErrors) {
  std::vector<std::uint8_t> bytes = artifact::serialize_image(compile_image());
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[0] ^= 0xFF;  // magic is the first word
    EXPECT_FALSE(artifact::deserialize_image(bad).ok());
  }
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[4] ^= 0xFF;  // version is the second word
    EXPECT_FALSE(artifact::deserialize_image(bad).ok());
  }
}

TEST(ImageIoTest, AnnotationTextListsEveryEntry) {
  const mach::Image image = compile_image();
  const std::string text = artifact::annotation_text(image);
  // One line per annotation entry.
  std::size_t lines = 0;
  for (const char c : text)
    if (c == '\n') ++lines;
  EXPECT_GE(lines, image.annotations.size());
  EXPECT_NE(text.find("loop"), std::string::npos);
}

// ------------------------------------------------------------------ store

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("vcflight-store-test-" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "-" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  static Hash128 key_of(const std::string& tag) {
    return artifact::ArtifactStore::make_key(tag, "f", "O2", "ppc", true,
                                             driver::kCompilerVersion);
  }

  /// Publishes a synthetic entry whose payloads embed `tag`.
  static void publish_tagged(artifact::ArtifactStore& store,
                             const std::string& tag,
                             std::size_t image_size = 64) {
    std::vector<std::uint8_t> image(image_size);
    for (std::size_t i = 0; i < image.size(); ++i)
      image[i] = static_cast<std::uint8_t>((i + tag.size()) & 0xFF);
    json::Value stats;
    stats["tag"] = json::Value(tag);
    json::Value info;
    info["config"] = json::Value("O2");
    store.publish(key_of(tag), image, "annot for " + tag, stats,
                  std::move(info));
  }

  /// Path of an entry's payload file on disk.
  [[nodiscard]] fs::path payload_path(const std::string& tag,
                                      const char* file) const {
    const std::string hex = key_of(tag).hex();
    return fs::path(dir_) / hex.substr(0, 2) / hex.substr(2) / file;
  }

  std::string dir_;
};

TEST_F(StoreTest, PublishThenLookupRoundTrips) {
  artifact::ArtifactStore store({dir_, 0});
  publish_tagged(store, "alpha");

  const auto loaded = store.lookup(key_of("alpha"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->annot, "annot for alpha");
  EXPECT_EQ(loaded->stats.at("tag").as_string(), "alpha");
  EXPECT_EQ(loaded->image_bytes.size(), 64u);

  const artifact::StoreStats s = store.stats();
  EXPECT_EQ(s.publishes, 1u);
  EXPECT_EQ(s.lookups, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.resident_entries, 1u);
  EXPECT_GT(s.resident_bytes, 0u);
  EXPECT_FALSE(s.summary().empty());
}

TEST_F(StoreTest, MissingKeyIsAMiss) {
  artifact::ArtifactStore store({dir_, 0});
  EXPECT_FALSE(store.lookup(key_of("never-published")).has_value());
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().corrupt_dropped, 0u);
}

TEST_F(StoreTest, OnDiskLayoutIsShardedByHexPrefix) {
  artifact::ArtifactStore store({dir_, 0});
  publish_tagged(store, "layout");
  const std::string hex = key_of("layout").hex();
  const fs::path edir = fs::path(dir_) / hex.substr(0, 2) / hex.substr(2);
  for (const char* f : {"image.bin", "annot.txt", "stats.json", "meta"})
    EXPECT_TRUE(fs::exists(edir / f)) << f;
}

TEST_F(StoreTest, PersistsAcrossStoreInstances) {
  { // First store publishes and is destroyed.
    artifact::ArtifactStore store({dir_, 0});
    publish_tagged(store, "persist");
  }
  // A fresh store over the same directory re-indexes the entry (a campaign
  // restart must be warm).
  artifact::ArtifactStore restarted({dir_, 0});
  EXPECT_EQ(restarted.stats().resident_entries, 1u);
  const auto loaded = restarted.lookup(key_of("persist"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->stats.at("tag").as_string(), "persist");
}

TEST_F(StoreTest, CorruptImageIsDroppedCountedAndBecomesAMiss) {
  artifact::ArtifactStore store({dir_, 0});
  publish_tagged(store, "victim");

  { // Flip one byte of the stored image.
    std::fstream f(payload_path("victim", "image.bin"),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(0);
    byte = static_cast<char>(byte ^ 0x5A);
    f.write(&byte, 1);
  }

  EXPECT_FALSE(store.lookup(key_of("victim")).has_value());
  const artifact::StoreStats s = store.stats();
  EXPECT_EQ(s.corrupt_dropped, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.resident_entries, 0u);
  // The entry was evicted from disk too; re-publication then hits again.
  EXPECT_FALSE(fs::exists(payload_path("victim", "meta")));
  publish_tagged(store, "victim");
  EXPECT_TRUE(store.lookup(key_of("victim")).has_value());
}

TEST_F(StoreTest, TruncatedStatsFileIsDetected) {
  artifact::ArtifactStore store({dir_, 0});
  publish_tagged(store, "truncated");
  fs::resize_file(payload_path("truncated", "stats.json"), 3);
  EXPECT_FALSE(store.lookup(key_of("truncated")).has_value());
  EXPECT_EQ(store.stats().corrupt_dropped, 1u);
}

TEST_F(StoreTest, DeletedPayloadIsDetected) {
  artifact::ArtifactStore store({dir_, 0});
  publish_tagged(store, "deleted");
  fs::remove(payload_path("deleted", "annot.txt"));
  EXPECT_FALSE(store.lookup(key_of("deleted")).has_value());
  EXPECT_EQ(store.stats().corrupt_dropped, 1u);
}

TEST_F(StoreTest, MangledMetaIsGarbageCollectedOnRestart) {
  {
    artifact::ArtifactStore store({dir_, 0});
    publish_tagged(store, "stale");
  }
  { // Overwrite meta with junk; the restart scan must drop the entry.
    std::ofstream f(payload_path("stale", "meta"), std::ios::trunc);
    f << "not json at all";
  }
  artifact::ArtifactStore restarted({dir_, 0});
  EXPECT_EQ(restarted.stats().resident_entries, 0u);
  EXPECT_EQ(restarted.stats().corrupt_dropped, 1u);
  EXPECT_FALSE(restarted.lookup(key_of("stale")).has_value());
}

TEST_F(StoreTest, LeftoverTmpDirsAreGarbageCollectedOnRestart) {
  {
    artifact::ArtifactStore store({dir_, 0});
    publish_tagged(store, "survivor");
  }
  // Simulate a crash mid-publication: a tmp dir inside a shard directory.
  const std::string hex = key_of("survivor").hex();
  const fs::path tmp = fs::path(dir_) / hex.substr(0, 2) / ".tmp-dead-1-2";
  fs::create_directories(tmp);
  { std::ofstream f(tmp / "image.bin"); f << "partial"; }

  artifact::ArtifactStore restarted({dir_, 0});
  EXPECT_FALSE(fs::exists(tmp));
  EXPECT_EQ(restarted.stats().resident_entries, 1u);
  EXPECT_TRUE(restarted.lookup(key_of("survivor")).has_value());
}

TEST_F(StoreTest, KillMidPublishDebrisIsDroppedAndCountedOnRestart) {
  {
    artifact::ArtifactStore store({dir_, 0});
    publish_tagged(store, "survivor");
    publish_tagged(store, "torn");
  }
  // Simulate a process killed mid-publish: a stray temp file next to a
  // published entry's payloads (crashed write_file_atomic)...
  const fs::path stray =
      payload_path("survivor", "meta").parent_path() / "stats.json.tmp";
  { std::ofstream f(stray); f << "{ half a stats doc"; }
  // ...and an entry whose image was torn mid-write: meta says 64 bytes but
  // only 7 landed on disk.
  fs::resize_file(payload_path("torn", "image.bin"), 7);

  artifact::ArtifactStore restarted({dir_, 0});
  // Both pieces of damage are dropped at re-index and accounted.
  EXPECT_FALSE(fs::exists(stray));
  EXPECT_FALSE(fs::exists(payload_path("torn", "meta")));
  EXPECT_EQ(restarted.stats().corrupt_dropped, 2u);
  // The partial image is never served; the intact neighbor still is.
  EXPECT_EQ(restarted.stats().resident_entries, 1u);
  EXPECT_FALSE(restarted.lookup(key_of("torn")).has_value());
  const auto loaded = restarted.lookup(key_of("survivor"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->image_bytes.size(), 64u);
}

TEST_F(StoreTest, ShardLevelTmpFileIsDroppedAndCountedOnRestart) {
  {
    artifact::ArtifactStore store({dir_, 0});
    publish_tagged(store, "survivor");
  }
  // A crash can also leave a non-directory stray at the shard level.
  const std::string hex = key_of("survivor").hex();
  const fs::path stray = fs::path(dir_) / hex.substr(0, 2) / ".tmp-dead-9-9";
  { std::ofstream f(stray); f << "partial"; }

  artifact::ArtifactStore restarted({dir_, 0});
  EXPECT_FALSE(fs::exists(stray));
  EXPECT_EQ(restarted.stats().corrupt_dropped, 1u);
  EXPECT_EQ(restarted.stats().resident_entries, 1u);
  EXPECT_TRUE(restarted.lookup(key_of("survivor")).has_value());
}

TEST_F(StoreTest, InvalidateDropsAndCountsOnce) {
  artifact::ArtifactStore store({dir_, 0});
  publish_tagged(store, "bad-image");
  store.invalidate(key_of("bad-image"));
  EXPECT_EQ(store.stats().corrupt_dropped, 1u);
  EXPECT_EQ(store.stats().resident_entries, 0u);
  // Invalidating an absent entry must not inflate the corruption counter.
  store.invalidate(key_of("bad-image"));
  EXPECT_EQ(store.stats().corrupt_dropped, 1u);
}

TEST_F(StoreTest, UpdateStatsReplacesDocumentAndSurvivesRestart) {
  {
    artifact::ArtifactStore store({dir_, 0});
    publish_tagged(store, "stats");
    json::Value updated;
    updated["tag"] = json::Value("stats");
    updated["runs"] = json::Value(static_cast<std::uint64_t>(2));
    EXPECT_TRUE(store.update_stats(key_of("stats"), updated));
    EXPECT_EQ(store.stats().stats_updates, 1u);
    // Updating a non-resident key reports failure.
    EXPECT_FALSE(store.update_stats(key_of("nonexistent"), updated));
  }
  // The rewritten stats.json and re-stamped meta must verify after restart.
  artifact::ArtifactStore restarted({dir_, 0});
  const auto loaded = restarted.lookup(key_of("stats"));
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->stats.at("runs").as_u64(), 2u);
  EXPECT_EQ(restarted.stats().corrupt_dropped, 0u);
}

TEST_F(StoreTest, BudgetEvictsLeastRecentlyUsed) {
  artifact::ArtifactStore store({dir_, 2800});
  // Each entry is ~800 bytes of payload+meta; three fit, the fourth forces
  // an eviction of the least recently used.
  publish_tagged(store, "one", 400);
  publish_tagged(store, "two", 400);
  publish_tagged(store, "three", 400);
  ASSERT_EQ(store.stats().evictions, 0u);
  // Touch "one" so "two" becomes the LRU victim.
  ASSERT_TRUE(store.lookup(key_of("one")).has_value());
  publish_tagged(store, "four", 400);

  EXPECT_GE(store.stats().evictions, 1u);
  EXPECT_TRUE(store.lookup(key_of("one")).has_value());
  EXPECT_FALSE(store.lookup(key_of("two")).has_value());
  EXPECT_TRUE(store.lookup(key_of("four")).has_value());
  EXPECT_LE(store.stats().resident_bytes, 2800u);
}

TEST_F(StoreTest, BudgetAppliedWhenReindexing)  {
  {
    artifact::ArtifactStore store({dir_, 0});  // unlimited while filling
    for (const char* tag : {"r1", "r2", "r3", "r4", "r5", "r6"})
      publish_tagged(store, tag, 400);
  }
  artifact::ArtifactStore store({dir_, 1500});
  EXPECT_GT(store.stats().evictions, 0u);
  EXPECT_LE(store.stats().resident_bytes, 1500u);
  EXPECT_LT(store.stats().resident_entries, 6u);
}

}  // namespace
}  // namespace vc
