// Dataflow / ACG tests: symbol-library semantics (NodeSimulator ==
// interpreter on ACG output == compiled binary on the machine, bit-exact,
// over call sequences), generator validity, and per-symbol patterns.
#include <gtest/gtest.h>

#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "dataflow/simulator.hpp"
#include "driver/compiler.hpp"
#include "machine/machine.hpp"
#include "minic/interp.hpp"
#include "minic/parser.hpp"
#include "minic/printer.hpp"
#include "minic/typecheck.hpp"
#include "support/rng.hpp"
#include "wcet/wcet.hpp"

namespace vc {
namespace {

using dataflow::Node;
using dataflow::SymbolKind;
using minic::Value;

/// Runs `cycles` steps of `node` through: the node simulator, the mini-C
/// interpreter on the ACG output, and the compiled binary on the machine
/// simulator under `config`; asserts bit-exact agreement of all outputs.
void cross_check(const Node& node, driver::Config config, int cycles,
                 std::uint64_t seed) {
  minic::Program program;
  program.name = node.name();
  dataflow::generate_node(node, &program);
  minic::type_check(program);

  dataflow::NodeSimulator reference(node);
  minic::Interpreter interp(program);
  const driver::Compiled compiled = driver::compile_program(program, config);
  machine::Machine m(compiled.image);

  const std::string fn = dataflow::step_function_name(node);
  Rng rng(seed);
  const bool has_io = program.find_global(dataflow::kIoBusGlobal) != nullptr;

  for (int cycle = 0; cycle < cycles; ++cycle) {
    std::vector<double> f_inputs;
    std::vector<std::int32_t> i_inputs;
    std::vector<Value> args;
    for (const auto& p : program.find_function(fn)->params) {
      if (p.type == minic::Type::F64) {
        const double v = rng.next_double(-30.0, 30.0);
        f_inputs.push_back(v);
        args.push_back(Value::of_f64(v));
      } else {
        const auto v = static_cast<std::int32_t>(rng.next_range(-3, 3));
        i_inputs.push_back(v);
        args.push_back(Value::of_i32(v));
      }
    }
    const double io = rng.next_double(-5.0, 5.0);
    if (has_io) {
      interp.write_global(dataflow::kIoBusGlobal, 0, Value::of_f64(io));
      m.write_global(dataflow::kIoBusGlobal, 0, Value::of_f64(io));
    }

    const std::vector<double> want = reference.step(f_inputs, i_inputs, io);
    interp.call(fn, args);
    m.call(fn, args, minic::Type::I32);

    for (int k = 0; k < node.output_count(); ++k) {
      const std::string out = dataflow::output_global(node, k);
      const Value vi = interp.read_global(out, 0);
      const Value vm = m.read_global(out, 0, minic::Type::F64);
      ASSERT_EQ(Value::of_f64(want[static_cast<std::size_t>(k)]), vi)
          << node.name() << " output " << k << " (interpreter) cycle "
          << cycle;
      ASSERT_EQ(vi, vm) << node.name() << " output " << k << " (machine, "
                        << driver::to_string(config) << ") cycle " << cycle;
    }
  }
}

Node every_symbol_node() {
  // A hand-built node touching every library symbol at least once.
  Node n("allsym");
  const auto x = n.add(SymbolKind::InputF);
  const auto y = n.add(SymbolKind::InputF);
  const auto mode = n.add(SymbolKind::InputI);
  const auto c = n.add(SymbolKind::ConstF, {}, {2.5});
  const auto ci = n.add(SymbolKind::ConstI, {}, {1});
  const auto io = n.add(SymbolKind::IoAcquire, {}, {8});
  const auto sum = n.add(SymbolKind::Add, {x, y});
  const auto dif = n.add(SymbolKind::Sub, {sum, c});
  const auto prd = n.add(SymbolKind::Mul, {dif, x});
  const auto div = n.add(SymbolKind::DivSafe, {prd, y}, {1.0});
  const auto g = n.add(SymbolKind::Gain, {div}, {0.5});
  const auto bi = n.add(SymbolKind::Bias, {g}, {-1.25});
  const auto ab = n.add(SymbolKind::Abs, {bi});
  const auto ng = n.add(SymbolKind::Neg, {ab});
  const auto mn = n.add(SymbolKind::Min, {ng, io});
  const auto mx = n.add(SymbolKind::Max, {mn, c});
  const auto sat = n.add(SymbolKind::Saturate, {mx}, {-10.0, 10.0});
  const auto dz = n.add(SymbolKind::Deadzone, {sat}, {0.25});
  const auto cg = n.add(SymbolKind::CmpGt, {dz, c});
  const auto cl = n.add(SymbolKind::CmpLt, {dz, x});
  const auto la = n.add(SymbolKind::LogicAnd, {cg, cl});
  const auto lo = n.add(SymbolKind::LogicOr, {la, mode});
  const auto ln = n.add(SymbolKind::LogicNot, {lo});
  (void)ci;
  const auto sw = n.add(SymbolKind::Switch, {ln, dz, sum});
  const auto ud = n.add(SymbolKind::UnitDelay, {sw});
  const auto lag = n.add(SymbolKind::FirstOrderLag, {ud}, {0.3});
  const auto itg = n.add(SymbolKind::Integrator, {lag}, {0.02, -20.0, 20.0});
  const auto rl = n.add(SymbolKind::RateLimiter, {itg}, {1.0, 2.0});
  const auto ma = n.add(SymbolKind::MovingAverage, {rl}, {5});
  const auto bq =
      n.add(SymbolKind::Biquad, {ma}, {0.2, 0.4, 0.2, -0.3, 0.1});
  const auto hy = n.add(SymbolKind::Hysteresis, {bq}, {-1.0, 1.0});
  const auto db = n.add(SymbolKind::Debounce, {hy}, {3});
  const auto gate = n.add(SymbolKind::Switch, {db, bq, ma});
  const auto lut = n.add(SymbolKind::Lookup1D, {gate}, {-10.0, 10.0},
                         {0.0, 1.0, 4.0, 9.0, 16.0, 25.0, 16.0, 4.0, -3.0});
  n.add(SymbolKind::Output, {lut});
  n.add(SymbolKind::Output, {sw});
  return n;
}

TEST(Dataflow, EverySymbolAllConfigs) {
  const Node node = every_symbol_node();
  for (driver::Config config : driver::kAllConfigs)
    cross_check(node, config, 12, 0xABCDEF);
}

TEST(Dataflow, FeedbackLoop) {
  // Closed-loop: error integrator driving the plant input through a delay.
  Node n("loopback");
  const auto target = n.add(SymbolKind::InputF);
  const auto fb = n.add(SymbolKind::UnitDelay);  // connected below
  const auto err = n.add(SymbolKind::Sub, {target, fb});
  const auto ki = n.add(SymbolKind::Gain, {err}, {0.4});
  const auto itg = n.add(SymbolKind::Integrator, {ki}, {0.1, -50.0, 50.0});
  n.connect_feedback(fb, itg);
  n.add(SymbolKind::Output, {itg});
  for (driver::Config config : driver::kAllConfigs)
    cross_check(n, config, 25, 42);
}

TEST(Dataflow, GeneratedSuiteCrossChecks) {
  const std::vector<Node> nodes = dataflow::generate_suite(2026, 8);
  ASSERT_EQ(nodes.size(), 8u);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const driver::Config config =
        driver::kAllConfigs[i % 4];  // rotate configs for coverage
    cross_check(nodes[i], config, 6, 1000 + i);
  }
}

TEST(Dataflow, GeneratorIsDeterministic) {
  const auto a = dataflow::generate_suite(7, 3);
  const auto b = dataflow::generate_suite(7, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].blocks().size(), b[i].blocks().size());
    for (std::size_t j = 0; j < a[i].blocks().size(); ++j) {
      EXPECT_EQ(a[i].blocks()[j].kind, b[i].blocks()[j].kind);
      EXPECT_EQ(a[i].blocks()[j].params, b[i].blocks()[j].params);
    }
  }
}

TEST(Dataflow, ValidationRejectsBadNodes) {
  {
    Node n("cycle");
    const auto x = n.add(SymbolKind::InputF);
    // Combinational self-reference must be rejected.
    Node bad("bad");
    const auto bx = bad.add(SymbolKind::InputF);
    const auto d = bad.add(SymbolKind::UnitDelay);  // unconnected
    bad.add(SymbolKind::Output, {bx});
    (void)d;
    EXPECT_THROW(bad.validate(), CompileError);
    (void)x;
  }
  {
    Node n("types");
    const auto x = n.add(SymbolKind::InputF);
    EXPECT_NO_THROW(n.add(SymbolKind::Abs, {x}));
    const auto cmp = n.add(SymbolKind::CmpGt, {x, x});
    n.add(SymbolKind::Output, {cmp});  // Output wants f64, gets i32
    EXPECT_THROW(n.validate(), CompileError);
  }
  {
    Node n("noout");
    n.add(SymbolKind::InputF);
    EXPECT_THROW(n.validate(), CompileError);
  }
}

TEST(Dataflow, BoundedLookupIndexFeedsIpet) {
  // A Saturate into a Lookup1D whose saturation range maps strictly inside
  // the table: the ACG emits a pre-clamp range annotation on the raw index,
  // the WCET value analysis proves both clamp branches one-sided, and the
  // IPET engine excludes those edges — strictly tightening the exact bound
  // below the structural one on the optimizing configurations.
  Node n("satlut");
  const auto x = n.add(SymbolKind::InputF);
  const auto sat = n.add(SymbolKind::Saturate, {x}, {-4.0, 4.0});
  // x0=-10, x1=10, 9 entries: t = (v+10)*0.4, v in [-4,4] -> k raw in [2,5],
  // strictly inside [0, 7] — both clamp selects are provably dead.
  const auto lut = n.add(SymbolKind::Lookup1D, {sat}, {-10.0, 10.0},
                         {0.0, 1.0, 4.0, 9.0, 16.0, 25.0, 16.0, 4.0, -3.0});
  n.add(SymbolKind::Output, {lut});

  minic::Program program;
  program.name = n.name();
  dataflow::generate_node(n, &program);
  minic::type_check(program);
  const std::string fn = dataflow::step_function_name(n);

  for (driver::Config config :
       {driver::Config::Verified, driver::Config::O2Full}) {
    const driver::Compiled compiled = driver::compile_program(program, config);
    wcet::WcetOptions engines;
    engines.engine = wcet::WcetEngine::Both;
    const wcet::WcetResult r = wcet::analyze_wcet(compiled.image, fn, engines);
    ASSERT_TRUE(r.ipet.has_value());
    EXPECT_TRUE(r.ipet->certificate_verified);
    EXPECT_GE(r.ipet->capped_edges, 2u)
        << "clamp edges not excluded under " << driver::to_string(config);
    EXPECT_LT(r.ipet->wcet_cycles, *r.structural_cycles)
        << "no strict tightening under " << driver::to_string(config);
  }
  // Semantics stay bit-exact with the annotation present.
  for (driver::Config config : driver::kAllConfigs)
    cross_check(n, config, 10, 777);
}

TEST(Dataflow, PrintedProgramRoundTrips) {
  const Node node = every_symbol_node();
  minic::Program program;
  dataflow::generate_node(node, &program);
  const std::string text = minic::print_program(program);
  const minic::Program reparsed = minic::parse_program(text);
  minic::type_check(reparsed);
  EXPECT_EQ(minic::print_program(reparsed), text);
}

// Every node of the full campaign suite must print to source that
// re-parses to the same printed form — the vccd service compiles from
// printed text, so an unprintable program silently diverges from the
// in-memory reference. Regression: synthesized temp "f" + block 64 spelt
// the keyword `f64` (campaign nodes 234 and 1371), which parsed in no
// program at all.
TEST(Dataflow, CampaignSuitePrintParseFixedPoint) {
  const std::vector<Node> nodes = dataflow::generate_suite(20110318, 2500);
  std::size_t checked = 0;
  for (const Node& node : nodes) {
    minic::Program program;
    dataflow::generate_node(node, &program);
    minic::type_check(program);
    const std::string once = minic::print_program(program);
    ASSERT_NO_THROW({
      minic::Program reparsed = minic::parse_program(once, node.name());
      minic::type_check(reparsed);
      ASSERT_EQ(minic::print_program(reparsed), once) << node.name();
    }) << node.name();
    ++checked;
  }
  EXPECT_EQ(checked, nodes.size());
}

}  // namespace
}  // namespace vc
