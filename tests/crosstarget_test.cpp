// Backend no-regression and cross-target determinism, at campaign
// granularity:
//
//   * the PPC backend, after the machine layer went target-parametric, must
//     reproduce the committed pre-refactor reference campaign byte for byte
//     (tests/data/reference_40.jsonl) — any codegen, timing, scheduling,
//     peephole, or analysis drift shows up as a diff here;
//   * per target, a parallel campaign (jobs=8) must be bit-identical to the
//     sequential one (jobs=1): worker scheduling may not leak into records;
//   * the two targets genuinely differ (the rv32 campaign is NOT the ppc
//     one re-labeled), while every record of both stays fully validated,
//     monitored and certified.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "reference_campaign.hpp"

namespace vc::bench {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CrossTarget, PpcReferenceCampaignIsByteIdentical) {
  const std::string want =
      read_file(std::string(VCFLIGHT_TEST_DATA_DIR) + "/reference_40.jsonl");
  ASSERT_FALSE(want.empty());
  const std::string got = reference_campaign_records("ppc");
  // Compare record-by-record first so a mismatch names the node instead of
  // dumping two multi-megabyte strings.
  std::istringstream want_lines(want);
  std::istringstream got_lines(got);
  std::string want_line;
  std::string got_line;
  std::size_t line = 0;
  while (std::getline(want_lines, want_line)) {
    ++line;
    ASSERT_TRUE(std::getline(got_lines, got_line))
        << "campaign lost records at line " << line;
    ASSERT_EQ(got_line, want_line) << "record " << line << " drifted";
  }
  EXPECT_FALSE(std::getline(got_lines, got_line))
      << "campaign gained records";
  EXPECT_EQ(got, want);
}

class CrossTargetDeterminism
    : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossTargetDeterminism, ParallelCampaignMatchesSequential) {
  const std::string target = GetParam();
  std::vector<NodeBundle> suite = make_suite(12);
  suite.push_back(pitch_law());

  const auto run = [&](int jobs) {
    driver::FleetOptions options;
    options.target = target;
    options.jobs = jobs;
    options.exec_cycles = 25;
    options.wcet = true;
    options.wcet_engine = wcet::WcetEngine::Both;
    options.monitor = machine::MonitorMode::Full;
    attach_validation(&options, driver::ValidateLevel::Full);
    const driver::FleetReport report =
        driver::run_fleet(to_fleet_units(suite), options);
    EXPECT_EQ(report.target, target);
    EXPECT_EQ(report.monitor_violations, 0u);
    std::string out;
    for (const driver::FleetRecord& r : report.records) {
      EXPECT_TRUE(r.ok) << r.name << " on " << target;
      out += driver::record_core_json(r).dump();
      out += "\n";
    }
    return out;
  };

  const std::string sequential = run(1);
  const std::string parallel = run(8);
  EXPECT_EQ(parallel, sequential)
      << "worker count leaked into campaign records on " << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, CrossTargetDeterminism,
                         ::testing::Values("ppc", "rv32"));

TEST(CrossTarget, TargetsProduceDistinctCode) {
  // Guards against the rv32 "backend" silently falling through to the PPC
  // lowering: the same 12-node campaign must produce different code bytes.
  std::vector<NodeBundle> suite = make_suite(12);
  const auto records = [&](const char* target) {
    driver::FleetOptions options;
    options.target = target;
    options.jobs = 1;
    options.exec_cycles = 0;
    std::string out;
    for (const driver::FleetRecord& r :
         driver::run_fleet(to_fleet_units(suite), options).records)
      out += driver::record_core_json(r).dump();
    return out;
  };
  EXPECT_NE(records("ppc"), records("rv32"));
}

}  // namespace
}  // namespace vc::bench
