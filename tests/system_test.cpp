// FlightSystem (cyclic executive) tests: multi-node images, signal routing,
// frame execution against per-node reference simulation, frame WCET budgets.
#include <gtest/gtest.h>

#include "dataflow/generator.hpp"
#include "dataflow/simulator.hpp"
#include "driver/system.hpp"
#include "support/rng.hpp"

namespace vc {
namespace {

using dataflow::Node;
using dataflow::SymbolKind;
using minic::Value;

Node make_source(const std::string& name, double gain) {
  Node n(name);
  const auto in = n.add(SymbolKind::InputF);
  const auto g = n.add(SymbolKind::Gain, {in}, {gain});
  n.add(SymbolKind::Output, {g});
  return n;
}

Node make_mixer(const std::string& name) {
  Node n(name);
  const auto a = n.add(SymbolKind::InputF);
  const auto b = n.add(SymbolKind::InputF);
  const auto sum = n.add(SymbolKind::Add, {a, b});
  const auto sat = n.add(SymbolKind::Saturate, {sum}, {-100.0, 100.0});
  n.add(SymbolKind::Output, {sat});
  return n;
}

TEST(FlightSystem, RoutesSignalsBetweenNodes) {
  driver::FlightSystem system;
  system.add_node(make_source("left", 2.0));
  system.add_node(make_source("right", 3.0));
  system.add_node(make_mixer("mixer"));
  system.connect("left", 0, "mixer", 0);
  system.connect("right", 0, "mixer", 1);
  system.elaborate();

  for (driver::Config config : driver::kAllConfigs) {
    const driver::Compiled compiled = system.compile(config);
    machine::Machine m(compiled.image);
    system.run_frame(m, {{"left", {Value::of_f64(5.0)}},
                         {"right", {Value::of_f64(7.0)}}});
    // mixer output = 2*5 + 3*7 = 31.
    EXPECT_EQ(m.read_global("mixer_out0", 0, minic::Type::F64),
              Value::of_f64(31.0))
        << driver::to_string(config);
  }
}

TEST(FlightSystem, ScheduleOrderViolationIsReported) {
  driver::FlightSystem system;
  system.add_node(make_mixer("mixer"));       // consumer scheduled first
  system.add_node(make_source("src", 1.0));
  system.connect("src", 0, "mixer", 0);
  system.elaborate();
  const driver::Compiled compiled = system.compile(driver::Config::Verified);
  machine::Machine m(compiled.image);
  EXPECT_THROW(system.run_frame(m, {}), InternalError);
}

TEST(FlightSystem, BadWiringRejectedAtElaboration) {
  {
    driver::FlightSystem system;
    system.add_node(make_source("a", 1.0));
    system.add_node(make_mixer("m"));
    system.connect("a", 5, "m", 0);  // output index out of range
    EXPECT_THROW(system.elaborate(), InternalError);
  }
  {
    driver::FlightSystem system;
    system.add_node(make_source("a", 1.0));
    system.connect("a", 0, "ghost", 0);
    EXPECT_THROW(system.elaborate(), InternalError);
  }
  {
    driver::FlightSystem system;
    system.add_node(make_source("a", 1.0));
    EXPECT_THROW(system.add_node(make_source("a", 2.0)), InternalError);
  }
}

TEST(FlightSystem, GeneratedFleetFrameMatchesReferenceSimulators) {
  driver::FlightSystem system;
  const auto nodes = dataflow::generate_suite(777, 5, "unit");
  for (const auto& n : nodes) system.add_node(n);
  system.elaborate();

  const driver::Compiled compiled = system.compile(driver::Config::O2Full);
  machine::Machine m(compiled.image);

  // Reference: independent per-node simulators (no wiring configured).
  std::vector<dataflow::NodeSimulator> refs;
  for (const auto& n : system.nodes()) refs.emplace_back(n);

  Rng rng(31415);
  for (int frame = 0; frame < 4; ++frame) {
    std::map<std::string, std::vector<Value>> external;
    std::vector<std::pair<std::vector<double>, std::vector<std::int32_t>>>
        ref_inputs;
    for (const auto& node : system.nodes()) {
      std::vector<Value> args;
      std::vector<double> fs;
      std::vector<std::int32_t> is;
      const minic::Function* fn = system.program().find_function(
          dataflow::step_function_name(node));
      for (const auto& p : fn->params) {
        if (p.type == minic::Type::F64) {
          const double v = rng.next_double(-10, 10);
          fs.push_back(v);
          args.push_back(Value::of_f64(v));
        } else {
          const auto v = static_cast<std::int32_t>(rng.next_range(-2, 2));
          is.push_back(v);
          args.push_back(Value::of_i32(v));
        }
      }
      external[node.name()] = args;
      ref_inputs.emplace_back(fs, is);
    }
    system.run_frame(m, external);
    for (std::size_t i = 0; i < system.nodes().size(); ++i) {
      const auto& node = system.nodes()[i];
      const auto want =
          refs[i].step(ref_inputs[i].first, ref_inputs[i].second, 0.0);
      for (int k = 0; k < node.output_count(); ++k) {
        ASSERT_EQ(Value::of_f64(want[static_cast<std::size_t>(k)]),
                  m.read_global(dataflow::output_global(node, k), 0,
                                minic::Type::F64))
            << node.name() << " output " << k << " frame " << frame;
      }
    }
  }
}

TEST(FlightSystem, FrameWcetBudgetDominatesFrames) {
  driver::FlightSystem system;
  for (const auto& n : dataflow::generate_suite(888, 4, "fb"))
    system.add_node(n);
  system.elaborate();
  for (driver::Config config :
       {driver::Config::O0Pattern, driver::Config::Verified}) {
    const driver::Compiled compiled = system.compile(config);
    const auto budget = system.frame_wcet(compiled);
    EXPECT_EQ(budget.per_node.size(), 4u);
    machine::Machine m(compiled.image);
    Rng rng(1);
    for (int frame = 0; frame < 5; ++frame) {
      m.clear_caches();
      const auto stats = system.run_frame(m, {});
      EXPECT_LE(stats.cycles, budget.total)
          << "frame budget violated under " << driver::to_string(config);
    }
  }
}

}  // namespace
}  // namespace vc
