// Interval domain tests: lattice laws and soundness of every transfer
// function (containment of the concrete operation, checked over randomized
// samples — the property the WCET value analysis relies on).
#include <gtest/gtest.h>

#include <limits>

#include "minic/interp.hpp"
#include "support/interval.hpp"
#include "support/rng.hpp"

namespace vc {
namespace {

TEST(Interval, BasicConstruction) {
  EXPECT_TRUE(Interval::bottom().is_bottom());
  EXPECT_TRUE(Interval::top().is_top());
  EXPECT_FALSE(Interval::constant(5).is_bottom());
  EXPECT_EQ(Interval::constant(5).as_constant(), 5);
  EXPECT_EQ(Interval::range(1, 3).lo(), 1);
  EXPECT_EQ(Interval::range(1, 3).hi(), 3);
  EXPECT_FALSE(Interval::range(1, 3).as_constant().has_value());
  EXPECT_THROW(Interval::range(3, 1), InternalError);
}

TEST(Interval, ContainsAndOrder) {
  const Interval a = Interval::range(-10, 10);
  EXPECT_TRUE(a.contains(0));
  EXPECT_TRUE(a.contains(-10));
  EXPECT_TRUE(a.contains(10));
  EXPECT_FALSE(a.contains(11));
  EXPECT_TRUE(a.contains(Interval::range(-5, 5)));
  EXPECT_TRUE(a.contains(Interval::bottom()));
  EXPECT_FALSE(a.contains(Interval::range(-5, 11)));
  EXPECT_FALSE(Interval::bottom().contains(0));
}

TEST(Interval, LatticeLaws) {
  const Interval a = Interval::range(-4, 7);
  const Interval b = Interval::range(2, 20);
  // join is an upper bound; meet a lower bound.
  EXPECT_TRUE(a.join(b).contains(a));
  EXPECT_TRUE(a.join(b).contains(b));
  EXPECT_TRUE(a.contains(a.meet(b)));
  EXPECT_TRUE(b.contains(a.meet(b)));
  // commutativity
  EXPECT_EQ(a.join(b), b.join(a));
  EXPECT_EQ(a.meet(b), b.meet(a));
  // neutral elements
  EXPECT_EQ(a.join(Interval::bottom()), a);
  EXPECT_EQ(a.meet(Interval::top()), a);
  // disjoint meet is empty
  EXPECT_TRUE(Interval::range(0, 1).meet(Interval::range(3, 4)).is_bottom());
}

TEST(Interval, WideningConverges) {
  Interval x = Interval::constant(0);
  for (int i = 1; i < 100; ++i) {
    const Interval next = x.join(Interval::constant(i));
    const Interval widened = x.widen(next);
    EXPECT_TRUE(widened.contains(next));
    if (widened == x) break;
    x = widened;
  }
  // After widening an increasing chain, the upper bound is pinned at i32 max.
  EXPECT_EQ(x.hi(), std::numeric_limits<std::int32_t>::max());
}

TEST(Interval, Refinements) {
  const Interval a = Interval::range(0, 100);
  EXPECT_EQ(a.refine_lt(50), Interval::range(0, 49));
  EXPECT_EQ(a.refine_le(50), Interval::range(0, 50));
  EXPECT_EQ(a.refine_gt(50), Interval::range(51, 100));
  EXPECT_EQ(a.refine_ge(50), Interval::range(50, 100));
  EXPECT_EQ(a.refine_eq(7), Interval::constant(7));
  EXPECT_TRUE(a.refine_lt(0).is_bottom());
  EXPECT_TRUE(a.refine_gt(100).is_bottom());
  EXPECT_TRUE(a.refine_eq(101).is_bottom());
}

TEST(Interval, DivisionEdgeCases) {
  // Divisor straddling zero.
  const Interval q = Interval::range(-100, 100).div(Interval::range(-2, 2));
  EXPECT_TRUE(q.contains(100));
  EXPECT_TRUE(q.contains(-100));
  // Divisor exactly zero -> bottom (the operation always traps).
  EXPECT_TRUE(Interval::constant(5).div(Interval::constant(0)).is_bottom());
  // Plain division.
  EXPECT_EQ(Interval::range(10, 20).div(Interval::constant(2)),
            Interval::range(5, 10));
}

// Property: abstract transfer functions contain the concrete i32 results.
class IntervalSoundness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSoundness, TransferContainment) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    // Random intervals around random centers, occasionally extreme.
    auto random_interval = [&](std::int64_t* sample) {
      const std::int64_t center =
          rng.next_bool(0.15)
              ? (rng.next_bool() ? std::numeric_limits<std::int32_t>::max()
                                 : std::numeric_limits<std::int32_t>::min())
              : rng.next_range(-100000, 100000);
      const std::int64_t radius = rng.next_range(0, 1000);
      const auto lo = std::max<std::int64_t>(
          center - radius, std::numeric_limits<std::int32_t>::min());
      const auto hi = std::min<std::int64_t>(
          center + radius, std::numeric_limits<std::int32_t>::max());
      *sample = rng.next_range(lo, hi);
      return Interval::range(lo, hi);
    };
    std::int64_t xa = 0;
    std::int64_t xb = 0;
    const Interval a = random_interval(&xa);
    const Interval b = random_interval(&xb);
    const auto ia = static_cast<std::int32_t>(xa);
    const auto ib = static_cast<std::int32_t>(xb);

    EXPECT_TRUE(a.add(b).contains(xa + xb));
    EXPECT_TRUE(a.sub(b).contains(xa - xb));
    EXPECT_TRUE(a.mul(b).contains(xa * xb));
    EXPECT_TRUE(a.neg().contains(-xa));
    if (ib != 0) {
      const std::int32_t q = minic::eval_ibinop(minic::BinOp::IDiv, ia, ib);
      EXPECT_TRUE(a.div(b).contains(q))
          << ia << " / " << ib << " = " << q << " not in "
          << a.div(b).to_string();
    }
    // clamp_i32 contains the wrapped machine result of add.
    const std::int32_t machine_add = minic::eval_ibinop(minic::BinOp::IAdd, ia, ib);
    EXPECT_TRUE(a.add(b).clamp_i32().contains(machine_add));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSoundness,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace vc
