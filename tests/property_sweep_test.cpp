// The system-level property sweep — the repository's strongest guarantees,
// checked over freshly generated random workloads (parameterized by seed):
//
//   P1 (semantic preservation): for every generated node and configuration,
//       the compiled binary on the machine simulator agrees bit-exactly with
//       the block-diagram reference simulator over stateful call sequences.
//   P2 (WCET soundness): the static bound dominates every observed run.
//   P3 (validator acceptance): validated compilation accepts every genuine
//       pipeline (no false rejections).
//   P4 (cache-analysis monotonicity): disabling the cache analysis never
//       produces a smaller bound.
//   P5 (cross-engine agreement): the exact LP-based IPET engine is sound
//       against every observed run, carries a verified certificate, and on
//       the optimizing configurations never exceeds the structural bound.
//   P6 (dynamic refutation): every P1/P2 execution runs with the execution
//       monitor fully armed — every control transfer must be an edge of the
//       reconstructed CFG, every annotation interval must hold live, and no
//       loop may exceed its bound row (a MonitorError fails the sweep).
//   P7 (cross-target soundness): the same source compiled for every
//       registered target yields, per target, an IPET bound that dominates
//       that target's own monitored executions, with a verified certificate
//       — and every target agrees bit-exactly with the reference simulator.
//   P8 (SSA pipeline determinism + soundness): with the SSA mid-end bracket
//       enabled, a validated fleet campaign over the seed's nodes produces
//       byte-identical semantic records at jobs=1 and jobs=8, every IPET
//       bound dominates its own monitored executions, and the fully-armed
//       monitor refutes nothing — on every registered target.
#include <gtest/gtest.h>

#include "dataflow/acg.hpp"
#include "dataflow/generator.hpp"
#include "dataflow/simulator.hpp"
#include "driver/compiler.hpp"
#include "driver/fleet.hpp"
#include "machine/machine.hpp"
#include "mach/target.hpp"
#include "minic/typecheck.hpp"
#include "support/rng.hpp"
#include "validate/validate.hpp"
#include "wcet/monitor_spec.hpp"
#include "wcet/wcet.hpp"

namespace vc {
namespace {

using minic::Value;

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweep, AllInvariantsHold) {
  const std::uint64_t seed = GetParam();
  const std::vector<dataflow::Node> nodes = dataflow::generate_suite(seed, 3);

  for (const auto& node : nodes) {
    minic::Program program;
    program.name = node.name();
    dataflow::generate_node(node, &program);
    minic::type_check(program);
    const std::string fn = dataflow::step_function_name(node);
    const bool has_io =
        program.find_global(dataflow::kIoBusGlobal) != nullptr;

    for (driver::Config config : driver::kAllConfigs) {
      const driver::Compiled compiled =
          driver::compile_program(program, config);

      // P2 setup: static bounds from both engines (P5 needs the pair).
      wcet::WcetOptions engines;
      engines.engine = wcet::WcetEngine::Both;
      const wcet::WcetResult bound =
          wcet::analyze_wcet(compiled.image, fn, engines);
      ASSERT_TRUE(bound.structural_cycles.has_value());
      ASSERT_TRUE(bound.ipet.has_value());
      const std::uint64_t structural = *bound.structural_cycles;
      const std::uint64_t ipet = bound.ipet->wcet_cycles;
      // P5: every IPET bound ships with an independently checked certificate,
      // and the exact engine never loses to the structural one where the
      // paper's optimizing configurations are concerned.
      EXPECT_TRUE(bound.ipet->certificate_verified)
          << node.name() << " under " << driver::to_string(config);
      if (config == driver::Config::Verified ||
          config == driver::Config::O2Full) {
        EXPECT_LE(ipet, structural)
            << "P5 violated: " << node.name() << " under "
            << driver::to_string(config);
      }
      // P4: cache analysis only tightens (structural vs structural).
      wcet::WcetOptions nocache;
      nocache.cache_analysis = false;
      const wcet::WcetResult loose =
          wcet::analyze_wcet(compiled.image, fn, nocache);
      EXPECT_GE(loose.wcet_cycles, structural);

      // P1 + P2 over a stateful sequence, with the monitor fully armed (P6).
      const machine::MonitorSpec mspec =
          wcet::build_monitor_spec(compiled.image, fn,
                                   machine::MonitorMode::Full);
      machine::Machine m(compiled.image);
      m.arm_monitor(mspec, machine::MonitorMode::Full);
      dataflow::NodeSimulator reference(node);
      Rng rng(seed ^ 0xC0FFEE);
      std::uint64_t executed = 0;
      for (int cycle = 0; cycle < 8; ++cycle) {
        std::vector<double> f_inputs;
        std::vector<std::int32_t> i_inputs;
        std::vector<Value> args;
        for (const auto& p : program.find_function(fn)->params) {
          if (p.type == minic::Type::F64) {
            const double v = rng.next_double(-40.0, 40.0);
            f_inputs.push_back(v);
            args.push_back(Value::of_f64(v));
          } else {
            const auto v =
                static_cast<std::int32_t>(rng.next_range(-3, 3));
            i_inputs.push_back(v);
            args.push_back(Value::of_i32(v));
          }
        }
        const double io = rng.next_double(-2.0, 2.0);
        if (has_io)
          m.write_global(dataflow::kIoBusGlobal, 0, Value::of_f64(io));
        const std::vector<double> want =
            reference.step(f_inputs, i_inputs, io);
        m.clear_caches();
        m.call(fn, args, minic::Type::I32);
        executed += m.stats().instructions;
        ASSERT_LE(m.stats().cycles, structural)
            << "P2 violated: " << node.name() << " under "
            << driver::to_string(config);
        ASSERT_LE(m.stats().cycles, ipet)
            << "P5 violated (ipet unsound): " << node.name() << " under "
            << driver::to_string(config);
        for (int k = 0; k < node.output_count(); ++k) {
          ASSERT_EQ(Value::of_f64(want[static_cast<std::size_t>(k)]),
                    m.read_global(dataflow::output_global(node, k), 0,
                                  minic::Type::F64))
              << "P1 violated: " << node.name() << " output " << k
              << " under " << driver::to_string(config) << " cycle " << cycle;
        }
      }
      // P6: the monitor actually ran — it checked every executed step.
      ASSERT_NE(m.monitor(), nullptr);
      EXPECT_EQ(m.monitor()->steps(), executed)
          << node.name() << " under " << driver::to_string(config);
    }

    // P3: validated compilation accepts the genuine pipeline (run on one
    // configuration per node to bound test time).
    const driver::Config vconfig =
        driver::kAllConfigs[seed % 4];
    EXPECT_NO_THROW(validate::validated_compile(program, vconfig, 4, seed))
        << "P3 violated for " << node.name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u, 707u, 808u));

// P7: the sweep above fixes the default target; this one compiles the same
// sources for every registered target and holds each backend to its own
// bound. Soundness is per-target (each ISA has its own timing model, so the
// bounds are not comparable across targets), but functional behaviour is
// not: every target must agree bit-exactly with the reference simulator.
class CrossTargetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrossTargetSweep, EveryTargetSoundAndSemanticallyEqual) {
  const std::uint64_t seed = GetParam();
  const std::vector<dataflow::Node> nodes = dataflow::generate_suite(seed, 2);

  for (const auto& node : nodes) {
    minic::Program program;
    program.name = node.name();
    dataflow::generate_node(node, &program);
    minic::type_check(program);
    const std::string fn = dataflow::step_function_name(node);
    const bool has_io =
        program.find_global(dataflow::kIoBusGlobal) != nullptr;

    for (const std::string& target : mach::target_names()) {
      driver::CompileOptions copts;
      copts.target = target;
      const driver::Compiled compiled =
          driver::compile_program(program, driver::Config::O2Full, copts);
      EXPECT_EQ(compiled.image.target, target);

      wcet::WcetOptions engines;
      engines.engine = wcet::WcetEngine::Both;
      const wcet::WcetResult bound =
          wcet::analyze_wcet(compiled.image, fn, engines);
      ASSERT_TRUE(bound.ipet.has_value()) << node.name() << " on " << target;
      EXPECT_TRUE(bound.ipet->certificate_verified)
          << node.name() << " on " << target;
      const std::uint64_t ipet = bound.ipet->wcet_cycles;

      const machine::MonitorSpec mspec =
          wcet::build_monitor_spec(compiled.image, fn,
                                   machine::MonitorMode::Full);
      machine::Machine m(compiled.image);
      m.arm_monitor(mspec, machine::MonitorMode::Full);
      dataflow::NodeSimulator reference(node);
      Rng rng(seed ^ 0xC0FFEE);
      for (int cycle = 0; cycle < 4; ++cycle) {
        std::vector<double> f_inputs;
        std::vector<std::int32_t> i_inputs;
        std::vector<Value> args;
        for (const auto& p : program.find_function(fn)->params) {
          if (p.type == minic::Type::F64) {
            const double v = rng.next_double(-40.0, 40.0);
            f_inputs.push_back(v);
            args.push_back(Value::of_f64(v));
          } else {
            const auto v = static_cast<std::int32_t>(rng.next_range(-3, 3));
            i_inputs.push_back(v);
            args.push_back(Value::of_i32(v));
          }
        }
        const double io = rng.next_double(-2.0, 2.0);
        if (has_io)
          m.write_global(dataflow::kIoBusGlobal, 0, Value::of_f64(io));
        const std::vector<double> want =
            reference.step(f_inputs, i_inputs, io);
        m.clear_caches();
        m.call(fn, args, minic::Type::I32);
        ASSERT_LE(m.stats().cycles, ipet)
            << "P7 violated (ipet unsound): " << node.name() << " on "
            << target;
        for (int k = 0; k < node.output_count(); ++k) {
          ASSERT_EQ(Value::of_f64(want[static_cast<std::size_t>(k)]),
                    m.read_global(dataflow::output_global(node, k), 0,
                                  minic::Type::F64))
              << "P7 violated (semantics): " << node.name() << " output "
              << k << " on " << target << " cycle " << cycle;
        }
      }
      // A violation would have thrown MonitorError out of m.call; reaching
      // here with a nonzero step count means every step was checked clean.
      ASSERT_NE(m.monitor(), nullptr);
      EXPECT_GT(m.monitor()->steps(), 0u) << node.name() << " on " << target;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossTargetSweep,
                         ::testing::Values(111u, 222u, 333u, 444u));

// P8: the SSA-enabled pipeline under the full campaign harness. Per seed,
// a validated (checker-gated) fleet run with the SSA bracket on, the IPET
// engine, and the monitor fully armed — once serial and once on 8 workers.
// The semantic record set must be byte-identical across worker counts
// (FleetOptions' determinism contract survives the new mid-end), every
// record must verify its IPET certificate and dominate its own observed
// cycles, and no monitor violation may surface a refuted static claim.
class SsaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SsaSweep, SsaCampaignDeterministicSoundAndMonitorClean) {
  const std::uint64_t seed = GetParam();
  std::vector<dataflow::Node> nodes = dataflow::generate_suite(seed, 2);
  std::vector<minic::Program> programs;
  programs.reserve(nodes.size());
  std::vector<driver::FleetUnit> units;
  for (const auto& node : nodes) {
    minic::Program program;
    program.name = node.name();
    dataflow::generate_node(node, &program);
    minic::type_check(program);
    programs.push_back(std::move(program));
  }
  for (std::size_t i = 0; i < nodes.size(); ++i)
    units.push_back({nodes[i].name(), &programs[i],
                     dataflow::step_function_name(nodes[i])});

  for (const std::string& target : mach::target_names()) {
    driver::FleetOptions options;
    options.target = target;
    options.configs = {driver::Config::Verified, driver::Config::O2Full};
    options.exec_cycles = 6;
    options.wcet = true;
    options.wcet_engine = wcet::WcetEngine::Ipet;
    options.monitor = machine::MonitorMode::Full;
    options.ssa = true;
    options.suite_seed = seed;
    options.compile_override = [](const minic::Program& program,
                                  driver::Config config,
                                  const driver::CompileOptions& copts) {
      return validate::validated_compile(program, config, /*n_tests=*/4,
                                         /*seed=*/1,
                                         driver::ValidateLevel::Rtl, copts);
    };

    options.jobs = 1;
    const driver::FleetReport serial = driver::run_fleet(units, options);
    options.jobs = 8;
    const driver::FleetReport parallel = driver::run_fleet(units, options);

    ASSERT_EQ(serial.records.size(), parallel.records.size());
    for (std::size_t i = 0; i < serial.records.size(); ++i) {
      const driver::FleetRecord& r = serial.records[i];
      ASSERT_TRUE(r.ok) << "P8: " << r.name << " on " << target << ": "
                        << r.error;
      EXPECT_EQ(driver::record_core_json(r).dump(),
                driver::record_core_json(parallel.records[i]).dump())
          << "P8 violated (determinism): " << r.name << " on " << target;
      EXPECT_TRUE(r.wcet_ipet_certified)
          << "P8 violated (uncertified IPET): " << r.name << " on " << target;
      EXPECT_LE(r.observed_max_cycles, r.wcet_ipet_cycles)
          << "P8 violated (ipet unsound): " << r.name << " on " << target;
      EXPECT_GT(r.monitored_steps, 0u) << r.name << " on " << target;
      EXPECT_EQ(r.monitor_violations, 0u)
          << "P8 violated (monitor): " << r.name << " on " << target;
    }
    EXPECT_EQ(serial.monitor_violations, 0u) << "on " << target;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsaSweep,
                         ::testing::Values(1201u, 1202u, 1203u, 1204u));

}  // namespace
}  // namespace vc
