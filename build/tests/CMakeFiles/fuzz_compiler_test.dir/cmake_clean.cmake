file(REMOVE_RECURSE
  "CMakeFiles/fuzz_compiler_test.dir/fuzz_compiler_test.cpp.o"
  "CMakeFiles/fuzz_compiler_test.dir/fuzz_compiler_test.cpp.o.d"
  "fuzz_compiler_test"
  "fuzz_compiler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
