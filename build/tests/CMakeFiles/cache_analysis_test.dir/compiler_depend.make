# Empty compiler generated dependencies file for cache_analysis_test.
# This may be replaced when dependencies are built.
