file(REMOVE_RECURSE
  "CMakeFiles/cache_analysis_test.dir/cache_analysis_test.cpp.o"
  "CMakeFiles/cache_analysis_test.dir/cache_analysis_test.cpp.o.d"
  "cache_analysis_test"
  "cache_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
