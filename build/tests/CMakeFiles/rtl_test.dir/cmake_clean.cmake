file(REMOVE_RECURSE
  "CMakeFiles/rtl_test.dir/rtl_test.cpp.o"
  "CMakeFiles/rtl_test.dir/rtl_test.cpp.o.d"
  "rtl_test"
  "rtl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
