# Empty compiler generated dependencies file for wcet_unit_test.
# This may be replaced when dependencies are built.
