file(REMOVE_RECURSE
  "CMakeFiles/wcet_unit_test.dir/wcet_unit_test.cpp.o"
  "CMakeFiles/wcet_unit_test.dir/wcet_unit_test.cpp.o.d"
  "wcet_unit_test"
  "wcet_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
