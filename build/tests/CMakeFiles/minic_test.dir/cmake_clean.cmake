file(REMOVE_RECURSE
  "CMakeFiles/minic_test.dir/minic_test.cpp.o"
  "CMakeFiles/minic_test.dir/minic_test.cpp.o.d"
  "minic_test"
  "minic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
