file(REMOVE_RECURSE
  "CMakeFiles/wcet_test.dir/wcet_test.cpp.o"
  "CMakeFiles/wcet_test.dir/wcet_test.cpp.o.d"
  "wcet_test"
  "wcet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
