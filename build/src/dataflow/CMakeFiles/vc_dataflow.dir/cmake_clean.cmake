file(REMOVE_RECURSE
  "CMakeFiles/vc_dataflow.dir/acg.cpp.o"
  "CMakeFiles/vc_dataflow.dir/acg.cpp.o.d"
  "CMakeFiles/vc_dataflow.dir/generator.cpp.o"
  "CMakeFiles/vc_dataflow.dir/generator.cpp.o.d"
  "CMakeFiles/vc_dataflow.dir/node.cpp.o"
  "CMakeFiles/vc_dataflow.dir/node.cpp.o.d"
  "CMakeFiles/vc_dataflow.dir/simulator.cpp.o"
  "CMakeFiles/vc_dataflow.dir/simulator.cpp.o.d"
  "libvc_dataflow.a"
  "libvc_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
