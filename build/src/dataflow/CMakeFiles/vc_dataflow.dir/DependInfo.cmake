
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/acg.cpp" "src/dataflow/CMakeFiles/vc_dataflow.dir/acg.cpp.o" "gcc" "src/dataflow/CMakeFiles/vc_dataflow.dir/acg.cpp.o.d"
  "/root/repo/src/dataflow/generator.cpp" "src/dataflow/CMakeFiles/vc_dataflow.dir/generator.cpp.o" "gcc" "src/dataflow/CMakeFiles/vc_dataflow.dir/generator.cpp.o.d"
  "/root/repo/src/dataflow/node.cpp" "src/dataflow/CMakeFiles/vc_dataflow.dir/node.cpp.o" "gcc" "src/dataflow/CMakeFiles/vc_dataflow.dir/node.cpp.o.d"
  "/root/repo/src/dataflow/simulator.cpp" "src/dataflow/CMakeFiles/vc_dataflow.dir/simulator.cpp.o" "gcc" "src/dataflow/CMakeFiles/vc_dataflow.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minic/CMakeFiles/vc_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
