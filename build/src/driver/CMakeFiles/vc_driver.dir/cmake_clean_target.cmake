file(REMOVE_RECURSE
  "libvc_driver.a"
)
