file(REMOVE_RECURSE
  "CMakeFiles/vc_driver.dir/compiler.cpp.o"
  "CMakeFiles/vc_driver.dir/compiler.cpp.o.d"
  "CMakeFiles/vc_driver.dir/system.cpp.o"
  "CMakeFiles/vc_driver.dir/system.cpp.o.d"
  "libvc_driver.a"
  "libvc_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
