# Empty compiler generated dependencies file for vc_driver.
# This may be replaced when dependencies are built.
