# Empty dependencies file for vc_validate.
# This may be replaced when dependencies are built.
