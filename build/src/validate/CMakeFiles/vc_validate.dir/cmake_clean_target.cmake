file(REMOVE_RECURSE
  "libvc_validate.a"
)
