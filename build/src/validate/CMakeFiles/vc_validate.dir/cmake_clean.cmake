file(REMOVE_RECURSE
  "CMakeFiles/vc_validate.dir/validate.cpp.o"
  "CMakeFiles/vc_validate.dir/validate.cpp.o.d"
  "libvc_validate.a"
  "libvc_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
