
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/validate/validate.cpp" "src/validate/CMakeFiles/vc_validate.dir/validate.cpp.o" "gcc" "src/validate/CMakeFiles/vc_validate.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/vc_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/vc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vc_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/wcet/CMakeFiles/vc_wcet.dir/DependInfo.cmake"
  "/root/repo/build/src/ppc/CMakeFiles/vc_ppc.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/vc_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/vc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/vc_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/vc_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
