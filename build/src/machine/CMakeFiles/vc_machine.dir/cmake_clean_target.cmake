file(REMOVE_RECURSE
  "libvc_machine.a"
)
