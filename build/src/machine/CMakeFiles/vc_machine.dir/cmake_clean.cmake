file(REMOVE_RECURSE
  "CMakeFiles/vc_machine.dir/machine.cpp.o"
  "CMakeFiles/vc_machine.dir/machine.cpp.o.d"
  "libvc_machine.a"
  "libvc_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
