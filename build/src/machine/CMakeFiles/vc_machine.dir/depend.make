# Empty dependencies file for vc_machine.
# This may be replaced when dependencies are built.
