# Empty compiler generated dependencies file for vc_machine.
# This may be replaced when dependencies are built.
