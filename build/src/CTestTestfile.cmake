# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("minic")
subdirs("rtl")
subdirs("opt")
subdirs("regalloc")
subdirs("ppc")
subdirs("machine")
subdirs("wcet")
subdirs("validate")
subdirs("dataflow")
subdirs("driver")
subdirs("tools")
