# Empty dependencies file for vc_minic.
# This may be replaced when dependencies are built.
