file(REMOVE_RECURSE
  "CMakeFiles/vc_minic.dir/ast.cpp.o"
  "CMakeFiles/vc_minic.dir/ast.cpp.o.d"
  "CMakeFiles/vc_minic.dir/interp.cpp.o"
  "CMakeFiles/vc_minic.dir/interp.cpp.o.d"
  "CMakeFiles/vc_minic.dir/lexer.cpp.o"
  "CMakeFiles/vc_minic.dir/lexer.cpp.o.d"
  "CMakeFiles/vc_minic.dir/parser.cpp.o"
  "CMakeFiles/vc_minic.dir/parser.cpp.o.d"
  "CMakeFiles/vc_minic.dir/printer.cpp.o"
  "CMakeFiles/vc_minic.dir/printer.cpp.o.d"
  "CMakeFiles/vc_minic.dir/typecheck.cpp.o"
  "CMakeFiles/vc_minic.dir/typecheck.cpp.o.d"
  "libvc_minic.a"
  "libvc_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
