file(REMOVE_RECURSE
  "libvc_minic.a"
)
