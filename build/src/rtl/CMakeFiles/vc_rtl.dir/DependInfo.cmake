
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtl/analysis.cpp" "src/rtl/CMakeFiles/vc_rtl.dir/analysis.cpp.o" "gcc" "src/rtl/CMakeFiles/vc_rtl.dir/analysis.cpp.o.d"
  "/root/repo/src/rtl/exec.cpp" "src/rtl/CMakeFiles/vc_rtl.dir/exec.cpp.o" "gcc" "src/rtl/CMakeFiles/vc_rtl.dir/exec.cpp.o.d"
  "/root/repo/src/rtl/lower.cpp" "src/rtl/CMakeFiles/vc_rtl.dir/lower.cpp.o" "gcc" "src/rtl/CMakeFiles/vc_rtl.dir/lower.cpp.o.d"
  "/root/repo/src/rtl/rtl.cpp" "src/rtl/CMakeFiles/vc_rtl.dir/rtl.cpp.o" "gcc" "src/rtl/CMakeFiles/vc_rtl.dir/rtl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minic/CMakeFiles/vc_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
