file(REMOVE_RECURSE
  "libvc_rtl.a"
)
