# Empty compiler generated dependencies file for vc_rtl.
# This may be replaced when dependencies are built.
