file(REMOVE_RECURSE
  "CMakeFiles/vc_rtl.dir/analysis.cpp.o"
  "CMakeFiles/vc_rtl.dir/analysis.cpp.o.d"
  "CMakeFiles/vc_rtl.dir/exec.cpp.o"
  "CMakeFiles/vc_rtl.dir/exec.cpp.o.d"
  "CMakeFiles/vc_rtl.dir/lower.cpp.o"
  "CMakeFiles/vc_rtl.dir/lower.cpp.o.d"
  "CMakeFiles/vc_rtl.dir/rtl.cpp.o"
  "CMakeFiles/vc_rtl.dir/rtl.cpp.o.d"
  "libvc_rtl.a"
  "libvc_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
