
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/constprop.cpp" "src/opt/CMakeFiles/vc_opt.dir/constprop.cpp.o" "gcc" "src/opt/CMakeFiles/vc_opt.dir/constprop.cpp.o.d"
  "/root/repo/src/opt/cse.cpp" "src/opt/CMakeFiles/vc_opt.dir/cse.cpp.o" "gcc" "src/opt/CMakeFiles/vc_opt.dir/cse.cpp.o.d"
  "/root/repo/src/opt/dce.cpp" "src/opt/CMakeFiles/vc_opt.dir/dce.cpp.o" "gcc" "src/opt/CMakeFiles/vc_opt.dir/dce.cpp.o.d"
  "/root/repo/src/opt/tunnel.cpp" "src/opt/CMakeFiles/vc_opt.dir/tunnel.cpp.o" "gcc" "src/opt/CMakeFiles/vc_opt.dir/tunnel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/vc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/vc_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
