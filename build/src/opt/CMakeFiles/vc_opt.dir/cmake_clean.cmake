file(REMOVE_RECURSE
  "CMakeFiles/vc_opt.dir/constprop.cpp.o"
  "CMakeFiles/vc_opt.dir/constprop.cpp.o.d"
  "CMakeFiles/vc_opt.dir/cse.cpp.o"
  "CMakeFiles/vc_opt.dir/cse.cpp.o.d"
  "CMakeFiles/vc_opt.dir/dce.cpp.o"
  "CMakeFiles/vc_opt.dir/dce.cpp.o.d"
  "CMakeFiles/vc_opt.dir/tunnel.cpp.o"
  "CMakeFiles/vc_opt.dir/tunnel.cpp.o.d"
  "libvc_opt.a"
  "libvc_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
