file(REMOVE_RECURSE
  "libvc_opt.a"
)
