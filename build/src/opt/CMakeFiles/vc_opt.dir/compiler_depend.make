# Empty compiler generated dependencies file for vc_opt.
# This may be replaced when dependencies are built.
