file(REMOVE_RECURSE
  "CMakeFiles/vc_regalloc.dir/regalloc.cpp.o"
  "CMakeFiles/vc_regalloc.dir/regalloc.cpp.o.d"
  "libvc_regalloc.a"
  "libvc_regalloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_regalloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
