file(REMOVE_RECURSE
  "libvc_regalloc.a"
)
