# Empty dependencies file for vc_regalloc.
# This may be replaced when dependencies are built.
