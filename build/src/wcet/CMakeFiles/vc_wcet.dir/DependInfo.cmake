
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wcet/annotations.cpp" "src/wcet/CMakeFiles/vc_wcet.dir/annotations.cpp.o" "gcc" "src/wcet/CMakeFiles/vc_wcet.dir/annotations.cpp.o.d"
  "/root/repo/src/wcet/cache.cpp" "src/wcet/CMakeFiles/vc_wcet.dir/cache.cpp.o" "gcc" "src/wcet/CMakeFiles/vc_wcet.dir/cache.cpp.o.d"
  "/root/repo/src/wcet/cfg.cpp" "src/wcet/CMakeFiles/vc_wcet.dir/cfg.cpp.o" "gcc" "src/wcet/CMakeFiles/vc_wcet.dir/cfg.cpp.o.d"
  "/root/repo/src/wcet/report.cpp" "src/wcet/CMakeFiles/vc_wcet.dir/report.cpp.o" "gcc" "src/wcet/CMakeFiles/vc_wcet.dir/report.cpp.o.d"
  "/root/repo/src/wcet/value_analysis.cpp" "src/wcet/CMakeFiles/vc_wcet.dir/value_analysis.cpp.o" "gcc" "src/wcet/CMakeFiles/vc_wcet.dir/value_analysis.cpp.o.d"
  "/root/repo/src/wcet/wcet.cpp" "src/wcet/CMakeFiles/vc_wcet.dir/wcet.cpp.o" "gcc" "src/wcet/CMakeFiles/vc_wcet.dir/wcet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ppc/CMakeFiles/vc_ppc.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/vc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/vc_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/vc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/vc_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
