file(REMOVE_RECURSE
  "CMakeFiles/vc_wcet.dir/annotations.cpp.o"
  "CMakeFiles/vc_wcet.dir/annotations.cpp.o.d"
  "CMakeFiles/vc_wcet.dir/cache.cpp.o"
  "CMakeFiles/vc_wcet.dir/cache.cpp.o.d"
  "CMakeFiles/vc_wcet.dir/cfg.cpp.o"
  "CMakeFiles/vc_wcet.dir/cfg.cpp.o.d"
  "CMakeFiles/vc_wcet.dir/report.cpp.o"
  "CMakeFiles/vc_wcet.dir/report.cpp.o.d"
  "CMakeFiles/vc_wcet.dir/value_analysis.cpp.o"
  "CMakeFiles/vc_wcet.dir/value_analysis.cpp.o.d"
  "CMakeFiles/vc_wcet.dir/wcet.cpp.o"
  "CMakeFiles/vc_wcet.dir/wcet.cpp.o.d"
  "libvc_wcet.a"
  "libvc_wcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
