# Empty dependencies file for vc_wcet.
# This may be replaced when dependencies are built.
