file(REMOVE_RECURSE
  "libvc_wcet.a"
)
