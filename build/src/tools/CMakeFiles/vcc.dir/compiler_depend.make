# Empty compiler generated dependencies file for vcc.
# This may be replaced when dependencies are built.
