file(REMOVE_RECURSE
  "CMakeFiles/vcc.dir/vcc.cpp.o"
  "CMakeFiles/vcc.dir/vcc.cpp.o.d"
  "vcc"
  "vcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
