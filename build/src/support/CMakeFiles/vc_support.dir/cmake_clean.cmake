file(REMOVE_RECURSE
  "CMakeFiles/vc_support.dir/diagnostics.cpp.o"
  "CMakeFiles/vc_support.dir/diagnostics.cpp.o.d"
  "CMakeFiles/vc_support.dir/interval.cpp.o"
  "CMakeFiles/vc_support.dir/interval.cpp.o.d"
  "CMakeFiles/vc_support.dir/strings.cpp.o"
  "CMakeFiles/vc_support.dir/strings.cpp.o.d"
  "libvc_support.a"
  "libvc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
