file(REMOVE_RECURSE
  "CMakeFiles/vc_ppc.dir/codegen.cpp.o"
  "CMakeFiles/vc_ppc.dir/codegen.cpp.o.d"
  "CMakeFiles/vc_ppc.dir/isa.cpp.o"
  "CMakeFiles/vc_ppc.dir/isa.cpp.o.d"
  "CMakeFiles/vc_ppc.dir/peephole.cpp.o"
  "CMakeFiles/vc_ppc.dir/peephole.cpp.o.d"
  "CMakeFiles/vc_ppc.dir/program.cpp.o"
  "CMakeFiles/vc_ppc.dir/program.cpp.o.d"
  "CMakeFiles/vc_ppc.dir/schedule.cpp.o"
  "CMakeFiles/vc_ppc.dir/schedule.cpp.o.d"
  "CMakeFiles/vc_ppc.dir/timing.cpp.o"
  "CMakeFiles/vc_ppc.dir/timing.cpp.o.d"
  "libvc_ppc.a"
  "libvc_ppc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc_ppc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
