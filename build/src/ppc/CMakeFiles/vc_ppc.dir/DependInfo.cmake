
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppc/codegen.cpp" "src/ppc/CMakeFiles/vc_ppc.dir/codegen.cpp.o" "gcc" "src/ppc/CMakeFiles/vc_ppc.dir/codegen.cpp.o.d"
  "/root/repo/src/ppc/isa.cpp" "src/ppc/CMakeFiles/vc_ppc.dir/isa.cpp.o" "gcc" "src/ppc/CMakeFiles/vc_ppc.dir/isa.cpp.o.d"
  "/root/repo/src/ppc/peephole.cpp" "src/ppc/CMakeFiles/vc_ppc.dir/peephole.cpp.o" "gcc" "src/ppc/CMakeFiles/vc_ppc.dir/peephole.cpp.o.d"
  "/root/repo/src/ppc/program.cpp" "src/ppc/CMakeFiles/vc_ppc.dir/program.cpp.o" "gcc" "src/ppc/CMakeFiles/vc_ppc.dir/program.cpp.o.d"
  "/root/repo/src/ppc/schedule.cpp" "src/ppc/CMakeFiles/vc_ppc.dir/schedule.cpp.o" "gcc" "src/ppc/CMakeFiles/vc_ppc.dir/schedule.cpp.o.d"
  "/root/repo/src/ppc/timing.cpp" "src/ppc/CMakeFiles/vc_ppc.dir/timing.cpp.o" "gcc" "src/ppc/CMakeFiles/vc_ppc.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rtl/CMakeFiles/vc_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/regalloc/CMakeFiles/vc_regalloc.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/vc_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/vc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
