# Empty compiler generated dependencies file for vc_ppc.
# This may be replaced when dependencies are built.
