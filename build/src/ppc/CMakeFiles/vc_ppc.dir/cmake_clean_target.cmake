file(REMOVE_RECURSE
  "libvc_ppc.a"
)
