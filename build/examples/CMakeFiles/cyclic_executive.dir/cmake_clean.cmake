file(REMOVE_RECURSE
  "CMakeFiles/cyclic_executive.dir/cyclic_executive.cpp.o"
  "CMakeFiles/cyclic_executive.dir/cyclic_executive.cpp.o.d"
  "cyclic_executive"
  "cyclic_executive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclic_executive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
