# Empty dependencies file for cyclic_executive.
# This may be replaced when dependencies are built.
