file(REMOVE_RECURSE
  "CMakeFiles/annotation_wcet.dir/annotation_wcet.cpp.o"
  "CMakeFiles/annotation_wcet.dir/annotation_wcet.cpp.o.d"
  "annotation_wcet"
  "annotation_wcet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotation_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
