# Empty dependencies file for annotation_wcet.
# This may be replaced when dependencies are built.
