file(REMOVE_RECURSE
  "../bench/bench_annotations"
  "../bench/bench_annotations.pdb"
  "CMakeFiles/bench_annotations.dir/bench_annotations.cpp.o"
  "CMakeFiles/bench_annotations.dir/bench_annotations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_annotations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
