file(REMOVE_RECURSE
  "../bench/bench_fig2_wcet"
  "../bench/bench_fig2_wcet.pdb"
  "CMakeFiles/bench_fig2_wcet.dir/bench_fig2_wcet.cpp.o"
  "CMakeFiles/bench_fig2_wcet.dir/bench_fig2_wcet.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_wcet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
