file(REMOVE_RECURSE
  "../bench/bench_wcet_tightness"
  "../bench/bench_wcet_tightness.pdb"
  "CMakeFiles/bench_wcet_tightness.dir/bench_wcet_tightness.cpp.o"
  "CMakeFiles/bench_wcet_tightness.dir/bench_wcet_tightness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wcet_tightness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
