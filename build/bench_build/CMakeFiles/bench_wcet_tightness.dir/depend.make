# Empty dependencies file for bench_wcet_tightness.
# This may be replaced when dependencies are built.
