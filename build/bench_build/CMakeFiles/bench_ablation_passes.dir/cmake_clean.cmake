file(REMOVE_RECURSE
  "../bench/bench_ablation_passes"
  "../bench/bench_ablation_passes.pdb"
  "CMakeFiles/bench_ablation_passes.dir/bench_ablation_passes.cpp.o"
  "CMakeFiles/bench_ablation_passes.dir/bench_ablation_passes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
